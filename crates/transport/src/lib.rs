//! # rlb-transport — RoCE NIC transport state machines
//!
//! The end-host behaviour that couples packet reordering to flow completion
//! time in lossless DCNs:
//!
//! * [`GbnSender`] / [`GbnReceiver`] — go-back-N reliable delivery: the
//!   receiver discards out-of-order packets and NAKs, the sender rewinds.
//!   This is why a single PFC-paused path inflates tail FCT (§2.1.2).
//! * [`DcqcnRate`] / [`CnpGenerator`] — DCQCN congestion control, the
//!   paper's default transport.
//! * [`IrnSender`] / [`IrnReceiver`] — IRN-style selective repeat (§5's
//!   abandon-PFC alternative), for the lossless-vs-lossy comparison.
//!
//! All types are pure state machines over explicit timestamps; the
//! simulator (`rlb-net`) drives them and owns all scheduling.

// Library code must justify every panic site: bare unwrap() is denied here
// (tests are exempt). Enforced alongside `cargo xtask lint`'s lib-unwrap rule.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod dcqcn;
pub mod gbn;
pub mod irn;

pub use dcqcn::{CnpGenerator, DcqcnConfig, DcqcnRate};
pub use gbn::{GbnReceiver, GbnSender, RxAction};
pub use irn::{IrnAck, IrnReceiver, IrnSender};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Channel that reorders packets by delaying a random subset, modelling
    /// PFC-style overtaking. Go-back-N must still deliver every flow.
    fn run_lossy_gbn(total: u32, seed: u64) -> (GbnSender, GbnReceiver) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tx = GbnSender::new(total);
        let mut rx = GbnReceiver::new(total);
        let mut in_flight: Vec<u32> = Vec::new();
        let mut steps = 0u32;
        while !tx.is_complete() {
            steps += 1;
            assert!(steps < 200_000, "go-back-N failed to converge");
            // Wire drained with data outstanding and nothing to send: only
            // the retransmission timeout can revive the flow (see
            // GbnSender::on_timeout docs).
            if in_flight.is_empty() && tx.peek_next().is_none() {
                assert!(tx.on_timeout(), "deadlock without timeout progress");
            }
            // Sender pushes a packet if it has one.
            if let Some(psn) = tx.take_next() {
                in_flight.push(psn);
            }
            // Randomly deliver one of the in-flight packets (out of order).
            if !in_flight.is_empty() && (rng.gen_bool(0.7) || tx.peek_next().is_none()) {
                let idx = rng.gen_range(0..in_flight.len());
                let psn = in_flight.swap_remove(idx);
                match rx.on_packet(psn) {
                    RxAction::Deliver { ack_psn } => tx.on_ack(ack_psn),
                    RxAction::OutOfOrder { nak_psn: Some(n), .. } => tx.on_nak(n),
                    _ => {}
                }
            }
        }
        (tx, rx)
    }

    proptest! {
        /// Go-back-N always completes, even under arbitrary reordering, and
        /// the receiver ends expecting exactly `total`.
        #[test]
        fn gbn_always_completes(total in 1u32..200, seed in any::<u64>()) {
            let (tx, rx) = run_lossy_gbn(total, seed);
            prop_assert!(tx.is_complete());
            prop_assert!(rx.is_complete());
            prop_assert_eq!(rx.expected(), total);
            // Retransmissions imply at least total packets were sent.
            prop_assert!(tx.packets_sent >= total as u64);
        }

        /// The sender never emits a PSN at or beyond `total`, and in_flight
        /// is always consistent.
        #[test]
        fn gbn_sender_psn_bounds(total in 1u32..100, naks in proptest::collection::vec(0u32..100, 0..20)) {
            let mut tx = GbnSender::new(total);
            for nak in naks {
                // interleave sends and arbitrary (possibly bogus) NAKs
                if let Some(psn) = tx.take_next() {
                    prop_assert!(psn < total);
                }
                tx.on_nak(nak % total);
                prop_assert!(tx.peek_next().is_none_or(|p| p < total));
                prop_assert!(tx.in_flight() <= total);
            }
        }

        /// DCQCN rate stays within [min_rate, line_rate] under any event mix.
        #[test]
        fn dcqcn_rate_bounded(events in proptest::collection::vec(0u8..4, 1..300)) {
            let mut r = DcqcnRate::new(DcqcnConfig::default());
            let (min, max) = (r.config().min_rate_bps, r.config().line_rate_bps);
            for e in events {
                match e {
                    0 => r.on_cnp(),
                    1 => r.on_alpha_timer(),
                    2 => r.on_increase_timer(),
                    _ => r.on_bytes_sent(3_000_000),
                }
                prop_assert!(r.rate_bps() >= min - 1.0);
                prop_assert!(r.rate_bps() <= max + 1.0);
                prop_assert!(r.alpha() > 0.0 && r.alpha() <= 1.0);
            }
        }

        /// IRN completes under arbitrary reordering AND loss, with
        /// selective (not go-back-N) retransmission.
        #[test]
        fn irn_always_completes_under_loss_and_reorder(
            total in 1u32..150,
            seed in any::<u64>(),
            loss_pct in 0u32..40,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut tx = IrnSender::new(total, 16);
            let mut rx = IrnReceiver::new(total);
            let mut in_flight: Vec<u32> = Vec::new();
            let mut steps = 0u32;
            while !tx.is_complete() {
                steps += 1;
                prop_assert!(steps < 400_000, "IRN failed to converge");
                if in_flight.is_empty() && tx.peek_next().is_none() {
                    prop_assert!(tx.on_timeout(), "deadlock without timeout progress");
                }
                if let Some(psn) = tx.take_next() {
                    // Random loss.
                    if rng.gen_range(0..100) >= loss_pct {
                        in_flight.push(psn);
                    }
                }
                if !in_flight.is_empty() && (rng.gen_bool(0.7) || tx.peek_next().is_none()) {
                    let idx = rng.gen_range(0..in_flight.len());
                    let psn = in_flight.swap_remove(idx);
                    if let Some(ack) = rx.on_packet(psn) {
                        tx.on_ack(ack);
                    }
                }
            }
            prop_assert!(rx.is_complete());
            // Selective repeat: total transmissions bounded by
            // total/(1-loss) plus reorder-induced spurious retransmits —
            // far below go-back-N's quadratic blowup. Generous bound:
            prop_assert!(tx.packets_sent <= (total as u64) * 8 + 64);
        }

        /// CNP generator never emits two CNPs within the interval.
        #[test]
        fn cnp_spacing(mut times in proptest::collection::vec(0u64..10_000_000_000, 1..100)) {
            times.sort();
            let interval = 50_000_000u64;
            let mut g = CnpGenerator::default();
            let mut last_sent: Option<u64> = None;
            for t in times {
                if g.on_marked_packet(t, interval) {
                    if let Some(prev) = last_sent {
                        prop_assert!(t - prev >= interval);
                    }
                    last_sent = Some(t);
                }
            }
        }
    }
}
