//! DCQCN congestion control (Zhu et al., SIGCOMM 2015), the paper's default
//! transport (§4: "We use DCQCN as the default transport protocol and set
//! the related parameters as suggested").
//!
//! Split into the three roles of the protocol:
//!
//! * **CP (congestion point)** — the switch marks ECN with RED-like
//!   probability; implemented in `rlb-net`'s switch.
//! * **NP (notification point)** — the receiver NIC turns marked arrivals
//!   into CNPs, at most one per flow per `cnp_interval` ([`CnpGenerator`]).
//! * **RP (reaction point)** — the sender NIC adjusts its rate
//!   ([`DcqcnRate`]): multiplicative decrease on CNP, then fast recovery /
//!   additive increase / hyper increase driven by a timer and a byte
//!   counter, exactly as in the DCQCN paper's rate-update rules.
//!
//! Everything here is a pure state machine over explicit timestamps
//! (picoseconds), so the algorithm is unit-testable without a simulator.

use serde::{Deserialize, Serialize};

/// DCQCN parameters. Defaults follow the DCQCN paper / Mellanox guidance,
/// with the increase steps chosen for 40 Gbps links.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DcqcnConfig {
    /// Full line rate, the cap for the flow's sending rate (bits/sec).
    pub line_rate_bps: f64,
    /// Floor for the sending rate (bits/sec).
    pub min_rate_bps: f64,
    /// EWMA gain `g` for alpha.
    pub g: f64,
    /// Alpha-update timer (no-CNP decay), ps. Paper: 55 µs.
    pub alpha_timer_ps: u64,
    /// Rate-increase timer period, ps. Paper: 55 µs (we keep it equal).
    pub increase_timer_ps: u64,
    /// Byte counter triggering a rate-increase event. Paper: 10 MB.
    pub byte_counter: u64,
    /// Stage threshold F: increase events before leaving fast recovery.
    pub f_threshold: u32,
    /// Additive increase step (bits/sec). 40 Mbps default.
    pub rai_bps: f64,
    /// Hyper increase step (bits/sec). 10× Rai default.
    pub rhai_bps: f64,
    /// Minimum gap between CNPs generated per flow at the NP, ps (50 µs).
    pub cnp_interval_ps: u64,
}

impl Default for DcqcnConfig {
    fn default() -> Self {
        DcqcnConfig {
            line_rate_bps: 40e9,
            min_rate_bps: 100e6,
            g: 1.0 / 256.0,
            alpha_timer_ps: 55_000_000,
            increase_timer_ps: 55_000_000,
            byte_counter: 10_000_000,
            f_threshold: 5,
            rai_bps: 40e6,
            rhai_bps: 400e6,
            cnp_interval_ps: 50_000_000,
        }
    }
}

impl DcqcnConfig {
    /// Scale rate constants for a different line rate, keeping ratios.
    pub fn for_line_rate(line_rate_bps: f64) -> DcqcnConfig {
        let base = DcqcnConfig::default();
        let scale = line_rate_bps / base.line_rate_bps;
        DcqcnConfig {
            line_rate_bps,
            min_rate_bps: base.min_rate_bps * scale,
            rai_bps: base.rai_bps * scale,
            rhai_bps: base.rhai_bps * scale,
            ..base
        }
    }
}

/// Reaction-point (sender) rate state for one flow.
#[derive(Debug, Clone, Serialize)]
pub struct DcqcnRate {
    cfg: DcqcnConfig,
    /// Current sending rate Rc (bits/sec).
    rc: f64,
    /// Target rate Rt (bits/sec).
    rt: f64,
    alpha: f64,
    /// CNP seen since the last alpha-timer expiry?
    cnp_since_alpha_timer: bool,
    /// Rate-increase events since the last decrease, per driver.
    timer_events: u32,
    byte_events: u32,
    /// Bytes accumulated toward the next byte-counter event.
    bytes_acc: u64,
    pub cnps_received: u64,
}

impl DcqcnRate {
    pub fn new(cfg: DcqcnConfig) -> DcqcnRate {
        let line = cfg.line_rate_bps;
        DcqcnRate {
            cfg,
            rc: line,
            rt: line,
            alpha: 1.0,
            cnp_since_alpha_timer: false,
            timer_events: 0,
            byte_events: 0,
            bytes_acc: 0,
            cnps_received: 0,
        }
    }

    /// Current sending rate in bits/sec.
    #[inline]
    pub fn rate_bps(&self) -> f64 {
        self.rc
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Inter-packet gap that paces `bytes` at the current rate, in ps.
    #[inline]
    pub fn pacing_delay_ps(&self, bytes: u64) -> u64 {
        ((bytes as f64 * 8.0 / self.rc) * 1e12).ceil() as u64
    }

    /// A CNP arrived: cut the rate, raise alpha, restart increase stages.
    pub fn on_cnp(&mut self) {
        self.cnps_received += 1;
        self.cnp_since_alpha_timer = true;
        self.rt = self.rc;
        self.rc = (self.rc * (1.0 - self.alpha / 2.0)).max(self.cfg.min_rate_bps);
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.timer_events = 0;
        self.byte_events = 0;
        self.bytes_acc = 0;
    }

    /// Alpha-decay timer expired (every `alpha_timer_ps`).
    pub fn on_alpha_timer(&mut self) {
        if !self.cnp_since_alpha_timer {
            self.alpha *= 1.0 - self.cfg.g;
        }
        self.cnp_since_alpha_timer = false;
    }

    /// Rate-increase timer expired (every `increase_timer_ps`).
    pub fn on_increase_timer(&mut self) {
        self.timer_events = self.timer_events.saturating_add(1);
        self.increase();
    }

    /// Account transmitted bytes; may trigger byte-counter increase events.
    pub fn on_bytes_sent(&mut self, bytes: u64) {
        self.bytes_acc += bytes;
        while self.bytes_acc >= self.cfg.byte_counter {
            self.bytes_acc -= self.cfg.byte_counter;
            self.byte_events = self.byte_events.saturating_add(1);
            self.increase();
        }
    }

    /// The DCQCN increase step: stage selected by how many timer/byte
    /// events have elapsed since the last decrease.
    fn increase(&mut self) {
        let f = self.cfg.f_threshold;
        if self.timer_events > f && self.byte_events > f {
            // Hyper increase: both drivers past F.
            self.rt = (self.rt + self.cfg.rhai_bps).min(self.cfg.line_rate_bps);
        } else if self.timer_events > f || self.byte_events > f {
            // Additive increase: one driver past F.
            self.rt = (self.rt + self.cfg.rai_bps).min(self.cfg.line_rate_bps);
        }
        // Fast recovery (and every stage): close half the gap to Rt.
        self.rc = ((self.rt + self.rc) / 2.0).min(self.cfg.line_rate_bps);
    }

    pub fn config(&self) -> &DcqcnConfig {
        &self.cfg
    }
}

/// Notification-point CNP pacing: at most one CNP per flow per interval.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CnpGenerator {
    last_cnp_ps: Option<u64>,
    pub cnps_sent: u64,
}

impl CnpGenerator {
    /// An ECN-marked data packet arrived at `now_ps`; returns true if a CNP
    /// should be sent to the flow's source.
    pub fn on_marked_packet(&mut self, now_ps: u64, interval_ps: u64) -> bool {
        match self.last_cnp_ps {
            Some(last) if now_ps.saturating_sub(last) < interval_ps => false,
            _ => {
                self.last_cnp_ps = Some(now_ps);
                self.cnps_sent += 1;
                true
            }
        }
    }
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn rp() -> DcqcnRate {
        DcqcnRate::new(DcqcnConfig::default())
    }

    #[test]
    fn starts_at_line_rate_with_alpha_one() {
        let r = rp();
        assert_eq!(r.rate_bps(), 40e9);
        assert_eq!(r.alpha(), 1.0);
    }

    #[test]
    fn cnp_halves_rate_initially() {
        let mut r = rp();
        r.on_cnp();
        // alpha was 1.0 → Rc' = Rc(1 - 0.5) = 20G.
        assert!((r.rate_bps() - 20e9).abs() < 1e6);
        // alpha moves toward 1 (stays 1 when already 1 under EWMA with CNP).
        assert!((r.alpha() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_decays_without_cnps_making_cuts_gentler() {
        let mut r = rp();
        r.on_cnp();
        let after_first = r.rate_bps();
        for _ in 0..200 {
            r.on_alpha_timer();
        }
        assert!(r.alpha() < 0.5);
        let before = r.rate_bps();
        r.on_cnp();
        let cut_fraction = r.rate_bps() / before;
        assert!(cut_fraction > 0.75, "gentle cut expected, got {cut_fraction}");
        assert!(after_first <= 20e9 + 1e6);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut r = rp();
        r.on_cnp(); // Rc=20G, Rt=40G
        for _ in 0..5 {
            r.on_increase_timer(); // fast recovery only (timer_events<=F)
        }
        // Rc -> Rt geometrically: after 5 halvings of the gap, within 40G/2^5.
        assert!(r.rate_bps() > 40e9 - 40e9 / 16.0);
        assert!(r.rate_bps() <= 40e9);
    }

    #[test]
    fn additive_then_hyper_increase_push_target_up() {
        let cfg = DcqcnConfig {
            line_rate_bps: 40e9,
            ..DcqcnConfig::default()
        };
        let mut r = DcqcnRate::new(cfg);
        r.on_cnp();
        // Exhaust fast recovery via timer, then additive increases.
        for _ in 0..6 {
            r.on_increase_timer();
        }
        let after_additive = r.rate_bps();
        // Byte events too: now both counters above F → hyper increase.
        for _ in 0..7 {
            r.on_bytes_sent(10_000_000);
        }
        assert!(r.rate_bps() >= after_additive);
        assert!(r.rate_bps() <= 40e9);
    }

    #[test]
    fn rate_never_exceeds_line_or_drops_below_min() {
        let mut r = rp();
        for _ in 0..100 {
            r.on_increase_timer();
            r.on_bytes_sent(10_000_000);
        }
        assert!(r.rate_bps() <= 40e9);
        for _ in 0..500 {
            r.on_cnp();
        }
        assert!(r.rate_bps() >= r.config().min_rate_bps - 1.0);
    }

    #[test]
    fn cnp_resets_increase_stages() {
        let mut r = rp();
        r.on_cnp();
        for _ in 0..10 {
            r.on_increase_timer();
        }
        r.on_cnp();
        // After the reset we are back in fast recovery; a single timer event
        // must not add Rai to the target (gap-halving only).
        let rt_before = r.rt;
        r.on_increase_timer();
        assert_eq!(r.rt, rt_before);
    }

    #[test]
    fn pacing_delay_matches_rate() {
        let mut r = rp();
        // 1000 bytes at 40 Gbps = 200 ns.
        assert_eq!(r.pacing_delay_ps(1000), 200_000);
        r.on_cnp(); // 20 Gbps
        assert_eq!(r.pacing_delay_ps(1000), 400_000);
    }

    #[test]
    fn cnp_generator_rate_limits() {
        let mut g = CnpGenerator::default();
        let int = 50_000_000; // 50 µs
        assert!(g.on_marked_packet(0, int));
        assert!(!g.on_marked_packet(10_000_000, int));
        assert!(!g.on_marked_packet(49_999_999, int));
        assert!(g.on_marked_packet(50_000_000, int));
        assert_eq!(g.cnps_sent, 2);
    }

    #[test]
    fn config_scaling_preserves_ratios() {
        let c10 = DcqcnConfig::for_line_rate(10e9);
        let c40 = DcqcnConfig::default();
        assert!((c10.rai_bps / c10.line_rate_bps - c40.rai_bps / c40.line_rate_bps).abs() < 1e-12);
        assert_eq!(c10.alpha_timer_ps, c40.alpha_timer_ps);
    }
}
