//! Go-back-N reliable delivery, as implemented by RoCEv2 NICs (§2.1.2).
//!
//! RoCE NICs have too little memory for out-of-order buffering, so the
//! receiver discards any packet whose PSN (packet sequence number) exceeds
//! the expected one, replies with a NAK carrying the expected PSN, and the
//! sender rewinds its transmit pointer to that PSN — retransmitting
//! everything sent after the last in-order packet. These state machines are
//! pure (no clocks, no I/O): the simulator drives them and owns pacing.

use serde::Serialize;

/// Sender-side go-back-N state for one flow (queue pair).
#[derive(Debug, Clone, Serialize)]
pub struct GbnSender {
    total_packets: u32,
    /// Next PSN to transmit (new or rewound).
    next_psn: u32,
    /// Lowest unacknowledged PSN.
    snd_una: u32,
    /// Diagnostics.
    pub packets_sent: u64,
    pub naks_received: u64,
    pub rewind_packets: u64,
    pub timeouts: u64,
}

/// What the receiver NIC does with an arriving data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxAction {
    /// In order: deliver to the application, acknowledge `ack_psn`
    /// cumulatively.
    Deliver { ack_psn: u32 },
    /// Sequence gap: the NIC discards the packet and (first time per gap)
    /// NAKs the PSN it expected. `ood` is the out-of-order degree —
    /// `got - expected` — the quantity Fig. 3(b) plots.
    OutOfOrder { nak_psn: Option<u32>, ood: u32 },
    /// PSN below expectation — a go-back-N duplicate. Discarded silently
    /// (duplicates are the *consequence* of reordering, not reordering
    /// itself, so they don't count toward OOD).
    Duplicate,
}

impl GbnSender {
    pub fn new(total_packets: u32) -> GbnSender {
        assert!(total_packets > 0, "flow must have at least one packet");
        GbnSender {
            total_packets,
            next_psn: 0,
            snd_una: 0,
            packets_sent: 0,
            naks_received: 0,
            rewind_packets: 0,
            timeouts: 0,
        }
    }

    pub fn total_packets(&self) -> u32 {
        self.total_packets
    }

    /// PSN of the next packet to put on the wire, or `None` if everything
    /// (including any rewound range) has been transmitted and we are
    /// waiting for ACKs.
    pub fn peek_next(&self) -> Option<u32> {
        (self.next_psn < self.total_packets).then_some(self.next_psn)
    }

    /// Consume the next PSN for transmission.
    pub fn take_next(&mut self) -> Option<u32> {
        let psn = self.peek_next()?;
        self.next_psn += 1;
        self.packets_sent += 1;
        Some(psn)
    }

    /// Cumulative ACK: everything up to and including `psn` is delivered.
    pub fn on_ack(&mut self, psn: u32) {
        let new_una = (psn + 1).min(self.total_packets);
        if new_una > self.snd_una {
            self.snd_una = new_una;
            // ACKs never move the send pointer backwards, but a stale rewind
            // below the cumulative ACK would resend delivered data; clamp.
            if self.next_psn < self.snd_una {
                self.next_psn = self.snd_una;
            }
        }
    }

    /// NAK: receiver expected `psn`; rewind and resend from there.
    pub fn on_nak(&mut self, psn: u32) {
        self.naks_received += 1;
        // Ignore stale NAKs for already-acknowledged data.
        if psn < self.snd_una {
            return;
        }
        if psn < self.next_psn {
            self.rewind_packets += u64::from(self.next_psn - psn);
            self.next_psn = psn;
        }
    }

    /// Retransmission timeout: no ACK progress while data was outstanding.
    ///
    /// NAK-once receivers can strand a flow: if the retransmitted window is
    /// itself reordered, the receiver silently discards the overtakers (its
    /// NAK for this gap was already spent) and, once the wire drains, nobody
    /// ever speaks again. Hardware RoCE NICs break this with a transport
    /// timer that rewinds to the oldest unacknowledged PSN; so do we.
    /// Returns true if the timeout actually rewound anything.
    pub fn on_timeout(&mut self) -> bool {
        if self.is_complete() || self.next_psn == self.snd_una {
            return false;
        }
        self.timeouts += 1;
        self.rewind_packets += u64::from(self.next_psn - self.snd_una);
        self.next_psn = self.snd_una;
        true
    }

    /// All packets acknowledged — flow complete.
    pub fn is_complete(&self) -> bool {
        self.snd_una >= self.total_packets
    }

    pub fn snd_una(&self) -> u32 {
        self.snd_una
    }

    /// Unacknowledged packets currently outstanding.
    pub fn in_flight(&self) -> u32 {
        self.next_psn - self.snd_una
    }
}

/// Receiver-side go-back-N state for one flow.
#[derive(Debug, Clone, Serialize)]
pub struct GbnReceiver {
    total_packets: u32,
    expected: u32,
    /// A NAK for the current gap has already been sent; RoCE NICs emit one
    /// NAK per out-of-sequence event, then drop further OOO arrivals
    /// silently until the expected PSN shows up.
    nak_outstanding: bool,
    pub ooo_packets: u64,
    pub max_ood: u32,
    pub duplicates: u64,
}

impl GbnReceiver {
    pub fn new(total_packets: u32) -> GbnReceiver {
        assert!(total_packets > 0);
        GbnReceiver {
            total_packets,
            expected: 0,
            nak_outstanding: false,
            ooo_packets: 0,
            max_ood: 0,
            duplicates: 0,
        }
    }

    pub fn on_packet(&mut self, psn: u32) -> RxAction {
        if psn == self.expected {
            self.expected += 1;
            self.nak_outstanding = false;
            RxAction::Deliver { ack_psn: psn }
        } else if psn > self.expected {
            let ood = psn - self.expected;
            self.ooo_packets += 1;
            self.max_ood = self.max_ood.max(ood);
            let nak = if self.nak_outstanding {
                None
            } else {
                self.nak_outstanding = true;
                Some(self.expected)
            };
            RxAction::OutOfOrder { nak_psn: nak, ood }
        } else {
            self.duplicates += 1;
            RxAction::Duplicate
        }
    }

    pub fn is_complete(&self) -> bool {
        self.expected >= self.total_packets
    }

    pub fn expected(&self) -> u32 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_transfer_completes_without_naks() {
        let mut tx = GbnSender::new(5);
        let mut rx = GbnReceiver::new(5);
        while let Some(psn) = tx.take_next() {
            match rx.on_packet(psn) {
                RxAction::Deliver { ack_psn } => tx.on_ack(ack_psn),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(tx.is_complete());
        assert!(rx.is_complete());
        assert_eq!(tx.packets_sent, 5);
        assert_eq!(rx.ooo_packets, 0);
    }

    #[test]
    fn out_of_order_packet_naks_once_and_records_ood() {
        let mut rx = GbnReceiver::new(10);
        assert_eq!(rx.on_packet(0), RxAction::Deliver { ack_psn: 0 });
        // Packet 3 arrives while 1 is expected: OOD = 2, NAK(1).
        assert_eq!(
            rx.on_packet(3),
            RxAction::OutOfOrder { nak_psn: Some(1), ood: 2 }
        );
        // Further OOO arrivals in the same gap are dropped without NAK.
        assert_eq!(rx.on_packet(4), RxAction::OutOfOrder { nak_psn: None, ood: 3 });
        assert_eq!(rx.max_ood, 3);
        assert_eq!(rx.ooo_packets, 2);
        // Expected packet arrives: gap closes, NAK re-arms.
        assert_eq!(rx.on_packet(1), RxAction::Deliver { ack_psn: 1 });
        assert_eq!(
            rx.on_packet(5),
            RxAction::OutOfOrder { nak_psn: Some(2), ood: 3 }
        );
    }

    #[test]
    fn nak_rewinds_sender() {
        let mut tx = GbnSender::new(10);
        for _ in 0..6 {
            tx.take_next();
        }
        assert_eq!(tx.peek_next(), Some(6));
        tx.on_nak(2);
        assert_eq!(tx.peek_next(), Some(2));
        assert_eq!(tx.rewind_packets, 4);
        assert_eq!(tx.naks_received, 1);
        // Retransmission counts toward packets_sent.
        tx.take_next();
        assert_eq!(tx.packets_sent, 7);
    }

    #[test]
    fn stale_nak_below_cumulative_ack_is_ignored() {
        let mut tx = GbnSender::new(10);
        for _ in 0..8 {
            tx.take_next();
        }
        tx.on_ack(5);
        assert_eq!(tx.snd_una(), 6);
        tx.on_nak(3);
        assert_eq!(tx.peek_next(), Some(8), "stale NAK must not rewind");
    }

    #[test]
    fn duplicates_are_silent() {
        let mut rx = GbnReceiver::new(5);
        rx.on_packet(0);
        rx.on_packet(1);
        assert_eq!(rx.on_packet(0), RxAction::Duplicate);
        assert_eq!(rx.duplicates, 1);
        assert_eq!(rx.ooo_packets, 0);
    }

    #[test]
    fn full_go_back_n_recovery_round_trip() {
        // Simulate a reorder: sender emits 0..5, network delivers 0,2,3,1,4 —
        // classic PFC-induced overtaking.
        let mut tx = GbnSender::new(5);
        let mut rx = GbnReceiver::new(5);
        let first: Vec<u32> = std::iter::from_fn(|| tx.take_next()).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
        let mut naks = Vec::new();
        for psn in [0u32, 2, 3, 1, 4] {
            match rx.on_packet(psn) {
                RxAction::Deliver { ack_psn } => tx.on_ack(ack_psn),
                RxAction::OutOfOrder { nak_psn: Some(n), .. } => naks.push(n),
                _ => {}
            }
        }
        // Receiver delivered 0 and 1 (1 closed the gap, re-arming the NAK),
        // so NAK(1) fired for packet 2's arrival and NAK(2) for packet 4's.
        assert_eq!(naks, vec![1, 2]);
        assert_eq!(rx.expected(), 2);
        tx.on_nak(naks[0]); // stale: una is already 2
        tx.on_nak(naks[1]); // rewinds to 2
        let retrans: Vec<u32> = std::iter::from_fn(|| tx.take_next()).collect();
        assert_eq!(retrans, vec![2, 3, 4]);
        for psn in retrans {
            if let RxAction::Deliver { ack_psn } = rx.on_packet(psn) {
                tx.on_ack(ack_psn);
            }
        }
        assert!(tx.is_complete() && rx.is_complete());
    }

    #[test]
    fn in_flight_tracking() {
        let mut tx = GbnSender::new(4);
        assert_eq!(tx.in_flight(), 0);
        tx.take_next();
        tx.take_next();
        assert_eq!(tx.in_flight(), 2);
        tx.on_ack(0);
        assert_eq!(tx.in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_length_flow_rejected() {
        GbnSender::new(0);
    }

    #[test]
    fn timeout_rewinds_to_oldest_unacked() {
        let mut tx = GbnSender::new(6);
        for _ in 0..6 {
            tx.take_next();
        }
        tx.on_ack(1); // una = 2
        assert!(tx.on_timeout());
        assert_eq!(tx.peek_next(), Some(2));
        assert_eq!(tx.timeouts, 1);
        assert_eq!(tx.rewind_packets, 4);
    }

    #[test]
    fn timeout_is_noop_when_idle_or_complete() {
        let mut tx = GbnSender::new(2);
        assert!(!tx.on_timeout(), "nothing in flight");
        tx.take_next();
        tx.take_next();
        tx.on_ack(1);
        assert!(tx.is_complete());
        assert!(!tx.on_timeout(), "complete flow");
        assert_eq!(tx.timeouts, 0);
    }
}
