//! IRN-style selective-repeat transport (Mittal et al., SIGCOMM 2018,
//! "Revisiting Network Support for RDMA").
//!
//! The paper's related work (§5) positions IRN as the opposite design
//! point to RLB: instead of keeping PFC and avoiding reordering, IRN
//! *abandons* PFC and makes the NIC tolerate loss and reordering with
//! selective retransmission and a BDP-bounded window. Implementing it
//! makes the lossless+RLB vs. lossy+IRN comparison runnable (see the
//! `irn_compare` binary in `rlb-bench`).
//!
//! Model (faithful to IRN's transport logic, simplified bookkeeping):
//!
//! * The receiver **buffers** out-of-order arrivals (no go-back-N
//!   discard); every data packet is acknowledged with the *cumulative*
//!   PSN plus the PSN just received (a one-entry SACK). The first arrival
//!   beyond a gap also raises a NACK flag for the gap's base.
//! * The sender keeps a bitmap of delivered PSNs, bounds its in-flight
//!   packets by one BDP, retransmits selectively on NACK, and falls back
//!   to a retransmission timeout when everything in flight was lost.

use serde::Serialize;
use std::collections::VecDeque;

/// Receiver feedback for one data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrnAck {
    /// Highest PSN such that all PSNs below it are delivered.
    pub cumulative: u32,
    /// The PSN this ACK acknowledges selectively.
    pub sack: u32,
    /// Set when this arrival exposed a sequence gap: the sender should
    /// retransmit starting at `cumulative` without waiting for an RTO.
    pub nack: bool,
}

/// Receiver state: out-of-order arrivals are kept, not discarded.
#[derive(Debug, Clone, Serialize)]
pub struct IrnReceiver {
    total: u32,
    received: Vec<bool>,
    /// All PSNs `< cumulative` delivered to the application.
    cumulative: u32,
    pub ooo_arrivals: u64,
    pub duplicates: u64,
    pub max_ood: u32,
}

impl IrnReceiver {
    pub fn new(total_packets: u32) -> IrnReceiver {
        assert!(total_packets > 0);
        IrnReceiver {
            total: total_packets,
            received: vec![false; total_packets as usize],
            cumulative: 0,
            ooo_arrivals: 0,
            duplicates: 0,
            max_ood: 0,
        }
    }

    /// Process an arriving data packet; returns the ACK to send, or
    /// `None` for duplicates (still harmless — real IRN would re-ACK; we
    /// suppress to halve control traffic, the sender's bitmap copes).
    pub fn on_packet(&mut self, psn: u32) -> Option<IrnAck> {
        debug_assert!(psn < self.total);
        if self.received[psn as usize] {
            self.duplicates += 1;
            return None;
        }
        self.received[psn as usize] = true;
        let nack = psn > self.cumulative;
        if nack {
            self.ooo_arrivals += 1;
            self.max_ood = self.max_ood.max(psn - self.cumulative);
        }
        while (self.cumulative as usize) < self.received.len()
            && self.received[self.cumulative as usize]
        {
            self.cumulative += 1;
        }
        Some(IrnAck {
            cumulative: self.cumulative,
            sack: psn,
            nack,
        })
    }

    pub fn is_complete(&self) -> bool {
        self.cumulative >= self.total
    }

    pub fn cumulative(&self) -> u32 {
        self.cumulative
    }
}

/// Sender state: selective retransmission under a BDP window.
#[derive(Debug, Clone, Serialize)]
pub struct IrnSender {
    total: u32,
    acked: Vec<bool>,
    /// Next never-sent PSN.
    next_new: u32,
    /// All PSNs below this are acked (mirror of the receiver's cumulative).
    cumulative: u32,
    /// PSNs queued for selective retransmission (ordered, deduplicated).
    /// A deque: the hot consumer pops from the front (`take_next`), which
    /// must not shift the whole tail the way `Vec::remove(0)` did.
    retx_queue: VecDeque<u32>,
    /// In-flight cap (BDP in packets).
    window: u32,
    in_flight: u32,
    pub packets_sent: u64,
    pub retransmissions: u64,
    pub nacks: u64,
    pub timeouts: u64,
}

impl IrnSender {
    pub fn new(total_packets: u32, window: u32) -> IrnSender {
        assert!(total_packets > 0);
        assert!(window > 0);
        IrnSender {
            total: total_packets,
            acked: vec![false; total_packets as usize],
            next_new: 0,
            cumulative: 0,
            retx_queue: VecDeque::new(),
            window,
            in_flight: 0,
            packets_sent: 0,
            retransmissions: 0,
            nacks: 0,
            timeouts: 0,
        }
    }

    /// The next PSN to put on the wire (retransmissions first), if the
    /// window allows.
    pub fn peek_next(&self) -> Option<u32> {
        if self.in_flight >= self.window {
            return None;
        }
        if let Some(&psn) = self.retx_queue.front() {
            return Some(psn);
        }
        (self.next_new < self.total).then_some(self.next_new)
    }

    pub fn take_next(&mut self) -> Option<u32> {
        let psn = self.peek_next()?;
        if self.retx_queue.pop_front().is_some() {
            self.retransmissions += 1;
        } else {
            self.next_new += 1;
        }
        self.in_flight += 1;
        self.packets_sent += 1;
        Some(psn)
    }

    /// Process receiver feedback.
    pub fn on_ack(&mut self, ack: IrnAck) {
        if (ack.sack as usize) < self.acked.len() && !self.acked[ack.sack as usize] {
            self.acked[ack.sack as usize] = true;
            self.in_flight = self.in_flight.saturating_sub(1);
        }
        // Cumulative advance may cover PSNs we never saw a SACK for
        // (their ACKs can still be in flight); trust it.
        while self.cumulative < ack.cumulative.min(self.total) {
            if !self.acked[self.cumulative as usize] {
                self.acked[self.cumulative as usize] = true;
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            self.cumulative += 1;
        }
        self.retx_queue.retain(|&p| !self.acked[p as usize]);
        if ack.nack {
            self.nacks += 1;
            // Selective retransmit: the unacked range between the
            // receiver's cumulative pointer and the SACKed packet.
            for p in ack.cumulative..ack.sack {
                if !self.acked[p as usize] && !self.retx_queue.contains(&p) && p < self.next_new {
                    self.retx_queue.push_back(p);
                }
            }
            self.retx_queue.make_contiguous().sort_unstable();
        }
    }

    /// Retransmission timeout: everything sent-but-unacked goes back on
    /// the retransmit queue and the window reopens.
    pub fn on_timeout(&mut self) -> bool {
        if self.is_complete() {
            return false;
        }
        let mut any = false;
        for p in self.cumulative..self.next_new {
            if !self.acked[p as usize] && !self.retx_queue.contains(&p) {
                self.retx_queue.push_back(p);
                any = true;
            }
        }
        if any {
            self.retx_queue.make_contiguous().sort_unstable();
            self.in_flight = 0;
            self.timeouts += 1;
        }
        any
    }

    pub fn is_complete(&self) -> bool {
        self.cumulative >= self.total
    }

    pub fn cumulative(&self) -> u32 {
        self.cumulative
    }

    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_transfer() {
        let mut tx = IrnSender::new(5, 16);
        let mut rx = IrnReceiver::new(5);
        while let Some(psn) = tx.take_next() {
            let ack = rx.on_packet(psn).expect("no duplicates here");
            tx.on_ack(ack);
        }
        assert!(tx.is_complete() && rx.is_complete());
        assert_eq!(tx.packets_sent, 5);
        assert_eq!(tx.retransmissions, 0);
        assert_eq!(rx.ooo_arrivals, 0);
    }

    #[test]
    fn out_of_order_arrivals_are_buffered_not_discarded() {
        let mut rx = IrnReceiver::new(5);
        let a0 = rx.on_packet(0).unwrap();
        assert_eq!((a0.cumulative, a0.sack, a0.nack), (1, 0, false));
        // 3 arrives before 1 and 2: buffered, NACK raised, OOD recorded.
        let a3 = rx.on_packet(3).unwrap();
        assert_eq!((a3.cumulative, a3.sack, a3.nack), (1, 3, true));
        assert_eq!(rx.max_ood, 2);
        // 1 then 2: cumulative jumps over the buffered 3.
        let a1 = rx.on_packet(1).unwrap();
        assert_eq!(a1.cumulative, 2);
        let a2 = rx.on_packet(2).unwrap();
        assert_eq!(a2.cumulative, 4, "buffered PSN 3 must be consumed");
        let a4 = rx.on_packet(4).unwrap();
        assert_eq!(a4.cumulative, 5);
        assert!(rx.is_complete());
    }

    #[test]
    fn nack_triggers_selective_retransmit_only() {
        let mut tx = IrnSender::new(10, 16);
        for _ in 0..6 {
            tx.take_next();
        }
        // Receiver saw 0..3 and then 5 (4 lost): cum=4, sack=5, nack.
        for p in 0..4 {
            tx.on_ack(IrnAck { cumulative: p + 1, sack: p, nack: false });
        }
        tx.on_ack(IrnAck { cumulative: 4, sack: 5, nack: true });
        // Only PSN 4 is queued for retransmission — selective, not go-back-N.
        assert_eq!(tx.peek_next(), Some(4));
        tx.take_next();
        assert_eq!(tx.retransmissions, 1);
        // Next transmission resumes new data.
        assert_eq!(tx.peek_next(), Some(6));
    }

    #[test]
    fn window_caps_in_flight() {
        let mut tx = IrnSender::new(100, 4);
        for _ in 0..4 {
            assert!(tx.take_next().is_some());
        }
        assert_eq!(tx.peek_next(), None, "window full");
        tx.on_ack(IrnAck { cumulative: 1, sack: 0, nack: false });
        assert_eq!(tx.peek_next(), Some(4));
    }

    #[test]
    fn timeout_requeues_all_unacked() {
        let mut tx = IrnSender::new(6, 16);
        for _ in 0..6 {
            tx.take_next();
        }
        tx.on_ack(IrnAck { cumulative: 2, sack: 1, nack: false });
        assert!(tx.on_timeout());
        assert_eq!(tx.timeouts, 1);
        // 2..6 unacked → retransmit in order.
        let order: Vec<u32> = std::iter::from_fn(|| tx.take_next()).take(4).collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
        assert!(!IrnSender::new(1, 1).on_timeout(), "nothing sent: no-op");
    }

    #[test]
    fn duplicate_arrivals_suppressed() {
        let mut rx = IrnReceiver::new(3);
        rx.on_packet(0).unwrap();
        assert!(rx.on_packet(0).is_none());
        assert_eq!(rx.duplicates, 1);
    }

    #[test]
    fn cumulative_ack_covers_unsacked_psns() {
        let mut tx = IrnSender::new(4, 16);
        for _ in 0..4 {
            tx.take_next();
        }
        // A single late ACK with cum=4 (all delivered) finishes the flow
        // even though the per-packet SACKs were lost.
        tx.on_ack(IrnAck { cumulative: 4, sack: 3, nack: false });
        assert!(tx.is_complete());
        assert_eq!(tx.in_flight(), 0);
    }
}
