//! `FlowTable` — a dense, deterministic map for per-flow state on the
//! per-packet decision hot path.
//!
//! Every load-balancing scheme keeps some per-flow state (a flowlet entry,
//! a round-robin base, a reroute override) that is read and written once
//! per data packet. Simulator flow ids are dense indices assigned in
//! arrival order (`crates/net/src/sim.rs` numbers flows `0..n`), so a
//! `BTreeMap<u64, V>` there pays O(log n) pointer-chasing for what is
//! morally an array access. `FlowTable<V>` is the array: a lazily-grown
//! `Vec<Option<V>>` slab for keys below [`DENSE_KEY_LIMIT`], with O(1)
//! get/insert/remove, plus a small deterministic open-addressed map for
//! the rare genuinely-sparse keys — so nothing here ever reaches for
//! `std::HashMap` (whose iteration order would break bit-exact replay;
//! see `cargo xtask lint`'s hash-container rule).
//!
//! Determinism contract: every observable — lookups, returned old values,
//! `len`, and crucially **iteration order** (ascending key, exactly like
//! `BTreeMap`) — is a pure function of the table's logical contents,
//! never of insertion history or probe-sequence accidents. The
//! `table_matches_btreemap_reference` proptest in `lib.rs` pins this
//! against a `BTreeMap` reference model under random insert/remove/sweep
//! interleavings.

/// Keys below this bound live in the dense slab; keys at or above it go
/// to the sparse fallback. The bound caps the slab's worst-case footprint
/// (one `Option<V>` per key below the largest dense key seen): simulation
/// flow ids are sequential from zero, so in practice the slab holds
/// exactly the live flow population.
pub const DENSE_KEY_LIMIT: u64 = 1 << 20;

/// One open-addressed bucket of the sparse region.
#[derive(Debug, Clone)]
enum Slot<V> {
    Empty,
    /// A removed entry; probes continue past it, inserts may reuse it.
    Tomb,
    Full(u64, V),
}

/// Deterministic open-addressed map (linear probing, power-of-two
/// capacity, multiplicative hashing). Only ever holds the "overflow"
/// keys `>= DENSE_KEY_LIMIT`, which real workloads do not produce — it
/// exists so a stray key (a hash-derived id, a sentinel) degrades to a
/// still-correct, still-deterministic slow path instead of a panic.
#[derive(Debug, Clone)]
struct SparseMap<V> {
    slots: Vec<Slot<V>>,
    /// Live entries.
    len: usize,
    /// Live entries + tombstones (drives rehashing).
    occupied: usize,
}

/// Fibonacci multiplicative hash — deterministic and seed-free.
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<V> SparseMap<V> {
    fn new() -> SparseMap<V> {
        SparseMap {
            slots: Vec::new(),
            len: 0,
            occupied: 0,
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        debug_assert!(self.slots.len().is_power_of_two());
        self.slots.len() as u64 - 1
    }

    /// Index of the slot holding `key`, if present.
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = spread(key) & mask;
        loop {
            match &self.slots[i as usize] {
                Slot::Empty => return None,
                Slot::Full(k, _) if *k == key => return Some(i as usize),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| match &self.slots[i] {
            Slot::Full(_, v) => v,
            _ => unreachable!("find() returns Full slots only"),
        })
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        match &mut self.slots[i] {
            Slot::Full(_, v) => Some(v),
            _ => unreachable!("find() returns Full slots only"),
        }
    }

    /// Grow (or initially allocate) and re-seat every live entry.
    fn rehash(&mut self, min_capacity: usize) {
        let new_cap = min_capacity.next_power_of_two().max(8);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || Slot::Empty);
        self.occupied = self.len;
        let mask = self.mask();
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut i = spread(k) & mask;
                while !matches!(self.slots[i as usize], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i as usize] = Slot::Full(k, v);
            }
        }
    }

    fn insert(&mut self, key: u64, value: V) -> Option<V> {
        // Keep load (live + tombstones) under 3/4 so probes stay short.
        if self.slots.is_empty() || (self.occupied + 1) * 4 > self.slots.len() * 3 {
            self.rehash((self.len + 1) * 2);
        }
        let mask = self.mask();
        let mut i = spread(key) & mask;
        let mut reuse: Option<u64> = None;
        loop {
            match &mut self.slots[i as usize] {
                Slot::Empty => {
                    let target = reuse.unwrap_or(i);
                    if reuse.is_none() {
                        self.occupied += 1;
                    }
                    self.slots[target as usize] = Slot::Full(key, value);
                    self.len += 1;
                    return None;
                }
                Slot::Tomb => {
                    // Remember the first tombstone; the key may still live
                    // further down the probe chain.
                    if reuse.is_none() {
                        reuse = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                Slot::Full(k, v) => {
                    if *k == key {
                        return Some(std::mem::replace(v, value));
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        match std::mem::replace(&mut self.slots[i], Slot::Tomb) {
            Slot::Full(_, v) => {
                self.len -= 1;
                Some(v)
            }
            _ => unreachable!("find() returns Full slots only"),
        }
    }

    /// Live keys in ascending order. Sorting makes iteration a pure
    /// function of the contents — probe layout depends on the
    /// insert/remove history and must never leak out.
    fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Full(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        keys.sort_unstable();
        keys
    }
}

/// Dense flow-state table: O(1) access keyed by `u64` flow id, with
/// `BTreeMap`-compatible observable behavior (see module docs).
#[derive(Debug, Clone)]
pub struct FlowTable<V> {
    /// Slab for keys `< DENSE_KEY_LIMIT`; index == key.
    dense: Vec<Option<V>>,
    /// Live entries in `dense`.
    dense_len: usize,
    sparse: SparseMap<V>,
}

impl<V> Default for FlowTable<V> {
    fn default() -> Self {
        FlowTable::new()
    }
}

impl<V> FlowTable<V> {
    pub fn new() -> FlowTable<V> {
        FlowTable {
            dense: Vec::new(),
            dense_len: 0,
            sparse: SparseMap::new(),
        }
    }

    /// Pre-size the slab for an expected flow population (optional — the
    /// slab grows lazily either way).
    pub fn with_capacity(n: usize) -> FlowTable<V> {
        let mut t = FlowTable::new();
        t.dense.reserve(n.min(DENSE_KEY_LIMIT as usize));
        t
    }

    pub fn len(&self) -> usize {
        self.dense_len + self.sparse.len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if key < DENSE_KEY_LIMIT {
            self.dense.get(key as usize).and_then(Option::as_ref)
        } else {
            self.sparse.get(key)
        }
    }

    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if key < DENSE_KEY_LIMIT {
            self.dense.get_mut(key as usize).and_then(Option::as_mut)
        } else {
            self.sparse.get_mut(key)
        }
    }

    /// Insert, returning the previous value for the key (like `BTreeMap`).
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if key < DENSE_KEY_LIMIT {
            let i = key as usize;
            if i >= self.dense.len() {
                self.dense.resize_with(i + 1, || None);
            }
            let old = self.dense[i].replace(value);
            if old.is_none() {
                self.dense_len += 1;
            }
            old
        } else {
            self.sparse.insert(key, value)
        }
    }

    /// Remove, returning the value if present. This is the slot
    /// reclamation hook `on_flow_complete` wires into: a completed flow's
    /// slot is freed for reuse (dense slots are cheap `None`s; sparse
    /// slots become tombstones and are compacted on the next rehash).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if key < DENSE_KEY_LIMIT {
            let old = self.dense.get_mut(key as usize).and_then(Option::take);
            if old.is_some() {
                self.dense_len -= 1;
            }
            old
        } else {
            self.sparse.remove(key)
        }
    }

    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// `entry(key).or_insert_with(default)` for the common "first packet
    /// of a flow creates its state" pattern, without the borrow gymnastics.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key, default());
        }
        self.get_mut(key).expect("just inserted")
    }

    pub fn clear(&mut self) {
        self.dense.clear();
        self.dense_len = 0;
        self.sparse = SparseMap::new();
    }

    /// Expiry/GC sweep hook (flowlet aging): visit every entry in
    /// ascending key order, dropping those for which `keep` returns
    /// false. The deterministic visit order matters — predicates may be
    /// stateful, and replay must not depend on layout accidents.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &mut V) -> bool) {
        for (i, slot) in self.dense.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(i as u64, v) {
                    *slot = None;
                    self.dense_len -= 1;
                }
            }
        }
        for k in self.sparse.sorted_keys() {
            let drop_it = {
                let v = self.sparse.get_mut(k).expect("key from live scan");
                !keep(k, v)
            };
            if drop_it {
                self.sparse.remove(k);
            }
        }
    }

    /// Iterate `(key, &value)` in ascending key order (dense keys are all
    /// below [`DENSE_KEY_LIMIT`], sparse keys all at or above it, so the
    /// concatenation is globally sorted — identical to `BTreeMap` order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u64, v)));
        let sparse_keys = self.sparse.sorted_keys();
        let sparse = sparse_keys.into_iter().map(move |k| {
            (k, self.sparse.get(k).expect("key from live scan"))
        });
        dense.chain(sparse)
    }

    /// Live keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_insert_get_remove_roundtrip() {
        let mut t: FlowTable<u32> = FlowTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(0, 10), None);
        assert_eq!(t.insert(3, 31), Some(30));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(3), Some(&31));
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(3), Some(31));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.len(), 1);
        assert!(t.contains_key(0));
    }

    #[test]
    fn sparse_keys_fall_back_to_open_addressing() {
        let mut t: FlowTable<u64> = FlowTable::new();
        let base = DENSE_KEY_LIMIT;
        for k in 0..100u64 {
            // Adversarial stride: many keys collide modulo small powers
            // of two after the multiplicative spread.
            assert_eq!(t.insert(base + k * 1024, k), None);
        }
        assert_eq!(t.len(), 100);
        for k in 0..100u64 {
            assert_eq!(t.get(base + k * 1024), Some(&k));
        }
        // Remove half, re-insert with new values; tombstones must not
        // shadow live entries or lose updates.
        for k in (0..100u64).step_by(2) {
            assert_eq!(t.remove(base + k * 1024), Some(k));
        }
        assert_eq!(t.len(), 50);
        for k in (0..100u64).step_by(2) {
            assert_eq!(t.insert(base + k * 1024, 1000 + k), None);
        }
        for k in 0..100u64 {
            let want = if k % 2 == 0 { 1000 + k } else { k };
            assert_eq!(t.get(base + k * 1024), Some(&want), "key stride {k}");
        }
    }

    #[test]
    fn iteration_is_ascending_across_both_regions() {
        let mut t: FlowTable<&str> = FlowTable::new();
        t.insert(DENSE_KEY_LIMIT + 7, "s7");
        t.insert(2, "d2");
        t.insert(DENSE_KEY_LIMIT, "s0");
        t.insert(0, "d0");
        let got: Vec<(u64, &str)> = t.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(
            got,
            vec![
                (0, "d0"),
                (2, "d2"),
                (DENSE_KEY_LIMIT, "s0"),
                (DENSE_KEY_LIMIT + 7, "s7"),
            ]
        );
    }

    #[test]
    fn retain_sweeps_in_key_order_and_reclaims() {
        let mut t: FlowTable<u64> = FlowTable::new();
        for k in [0u64, 1, 5, DENSE_KEY_LIMIT + 1, DENSE_KEY_LIMIT + 9] {
            t.insert(k, k * 10);
        }
        let mut visited = Vec::new();
        t.retain(|k, v| {
            visited.push(k);
            *v += 1; // sweep may mutate survivors (aging timestamps)
            k % 2 == 1
        });
        assert_eq!(
            visited,
            vec![0, 1, 5, DENSE_KEY_LIMIT + 1, DENSE_KEY_LIMIT + 9]
        );
        let got: Vec<u64> = t.keys().collect();
        assert_eq!(got, vec![1, 5, DENSE_KEY_LIMIT + 1, DENSE_KEY_LIMIT + 9]);
        assert_eq!(t.get(5), Some(&51));
        assert_eq!(t.get(0), None);
    }

    #[test]
    fn get_or_insert_with_runs_default_once() {
        let mut t: FlowTable<u64> = FlowTable::new();
        let mut calls = 0;
        *t.get_or_insert_with(9, || {
            calls += 1;
            7
        }) += 1;
        *t.get_or_insert_with(9, || {
            calls += 1;
            100
        }) += 1;
        assert_eq!(calls, 1);
        assert_eq!(t.get(9), Some(&9));
    }

    #[test]
    fn clear_resets_both_regions() {
        let mut t: FlowTable<u8> = FlowTable::new();
        t.insert(1, 1);
        t.insert(DENSE_KEY_LIMIT + 1, 2);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.insert(1, 3);
        assert_eq!(t.get(1), Some(&3));
    }

    #[test]
    fn u64_max_key_is_a_legal_sparse_key() {
        let mut t: FlowTable<u8> = FlowTable::new();
        t.insert(u64::MAX, 1);
        assert_eq!(t.get(u64::MAX), Some(&1));
        assert_eq!(t.remove(u64::MAX), Some(1));
        assert!(t.is_empty());
    }

    #[test]
    fn sparse_heavy_churn_keeps_probe_chains_sound() {
        // Interleave inserts and removes so tombstones accumulate and
        // rehashes must compact them.
        let mut t: FlowTable<u64> = FlowTable::new();
        let key = |i: u64| DENSE_KEY_LIMIT + spread(i) % 100_000;
        let mut live = std::collections::BTreeMap::new();
        for round in 0..2_000u64 {
            let k = key(round % 500);
            if round % 3 == 0 {
                assert_eq!(t.remove(k), live.remove(&k), "round {round}");
            } else {
                assert_eq!(t.insert(k, round), live.insert(k, round), "round {round}");
            }
            assert_eq!(t.len(), live.len(), "round {round}");
        }
        let got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u64)> = live.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }
}
