//! # rlb-engine — deterministic discrete-event simulation core
//!
//! The foundation under the RLB network simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-picosecond clock in which
//!   serialization delays at datacenter link rates are exact.
//! * [`EventQueue`] — a future-event list with FIFO-stable tie-breaking, so
//!   equal-seed runs replay bit-exactly. Backed by a hierarchical timing
//!   wheel (see `wheel`); [`HeapEventQueue`] keeps the original binary-heap
//!   implementation as the differential-test reference and bench baseline.
//! * [`FlowTable`] — dense O(1) per-flow state storage with
//!   `BTreeMap`-compatible deterministic iteration, for the per-packet
//!   decision hot path in the load balancers.
//! * [`PacketArena`] — a generational slab owning every queued packet, with
//!   SoA hot columns (size, flow, class, enqueue time) so occupancy sweeps
//!   and byte accounting never touch the cold payload; queues move 4-byte
//!   [`PacketHandle`]s instead of full packets.
//! * [`rng`] — seed-derived independent random substreams.
//!
//! The engine is deliberately ignorant of packets and switches; the network
//! semantics live in `rlb-net`, which owns the dispatch loop.

// Library code must justify every panic site: bare unwrap() is denied here
// (tests are exempt). Enforced alongside `cargo xtask lint`'s lib-unwrap rule.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod arena;
pub mod queue;
pub mod rng;
pub mod table;
pub mod time;
mod wheel;

pub use arena::{PacketArena, PacketHandle};
pub use queue::{shard_key, EventQueue, HeapEventQueue, ShardEventQueue};
pub use rng::{shard_substream, substream, SimRng};
pub use table::FlowTable;
pub use time::{bytes_in, tx_delay, SimDuration, SimTime};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the insertion order, events pop sorted by time, and
        /// equal-time events pop in insertion order.
        #[test]
        fn queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut popped = Vec::new();
            while let Some((t, idx)) = q.pop() {
                popped.push((t.as_ps(), idx));
            }
            prop_assert_eq!(popped.len(), times.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
                }
            }
        }

        /// Differential: the timing-wheel queue and the reference heap queue,
        /// driven through the same schedule/pop interleaving, produce
        /// identical pop sequences. Deltas span wheel levels, the far-future
        /// spillover, and massive same-timestamp tie batches.
        #[test]
        fn wheel_matches_heap_reference(
            ops in proptest::collection::vec(
                (0u8..4, 0u64..200_000_000_000, 1u16..300), 1..120)
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut payload = 0u64;
            for (kind, delta, reps) in ops {
                match kind {
                    // Burst of same-timestamp ties at now + delta.
                    0 => {
                        let at = SimTime(wheel.now().as_ps() + delta);
                        for _ in 0..reps {
                            wheel.schedule(at, payload);
                            heap.schedule(at, payload);
                            payload += 1;
                        }
                    }
                    // Spread of distinct near timestamps.
                    1 => {
                        for r in 0..reps as u64 {
                            let at = SimTime(wheel.now().as_ps() + delta + r * 777);
                            wheel.schedule(at, payload);
                            heap.schedule(at, payload);
                            payload += 1;
                        }
                    }
                    // Far-future spillover (beyond the 2^36-tick span).
                    2 => {
                        let at = SimTime(
                            wheel.now().as_ps() + delta + (1u64 << 51));
                        wheel.schedule(at, payload);
                        heap.schedule(at, payload);
                        payload += 1;
                    }
                    // Pop a batch, checking equality as we go.
                    _ => {
                        for _ in 0..reps {
                            let (a, b) = (wheel.pop(), heap.pop());
                            prop_assert_eq!(a, b);
                            if a.is_none() {
                                break;
                            }
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            }
            // Drain to empty: full tail must match too.
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
        }

        /// Differential: `FlowTable` driven through random
        /// insert/remove/get/sweep interleavings behaves observably
        /// identically to a `BTreeMap` reference model — returned old
        /// values, lookups, lengths, and full ascending-key iteration
        /// order included. Keys mix the dense slab region with sparse
        /// open-addressed overflow keys so both layouts are exercised.
        #[test]
        fn table_matches_btreemap_reference(
            ops in proptest::collection::vec(
                (0u8..6, 0u64..64, 0u64..1_000_000), 1..300)
        ) {
            use std::collections::BTreeMap;
            let mut table: FlowTable<u64> = FlowTable::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            // Map the small key index onto a mix of dense and sparse keys,
            // with deliberate collisions (same index → same key).
            let key_of = |i: u64| -> u64 {
                match i % 4 {
                    0 | 1 => i,                                   // dense, tiny
                    2 => table::DENSE_KEY_LIMIT + i * 131,        // sparse
                    _ => table::DENSE_KEY_LIMIT - 1 - (i / 4),    // dense, near boundary
                }
            };
            for (kind, ki, val) in ops {
                let k = key_of(ki);
                match kind {
                    0 | 1 => {
                        prop_assert_eq!(table.insert(k, val), model.insert(k, val));
                    }
                    2 => {
                        prop_assert_eq!(table.remove(k), model.remove(&k));
                    }
                    3 => {
                        prop_assert_eq!(table.get(k), model.get(&k));
                        prop_assert_eq!(table.contains_key(k), model.contains_key(&k));
                    }
                    4 => {
                        // Mutate-through-get_mut parity.
                        if let Some(v) = table.get_mut(k) { *v = v.wrapping_add(val); }
                        if let Some(v) = model.get_mut(&k) { *v = v.wrapping_add(val); }
                    }
                    _ => {
                        // GC sweep: drop entries below a value threshold,
                        // age the survivors; both sides must visit the
                        // same entries in the same (ascending key) order.
                        let mut t_visit = Vec::new();
                        table.retain(|key, v| {
                            t_visit.push(key);
                            *v = v.wrapping_add(1);
                            *v % 3 != 0
                        });
                        let mut m_visit = Vec::new();
                        model.retain(|&key, v| {
                            m_visit.push(key);
                            *v = v.wrapping_add(1);
                            *v % 3 != 0
                        });
                        prop_assert_eq!(t_visit, m_visit);
                    }
                }
                prop_assert_eq!(table.len(), model.len());
                prop_assert_eq!(table.is_empty(), model.is_empty());
            }
            let got: Vec<(u64, u64)> = table.iter().map(|(k, v)| (k, *v)).collect();
            let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        }

        /// Differential: a FIFO queue of `PacketArena` handles, driven
        /// through random push/pop/churn interleavings, is observably
        /// identical to a `VecDeque` of inline values — same pop order,
        /// same payloads, same hot-column reads, same occupancy. This is
        /// the exact shape the switch egress queues use the arena in.
        #[test]
        fn arena_queue_matches_vecdeque_reference(
            ops in proptest::collection::vec((0u8..3, 1u32..10_000, 0u64..1_000_000), 1..300)
        ) {
            use std::collections::VecDeque;
            let mut arena: PacketArena<(u32, u64)> = PacketArena::new();
            let mut q: VecDeque<PacketHandle> = VecDeque::new();
            let mut model: VecDeque<(u32, u64)> = VecDeque::new();
            let mut seq = 0u32;
            for (kind, size, t) in ops {
                match kind {
                    // Push: arena-alloc + handle enqueue vs inline enqueue.
                    0 | 1 => {
                        let h = arena.alloc(size, seq, false, t, (size, t));
                        q.push_back(h);
                        model.push_back((size, t));
                        seq += 1;
                    }
                    // Pop: hot columns must match the inline value, then
                    // the freed payload must too.
                    _ => {
                        let (got, want) = (q.pop_front(), model.pop_front());
                        prop_assert_eq!(got.is_some(), want.is_some());
                        if let (Some(h), Some(w)) = (got, want) {
                            prop_assert_eq!(arena.size_bytes(h), w.0);
                            prop_assert_eq!(arena.enqueued_at_ps(h), w.1);
                            prop_assert_eq!(arena.free(h), w);
                        }
                    }
                }
                prop_assert_eq!(arena.len(), model.len());
                // Byte accounting straight off the hot column.
                let arena_bytes: u64 = q.iter().map(|&h| arena.size_bytes(h) as u64).sum();
                let model_bytes: u64 = model.iter().map(|v| v.0 as u64).sum();
                prop_assert_eq!(arena_bytes, model_bytes);
            }
            // Drain the tail: full remaining order must match.
            while let Some(h) = q.pop_front() {
                let w = model.pop_front();
                prop_assert_eq!(Some(arena.free(h)), w);
            }
            prop_assert!(model.is_empty());
            prop_assert!(arena.is_empty());
        }

        /// Differential: a single-shard `ShardEventQueue` driven through the
        /// same schedule/pop interleaving as the sequential `EventQueue`
        /// pops the identical sequence — the packed `(sched_ps, shard, seq)`
        /// key collapses to plain insertion order when one shard produces
        /// every event, which is what makes `--shards 1` byte-identical to
        /// the sequential engine.
        #[test]
        fn shard_queue_matches_sequential_reference(
            ops in proptest::collection::vec(
                (0u8..3, 0u64..200_000_000_000, 1u16..200), 1..120)
        ) {
            let mut seqq = EventQueue::new();
            let mut shq = ShardEventQueue::new(3);
            let mut payload = 0u64;
            for (kind, delta, reps) in ops {
                match kind {
                    0 => {
                        let at = SimTime(seqq.now().as_ps() + delta);
                        for _ in 0..reps {
                            seqq.schedule(at, payload);
                            shq.schedule(at, payload);
                            payload += 1;
                        }
                    }
                    1 => {
                        for r in 0..reps as u64 {
                            let at = SimTime(seqq.now().as_ps() + delta + r * 777);
                            seqq.schedule(at, payload);
                            shq.schedule(at, payload);
                            payload += 1;
                        }
                    }
                    _ => {
                        for _ in 0..reps {
                            let a = seqq.pop();
                            let b = shq.pop().map(|(t, _k, e)| (t, e));
                            prop_assert_eq!(a, b);
                            if a.is_none() {
                                break;
                            }
                        }
                    }
                }
                prop_assert_eq!(seqq.len(), shq.len());
                prop_assert_eq!(seqq.peek_time(), shq.peek_time());
            }
            loop {
                let a = seqq.pop();
                let b = shq.pop().map(|(t, _k, e)| (t, e));
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(seqq.now(), shq.now());
        }

        /// Cross-shard merge keys order by (time at schedule, shard, seq)
        /// and never collide across shards.
        #[test]
        fn shard_keys_are_canonical(
            a_ps in 0u64..u64::MAX / 2, b_ps in 0u64..u64::MAX / 2,
            a_sh in 0u16..1024, b_sh in 0u16..1024,
            a_seq in 0u64..(1 << 48), b_seq in 0u64..(1 << 48),
        ) {
            let (ka, kb) = (shard_key(a_ps, a_sh, a_seq), shard_key(b_ps, b_sh, b_seq));
            prop_assert_eq!(
                ka.cmp(&kb),
                (a_ps, a_sh, a_seq).cmp(&(b_ps, b_sh, b_seq))
            );
        }

        /// tx_delay is monotone in bytes and additive across packet splits.
        #[test]
        fn tx_delay_additive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let rate = 40_000_000_000u64;
            let whole = tx_delay(a + b, rate);
            let split = tx_delay(a, rate) + tx_delay(b, rate);
            prop_assert_eq!(whole, split);
        }
    }
}
