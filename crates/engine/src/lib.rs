//! # rlb-engine — deterministic discrete-event simulation core
//!
//! The foundation under the RLB network simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-picosecond clock in which
//!   serialization delays at datacenter link rates are exact.
//! * [`EventQueue`] — a future-event list with FIFO-stable tie-breaking, so
//!   equal-seed runs replay bit-exactly.
//! * [`rng`] — seed-derived independent random substreams.
//!
//! The engine is deliberately ignorant of packets and switches; the network
//! semantics live in `rlb-net`, which owns the dispatch loop.

// Library code must justify every panic site: bare unwrap() is denied here
// (tests are exempt). Enforced alongside `cargo xtask lint`'s lib-unwrap rule.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use rng::{substream, SimRng};
pub use time::{bytes_in, tx_delay, SimDuration, SimTime};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the insertion order, events pop sorted by time, and
        /// equal-time events pop in insertion order.
        #[test]
        fn queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut popped = Vec::new();
            while let Some((t, idx)) = q.pop() {
                popped.push((t.as_ps(), idx));
            }
            prop_assert_eq!(popped.len(), times.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
                }
            }
        }

        /// tx_delay is monotone in bytes and additive across packet splits.
        #[test]
        fn tx_delay_additive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let rate = 40_000_000_000u64;
            let whole = tx_delay(a + b, rate);
            let split = tx_delay(a, rate) + tx_delay(b, rate);
            prop_assert_eq!(whole, split);
        }
    }
}
