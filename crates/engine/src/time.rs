//! Simulation time.
//!
//! The simulator clocks everything in **integer picoseconds**. This is the
//! coarsest unit in which every quantity we care about is exact:
//! at 40 Gbps one byte serializes in exactly 200 ps, at 10 Gbps in 800 ps,
//! and at 100 Gbps in 80 ps — so queueing arithmetic never accumulates
//! floating-point drift. A `u64` of picoseconds covers ~213 days of
//! simulated time, far beyond any experiment horizon.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in picoseconds since t=0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel "never" time greater than any reachable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Identity constructor, `const` so bucket widths and tick periods can
    /// be named constants (the timing wheel and benches rely on this).
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Elapsed time since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// The span from the clock origin (t=0) to this instant. Lets callers
    /// scale an instant-valued config field (e.g. a horizon) as a duration
    /// without unwrapping to raw picoseconds.
    #[inline]
    pub const fn as_duration(self) -> SimDuration {
        SimDuration(self.0)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Identity constructor, `const` (see [`SimTime::from_ps`]).
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Duration from a floating-point number of microseconds (used by config
    /// sweeps such as the Δt sensitivity experiment, e.g. 2.5 µs).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    #[inline]
    pub fn mul_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

/// Transmission (serialization) delay of `bytes` on a link of `bits_per_sec`.
///
/// Computed in u128 to avoid overflow, exact for the standard datacenter
/// rates (10/25/40/100 Gbps all divide 10^12 evenly for byte-granular sizes).
#[inline]
pub fn tx_delay(bytes: u64, bits_per_sec: u64) -> SimDuration {
    debug_assert!(bits_per_sec > 0);
    let ps = (bytes as u128 * 8 * PS_PER_SEC as u128) / bits_per_sec as u128;
    SimDuration(ps as u64)
}

/// Bytes that a link of `bits_per_sec` can carry in `dur` (rounded down).
#[inline]
pub fn bytes_in(dur: SimDuration, bits_per_sec: u64) -> u64 {
    ((dur.0 as u128 * bits_per_sec as u128) / (8 * PS_PER_SEC as u128)) as u64
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(2).as_ps(), 2_000_000);
        assert_eq!(SimTime::from_ms(3).as_ps(), 3_000_000_000);
        assert_eq!(SimTime::from_us(5).as_us_f64(), 5.0);
        assert_eq!(SimDuration::from_us_f64(2.5).as_ps(), 2_500_000);
    }

    #[test]
    fn tx_delay_is_exact_at_standard_rates() {
        // 1000 bytes at 40 Gbps = 8000 bits / 40e9 bps = 200 ns.
        assert_eq!(tx_delay(1000, 40_000_000_000), SimDuration::from_ns(200));
        // Same packet at 10 Gbps = 800 ns.
        assert_eq!(tx_delay(1000, 10_000_000_000), SimDuration::from_ns(800));
        // One byte at 40 Gbps is exactly 200 ps.
        assert_eq!(tx_delay(1, 40_000_000_000).as_ps(), 200);
        assert_eq!(tx_delay(0, 40_000_000_000), SimDuration::ZERO);
    }

    #[test]
    fn bytes_in_inverts_tx_delay() {
        let rate = 40_000_000_000;
        for n in [1u64, 64, 1000, 1500, 9000, 1 << 20] {
            assert_eq!(bytes_in(tx_delay(n, rate), rate), n);
        }
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d).as_ps(), 13_000_000);
        assert_eq!(((t + d) - t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
        let mut acc = SimDuration::ZERO;
        acc += d;
        acc += d;
        assert_eq!(acc, SimDuration::from_us(6));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_ns(1500)), "1.500us");
    }

    #[test]
    fn bytes_in_rounds_down() {
        // 100 ps at 40G carries half a byte — rounds to 0.
        assert_eq!(bytes_in(SimDuration(100), 40_000_000_000), 0);
        assert_eq!(bytes_in(SimDuration(200), 40_000_000_000), 1);
        assert_eq!(bytes_in(SimDuration::ZERO, 40_000_000_000), 0);
    }

    #[test]
    fn tx_delay_at_other_standard_rates() {
        // 1500 B at 100G = 120 ns; at 25G = 480 ns; at 10G = 1200 ns.
        assert_eq!(tx_delay(1500, 100_000_000_000), SimDuration::from_ns(120));
        assert_eq!(tx_delay(1500, 25_000_000_000), SimDuration::from_ns(480));
        assert_eq!(tx_delay(1500, 10_000_000_000), SimDuration::from_ns(1200));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_ns(999) < SimTime::from_us(1));
        assert!(SimTime::MAX > SimTime::from_ms(1_000_000));
    }
}
