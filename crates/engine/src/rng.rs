//! Deterministic random-number plumbing.
//!
//! Every stochastic component of a simulation (workload sampling, LB
//! randomness, RED marking, ...) derives its own stream from one root seed
//! via `substream`, so adding a new consumer never perturbs the draws seen
//! by existing ones — a property the regression tests rely on.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The simulator-wide RNG type. `SmallRng` (xoshiro) is fast and has more
/// than enough quality for queueing workloads.
pub type SimRng = SmallRng;

/// SplitMix64 finalizer — used to decorrelate derived seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent named substream from a root seed.
///
/// `label` identifies the consumer (e.g. `b"workload"`, `b"letflow"`); the
/// same (seed, label, index) always yields the same stream.
pub fn substream(root_seed: u64, label: &[u8], index: u64) -> SimRng {
    let mut h = splitmix64(root_seed);
    for &b in label {
        h = splitmix64(h ^ b as u64);
    }
    h = splitmix64(h ^ index);
    SimRng::seed_from_u64(h)
}

/// Derive a shard-scoped substream for the parallel driver.
///
/// The ownership-partition contract: every shard of a sharded run builds
/// the *same* full simulation state, so per-entity streams derived via
/// [`substream`] are automatically identical across shards. This function
/// exists for state that is genuinely per-shard (none of the simulator's
/// entities today, but the contract API the sharded driver is written
/// against): `(seed, shard, label, index)` fully determines the stream,
/// and distinct shards get decorrelated streams for the same label/index.
pub fn shard_substream(root_seed: u64, shard: u16, label: &[u8], index: u64) -> SimRng {
    // Fold the shard id through the same finalizer chain; the `!` prefix
    // keeps (shard=0) distinct from the unsharded substream of the label.
    let mut h = splitmix64(root_seed);
    h = splitmix64(h ^ !(shard as u64));
    for &b in label {
        h = splitmix64(h ^ b as u64);
    }
    h = splitmix64(h ^ index);
    SimRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draw(rng: &mut SimRng) -> Vec<u64> {
        (0..8).map(|_| rng.gen()).collect()
    }

    #[test]
    fn substreams_are_reproducible() {
        let mut a = substream(42, b"workload", 0);
        let mut b = substream(42, b"workload", 0);
        assert_eq!(draw(&mut a), draw(&mut b));
    }

    #[test]
    fn substreams_differ_by_label_and_index() {
        let base = draw(&mut substream(42, b"workload", 0));
        assert_ne!(base, draw(&mut substream(42, b"workload", 1)));
        assert_ne!(base, draw(&mut substream(42, b"letflow", 0)));
        assert_ne!(base, draw(&mut substream(43, b"workload", 0)));
    }

    #[test]
    fn shard_substreams_replay_exactly() {
        // Same (seed, shard, label, index) → the same stream, run to run.
        for shard in [0u16, 1, 7, 512] {
            let a = draw(&mut shard_substream(42, shard, b"shard-local", 3));
            let b = draw(&mut shard_substream(42, shard, b"shard-local", 3));
            assert_eq!(a, b, "shard {shard} stream not reproducible");
        }
    }

    #[test]
    fn shard_substreams_are_disjoint_and_mixed() {
        // Distinct shards must yield decorrelated streams for the same
        // label/index, and none may collide with the unsharded substream.
        let unsharded = draw(&mut substream(42, b"shard-local", 0));
        let mut seen = vec![unsharded];
        for shard in 0..32u16 {
            let s = draw(&mut shard_substream(42, shard, b"shard-local", 0));
            assert!(!seen.contains(&s), "shard {shard} stream collides");
            seen.push(s);
        }
        // Well-mixed: the first draws across shards shouldn't share any
        // value — 32 draws of 64-bit values collide with probability ~0
        // unless the mixing is broken.
        let firsts: Vec<u64> = seen.iter().map(|v| v[0]).collect();
        let mut dedup = firsts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), firsts.len());
    }
}
