//! Deterministic future-event queue.
//!
//! [`EventQueue`] is the simulator's future-event list, keyed on
//! `(SimTime, sequence)` where the sequence number is a monotonically
//! increasing insertion counter. Two events scheduled for the same instant
//! therefore pop in the order they were scheduled (FIFO), which makes
//! whole-simulation replays bit-exact for a fixed seed — a prerequisite for
//! the determinism tests and for debugging rare reordering interleavings.
//!
//! Storage is a hierarchical timing wheel ([`crate::wheel`]): near-future
//! scheduling — the overwhelmingly common case in a packet simulation — is
//! an O(1) bucket append instead of a `BinaryHeap`'s O(log n) sift. The
//! previous heap-backed queue survives as [`HeapEventQueue`], the reference
//! implementation that the differential proptests and the criterion
//! head-to-head benches compare against.

use crate::time::SimTime;
use crate::wheel::{Entry, TimingWheel};
use std::collections::BinaryHeap;

/// The future event list.
///
/// Generic over the event payload so the engine stays ignorant of network
/// semantics; the simulator's dispatch loop owns the interpretation.
pub struct EventQueue<E> {
    wheel: TimingWheel<E>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            wheel: TimingWheel::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (time never moves backwards).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is always a
    /// simulator bug, and silently clamping would hide causality violations.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at.as_ps(),
            now = self.now.as_ps()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.wheel.insert(at, seq, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    ///
    /// Event-clock monotonicity is structurally guaranteed by the wheel's
    /// pop order plus the `schedule` past-check; under `--features audit`
    /// (or any debug build) it is re-verified on every pop so a future
    /// bucketing or comparator bug cannot silently run time backwards.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.wheel.pop()?;
        #[cfg(any(debug_assertions, feature = "audit"))]
        assert!(
            entry.time >= self.now,
            "audit violation [event-clock monotonicity]: popped t={} ps \
             behind clock now={} ps (key={:?})",
            entry.time.as_ps(),
            self.now.as_ps(),
            entry.key
        );
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Visit every pending event in unspecified order (diagnostic walker
    /// used by the fabric conservation audit; see `rlb-net`'s `audit`
    /// feature).
    #[inline]
    pub fn iter_events(&self) -> impl Iterator<Item = &E> {
        self.wheel.iter_events()
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Total number of events ever scheduled (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

/// Canonical cross-shard merge key: `(sched_ps, src_shard, seq)` packed
/// into a `u128` so one integer comparison decides the drain order.
///
/// * bits 127..64 — the picosecond timestamp at which the producing shard
///   *scheduled* the event (its clock at the `schedule` call),
/// * bits 63..48 — the producing shard id,
/// * bits 47..0 — the producer's local insertion counter.
///
/// Within one shard, schedule calls happen in nondecreasing dispatch-time
/// order, so `(sched_ps, seq)` sorts identically to the sequential engine's
/// plain insertion counter; across shards the packed key gives every event
/// a globally unique, replayable position independent of thread timing.
#[inline]
pub fn shard_key(sched_ps: u64, src_shard: u16, seq: u64) -> u128 {
    debug_assert!(seq < (1 << 48), "shard seq overflow");
    ((sched_ps as u128) << 64) | ((src_shard as u128) << 48) | seq as u128
}

/// A shard-local future-event list for the bounded-window parallel driver.
///
/// Same storage engine as [`EventQueue`] but keyed by the canonical
/// [`shard_key`] order, so events produced locally and events received as
/// cross-shard messages interleave in one deterministic sequence that does
/// not depend on which thread ran when. The owning driver (`rlb-net`'s
/// shard module) is responsible for only delivering messages whose
/// timestamps are at or beyond the current window edge — the conservative
/// lookahead guarantee that makes `insert_message` never schedule into the
/// past.
pub struct ShardEventQueue<E> {
    wheel: TimingWheel<E, u128>,
    next_seq: u64,
    shard: u16,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> ShardEventQueue<E> {
    pub fn new(shard: u16) -> Self {
        ShardEventQueue {
            wheel: TimingWheel::new(),
            next_seq: 0,
            shard,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a shard-local event; the merge key is derived from the
    /// current clock, this queue's shard id and the next local seq.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at.as_ps(),
            now = self.now.as_ps()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let key = shard_key(self.now.as_ps(), self.shard, seq);
        self.wheel.insert(at, key, event);
    }

    /// Schedule with an explicit `sched_ps` key component — used at
    /// construction time to arm replicated events (tick grids) with the
    /// *same* key on every shard, so they hold one canonical position in
    /// each shard's stream.
    #[inline]
    pub fn schedule_at_key(&mut self, at: SimTime, sched_ps: u64, event: E) {
        assert!(at >= self.now, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let key = shard_key(sched_ps, self.shard, seq);
        self.wheel.insert(at, key, event);
    }

    /// Consume a local seq and build the merge key an *outbound* message
    /// will carry. Mirrors `schedule`'s key derivation so a cross-shard
    /// send occupies the same position in the canonical order it would
    /// have held as a local schedule.
    #[inline]
    pub fn next_message_key(&mut self) -> u128 {
        let seq = self.next_seq;
        self.next_seq += 1;
        shard_key(self.now.as_ps(), self.shard, seq)
    }

    /// Deliver a cross-shard message under the producer's key.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the window protocol's lookahead
    /// guarantee (arrival ≥ window edge ≥ receiver clock) is violated.
    #[inline]
    pub fn insert_message(&mut self, at: SimTime, key: u128, event: E) {
        assert!(
            at >= self.now,
            "cross-shard message in the past: at={at}, now={now}",
            at = at.as_ps(),
            now = self.now.as_ps()
        );
        self.scheduled_total += 1;
        self.wheel.insert(at, key, event);
    }

    /// Pop the next event with its merge key, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u128, E)> {
        let entry = self.wheel.pop()?;
        #[cfg(any(debug_assertions, feature = "audit"))]
        assert!(
            entry.time >= self.now,
            "audit violation [event-clock monotonicity]: popped t={} ps \
             behind clock now={} ps (key={:?})",
            entry.time.as_ps(),
            self.now.as_ps(),
            entry.key
        );
        self.now = entry.time;
        Some((entry.time, entry.key, entry.event))
    }

    /// Pop the next event only if it is strictly before `limit` — the
    /// window-bounded dispatch step. O(1) in the common case (the drain
    /// batch's back is the minimum).
    #[inline]
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, u128, E)> {
        match self.wheel.peek_time() {
            Some(t) if t < limit => self.pop(),
            _ => None,
        }
    }

    /// See [`EventQueue::iter_events`].
    #[inline]
    pub fn iter_events(&self) -> impl Iterator<Item = &E> {
        self.wheel.iter_events()
    }

    /// See [`EventQueue::peek_time`].
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Total number of events ever scheduled or delivered (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

/// The original `BinaryHeap`-backed future-event list.
///
/// Kept as the **reference implementation** of the queue contract: the
/// randomized differential tests below drive it and [`EventQueue`] with
/// identical schedule/pop interleavings and demand identical output, and
/// `crates/bench/benches/components.rs` races the two head-to-head. Not
/// used by the simulator itself.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(1024),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// See [`EventQueue::now`].
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// See [`EventQueue::schedule`].
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at.as_ps(),
            now = self.now.as_ps()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            time: at,
            key: seq,
            event,
        });
    }

    /// See [`EventQueue::pop`].
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(9), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_ns(9));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // schedule relative to now
        q.schedule(t + SimDuration::from_ns(1), 2);
        q.schedule(t + SimDuration::from_ns(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn far_future_spillover_round_trips() {
        // Deltas beyond the wheel span (2^36 ticks ≈ 19 min) take the
        // overflow-heap path; mixing near and far events must still pop in
        // global (time, seq) order.
        let mut q = EventQueue::new();
        let far = SimTime(2_000 * crate::time::PS_PER_SEC); // ~33 min
        q.schedule(far, "far2");
        q.schedule(SimTime::from_ns(10), "near");
        q.schedule(far, "far2-tie");
        q.schedule(far + SimDuration::from_ns(1), "far3");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["near", "far2", "far2-tie", "far3"]);
        assert_eq!(q.now(), far + SimDuration::from_ns(1));
    }

    #[test]
    fn high_bit_carry_crossing_stays_ordered() {
        // A 1-tick delta that flips a bit group above the top wheel level
        // (cursor 2^42 − 1 → 2^42 in ticks) exercises the carry spill path;
        // the smaller crossing at 2^36 exercises the top in-wheel level.
        for bit in [50u32, 56] {
            let base = SimTime((1u64 << bit) - (1 << 14));
            let mut q = EventQueue::new();
            q.schedule(base, 0u32);
            assert_eq!(q.pop().unwrap().1, 0);
            q.schedule(SimTime(1u64 << bit), 1);
            q.schedule(SimTime((1u64 << bit) + (1 << 15)), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn same_tick_insert_during_drain_merges_fifo() {
        // Several events inside one wheel tick; after popping the first,
        // schedule more at both the popped instant and later inside the
        // same tick — they must merge into the drain batch in (time, seq)
        // order.
        let mut q = EventQueue::new();
        q.schedule(SimTime(2048), "a");
        q.schedule(SimTime(2050), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime(2049), "b");
        q.schedule(SimTime(2050), "d"); // ties after "c" (FIFO)
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "c", "d"]);
    }

    #[test]
    fn heap_reference_matches_on_dense_ties() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // 3 bursts of 500 same-timestamp events at 2 µs spacing, the shape
        // of the coalesced predictor tick.
        for burst in 0..3u64 {
            let t = SimTime::from_us(2 * (burst + 1));
            for i in 0..500u64 {
                wheel.schedule(t, burst * 1000 + i);
                heap.schedule(t, burst * 1000 + i);
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
