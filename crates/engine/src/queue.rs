//! Deterministic future-event queue.
//!
//! A binary-heap priority queue keyed on `(SimTime, sequence)` where the
//! sequence number is a monotonically increasing insertion counter. Two
//! events scheduled for the same instant therefore pop in the order they
//! were scheduled (FIFO), which makes whole-simulation replays bit-exact for
//! a fixed seed — a prerequisite for the determinism tests and for debugging
//! rare reordering interleavings.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future event list.
///
/// Generic over the event payload so the engine stays ignorant of network
/// semantics; the simulator's dispatch loop owns the interpretation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(1024),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (time never moves backwards).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is always a
    /// simulator bug, and silently clamping would hide causality violations.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at.as_ps(),
            now = self.now.as_ps()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pop the next event, advancing the clock to its timestamp.
    ///
    /// Event-clock monotonicity is structurally guaranteed by the heap
    /// order plus the `schedule` past-check; under `--features audit` (or
    /// any debug build) it is re-verified on every pop so a future heap
    /// or comparator bug cannot silently run time backwards.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        #[cfg(any(debug_assertions, feature = "audit"))]
        assert!(
            entry.time >= self.now,
            "audit violation [event-clock monotonicity]: popped t={} ps \
             behind clock now={} ps (seq={})",
            entry.time.as_ps(),
            self.now.as_ps(),
            entry.seq
        );
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Visit every pending event in unspecified order (diagnostic walker
    /// used by the fabric conservation audit; see `rlb-net`'s `audit`
    /// feature).
    #[inline]
    pub fn iter_events(&self) -> impl Iterator<Item = &E> {
        self.heap.iter().map(|e| &e.event)
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(5), ());
        q.schedule(SimTime::from_ns(9), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_ns(9));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // schedule relative to now
        q.schedule(t + SimDuration::from_ns(1), 2);
        q.schedule(t + SimDuration::from_ns(1), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 3);
    }
}
