//! Hierarchical timing wheel — the future-event list's storage engine.
//!
//! A calendar-queue layout tuned for discrete-event simulation at
//! picosecond resolution: most scheduling is near-future (packet
//! serialization, link propagation, Δt predictor ticks), so the common
//! case must be an O(1) bucket append and an O(1) bucket drain instead of
//! a `BinaryHeap`'s O(log n) sift per operation.
//!
//! ## Layout
//!
//! * Time is bucketed into **ticks** of `2^TICK_BITS` ps (16.384 ns). The
//!   width is tuned so the simulator's dominant deltas — packet
//!   serialization and link propagation, roughly 200 ns to 2 µs — land in
//!   level 0 or 1 (≤ 64² ticks ahead): inserts then skip the cascade
//!   machinery entirely or pay for at most one redistribution. Events
//!   sharing a tick are ordered by one `(time, seq)` sort at drain time,
//!   and at realistic event rates a tick holds only a handful of them.
//! * `LEVELS` wheels of `SLOTS = 64` slots each. Level *l* slot *s* holds
//!   every pending event whose tick agrees with the cursor above bit group
//!   *l* and has slot index *s* within it — the classic hashed hierarchical
//!   wheel (`level = significant 6-bit group of cursor ⊕ tick`). Level 0
//!   resolves single ticks; level *l* covers `64^l` ticks per slot.
//! * Events more than `2^36` ticks (~70 s of simulated time) ahead spill
//!   into a far-future binary heap ordered by `(time, seq)` and merge back
//!   tick-by-tick when the cursor approaches.
//!
//! ## Determinism
//!
//! The pop order contract is exactly the heap's: strictly nondecreasing
//! `(SimTime, insertion-seq)`. Within one tick multiple distinct
//! picosecond timestamps (and FIFO ties) can coexist, so when the cursor
//! reaches a tick its bucket is sorted **once** by `(time, seq)` into the
//! drain batch; `seq` is a total order, so the sort has a unique result
//! regardless of the (deterministic, append-only) bucket layout history.
//! Cascades redistribute buckets in stored order and never reorder equal
//! keys. No hashing, no pointer identity, no wall clock: replays are
//! bit-exact, which the differential proptests in `queue.rs` pin against
//! the reference heap implementation.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the tick width in picoseconds: one tick = 16.384 ns. See the
/// module docs for how this interacts with the simulator's delta profile.
const TICK_BITS: u32 = 14;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Six 6-bit groups cover 2^36 ticks; the seventh absorbs
/// the common carry case where a small delta still flips a high bit group
/// (e.g. cursor 2^36 − 1 → tick 2^36). Carries above level 6 spill to the
/// overflow heap in `insert`.
const LEVELS: usize = 7;
/// Deltas of at least this many ticks (~19 simulated minutes) go to the
/// far-future heap.
const SPAN_TICKS: u64 = 1 << 36;

/// Tie-break key for events sharing a timestamp. The sequential queue uses
/// the plain insertion counter (`u64`, FIFO); the sharded queue packs
/// `(sched_ps, src_shard, seq)` into a `u128` so independently produced
/// streams merge in one canonical order (see `crate::queue::ShardEventQueue`).
pub trait TieKey: Copy + Ord + std::fmt::Debug {}
impl TieKey for u64 {}
impl TieKey for u128 {}

/// One pending event. `key` is the within-timestamp tie-breaker: a total
/// order, so equal-time events drain in a unique, replayable sequence.
pub(crate) struct Entry<E, K: TieKey = u64> {
    pub time: SimTime,
    pub key: K,
    pub event: E,
}

impl<E, K: TieKey> PartialEq for Entry<E, K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<E, K: TieKey> Eq for Entry<E, K> {}
impl<E, K: TieKey> PartialOrd for Entry<E, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E, K: TieKey> Ord for Entry<E, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

#[inline]
fn tick_of(t: SimTime) -> u64 {
    t.as_ps() >> TICK_BITS
}

/// The hierarchical wheel proper. Pure storage: the owning
/// [`crate::queue::EventQueue`] supplies `seq` numbers, enforces the
/// no-past-scheduling contract and owns the public clock.
pub(crate) struct TimingWheel<E, K: TieKey = u64> {
    /// `LEVELS × SLOTS` buckets, flattened; append-only between drains, so
    /// every bucket is key-ascending.
    slots: Vec<Vec<Entry<E, K>>>,
    /// One occupancy bit per slot, per level — `SLOTS == 64` makes a `u64`
    /// bitmap exact, and `trailing_zeros` finds the next bucket in O(1).
    occupied: [u64; LEVELS],
    /// Current tick. Invariant: no pending event has `tick < cursor`, and
    /// at every level the occupied slot indexes are ≥ the cursor's index
    /// at that level (strictly greater above level 0).
    cursor: u64,
    /// The drain batch for the cursor's tick, sorted **descending** by
    /// `(time, seq)` so consuming from the back (`Vec::pop`, an O(1) move)
    /// yields ascending order; same-tick late arrivals merge in at their
    /// `(time, seq)` slot. Installed by `mem::swap` with the tick's bucket,
    /// so tick turnover copies nothing and recycles both allocations.
    batch: Vec<Entry<E, K>>,
    /// Far-future spillover, min-ordered by `(time, key)`.
    overflow: BinaryHeap<Entry<E, K>>,
    /// Recycled bucket storage for cascades, so redistributing a slot
    /// allocates nothing in steady state.
    cascade_scratch: Vec<Entry<E, K>>,
    len: usize,
}

impl<E, K: TieKey> TimingWheel<E, K> {
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            batch: Vec::new(),
            overflow: BinaryHeap::new(),
            cascade_scratch: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Level for an event `tick` seen from the cursor: the index of the
    /// most significant 6-bit group in which they differ (0 when equal).
    #[inline]
    fn level_for(&self, tick: u64) -> usize {
        let x = self.cursor ^ tick;
        if x == 0 {
            return 0;
        }
        ((63 - x.leading_zeros()) / SLOT_BITS) as usize
    }

    #[inline]
    fn slot_index(level: usize, tick: u64) -> usize {
        ((tick >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize
    }

    /// Insert an event. The caller guarantees `time` is not in the past
    /// and that `(time, key)` exceeds every previously popped pair.
    pub fn insert(&mut self, time: SimTime, key: K, event: E) {
        let tick = tick_of(time);
        debug_assert!(tick >= self.cursor, "wheel insert behind cursor");
        self.len += 1;
        let entry = Entry { time, key, event };
        // Scheduling into the tick currently being drained: merge into the
        // descending-sorted batch at the (time, key) position. Sequential
        // keys are maximal (fresh seqs), so the insert lands *before* every
        // equal-time entry in the vec and therefore pops after them (FIFO);
        // sharded message keys may land anywhere still ahead of the cursor.
        if tick == self.cursor && !self.batch.is_empty() {
            let at = self
                .batch
                .partition_point(|e| (e.time, e.key) > (entry.time, entry.key));
            self.batch.insert(at, entry);
            return;
        }
        let level = self.level_for(tick);
        // Far-future events — and the rare carry where even a small delta
        // flips a bit group above the top level (e.g. cursor 2^59 − 1 →
        // tick 2^59) — spill into the heap and merge back tick-by-tick.
        if tick - self.cursor >= SPAN_TICKS || level >= LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = Self::slot_index(level, tick);
        self.slots[level * SLOTS + slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Earliest occupied `(level, slot)` at or after the cursor, if any.
    /// Because the levels partition time hierarchically, the lowest
    /// occupied level always holds the earliest pending wheel event.
    #[inline]
    fn next_occupied(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let cursor_idx = Self::slot_index(level, self.cursor);
            let ahead = self.occupied[level] & (!0u64 << cursor_idx);
            if ahead != 0 {
                return Some((level, ahead.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Start tick of `slot` at `level`, relative to the cursor's rotation.
    #[inline]
    fn slot_start_tick(&self, level: usize, slot: usize) -> u64 {
        let group = level as u32 * SLOT_BITS;
        let above = group + SLOT_BITS;
        let high = if above >= 64 { 0 } else { (self.cursor >> above) << above };
        high | ((slot as u64) << group)
    }

    /// Pop the earliest `(time, key)` entry.
    pub fn pop(&mut self) -> Option<Entry<E, K>> {
        loop {
            if let Some(entry) = self.batch.pop() {
                self.len -= 1;
                return Some(entry);
            }
            let overflow_tick = self.overflow.peek().map(|e| tick_of(e.time));
            match self.next_occupied() {
                Some((level, slot)) => {
                    let start = self.slot_start_tick(level, slot);
                    // The far-future heap may have crept inside the wheel's
                    // horizon as the cursor advanced; serve it first (or
                    // merged, below) when its tick is due sooner.
                    if overflow_tick.is_some_and(|t| t < start) {
                        self.drain_overflow_tick();
                        continue;
                    }
                    if level == 0 {
                        self.cursor = start;
                        self.occupied[0] &= !(1 << slot);
                        self.begin_batch(slot, overflow_tick == Some(start));
                    } else {
                        // Cascade: advance to the slot's start and
                        // redistribute its bucket into lower levels. The
                        // bucket's storage is swapped through the scratch
                        // vec, so steady-state cascades allocate nothing.
                        self.cursor = start;
                        self.occupied[level] &= !(1 << slot);
                        let mut scratch = std::mem::take(&mut self.cascade_scratch);
                        std::mem::swap(&mut scratch, &mut self.slots[level * SLOTS + slot]);
                        for e in scratch.drain(..) {
                            let tick = tick_of(e.time);
                            let lv = self.level_for(tick);
                            debug_assert!(lv < level, "cascade must descend");
                            let s = Self::slot_index(lv, tick);
                            self.slots[lv * SLOTS + s].push(e);
                            self.occupied[lv] |= 1 << s;
                        }
                        self.cascade_scratch = scratch;
                    }
                }
                None => {
                    if self.overflow.is_empty() {
                        return None;
                    }
                    self.drain_overflow_tick();
                }
            }
        }
    }

    /// Move every overflow entry sharing the earliest overflow tick into
    /// the drain batch (the heap yields them `(time, seq)`-ascending, so a
    /// final reverse produces the batch's descending order).
    fn drain_overflow_tick(&mut self) {
        let first = self.overflow.pop().expect("overflow checked non-empty");
        let tick = tick_of(first.time);
        debug_assert!(tick >= self.cursor);
        self.cursor = tick;
        debug_assert!(self.batch.is_empty());
        self.batch.push(first);
        while self
            .overflow
            .peek()
            .is_some_and(|e| tick_of(e.time) == tick)
        {
            self.batch.push(self.overflow.pop().expect("peeked"));
        }
        self.batch.reverse();
    }

    /// Install the level-0 bucket at `slot` (the cursor tick's events) as
    /// the drain batch, merging any same-tick far-future entries, sorted
    /// descending by `(time, seq)`. The bucket and the (empty) previous
    /// batch swap storage, so the per-tick hot path copies no entries and
    /// allocates nothing.
    fn begin_batch(&mut self, slot: usize, merge_overflow: bool) {
        debug_assert!(self.batch.is_empty());
        if merge_overflow {
            while self
                .overflow
                .peek()
                .is_some_and(|e| tick_of(e.time) == self.cursor)
            {
                let e = self.overflow.pop().expect("peeked");
                self.slots[slot].push(e);
            }
        }
        let (slots, batch) = (&mut self.slots, &mut self.batch);
        let bucket = &mut slots[slot];
        if bucket.len() > 1 {
            bucket.sort_unstable_by(|a, b| {
                b.time.cmp(&a.time).then_with(|| b.key.cmp(&a.key))
            });
        }
        std::mem::swap(batch, bucket);
    }

    /// Timestamp of the earliest pending entry without disturbing the
    /// structure. O(bucket) for the imminent bucket, O(1) otherwise.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(SimTime, K)> = None;
        let mut consider = |time: SimTime, key: K| {
            if best.is_none_or(|(bt, bs)| (time, key) < (bt, bs)) {
                best = Some((time, key));
            }
        };
        if let Some(e) = self.batch.last() {
            // The batch is sorted descending; its back is its minimum.
            consider(e.time, e.key);
        } else if let Some((level, slot)) = self.next_occupied() {
            // The earliest wheel event lives in this bucket (buckets
            // partition time); scan it for the (time, key) minimum.
            for e in &self.slots[level * SLOTS + slot] {
                consider(e.time, e.key);
            }
        }
        if let Some(e) = self.overflow.peek() {
            consider(e.time, e.key);
        }
        best.map(|(t, _)| t)
    }

    /// Visit every pending event in unspecified order.
    pub fn iter_events(&self) -> impl Iterator<Item = &E> {
        self.batch
            .iter()
            .chain(self.slots.iter().flatten())
            .chain(self.overflow.iter())
            .map(|e| &e.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_slots_are_consistent() {
        let w: TimingWheel<u32> = TimingWheel::new();
        assert_eq!(w.level_for(0), 0);
        assert_eq!(w.level_for(63), 0);
        assert_eq!(w.level_for(64), 1);
        assert_eq!(w.level_for(64 * 64), 2);
        assert_eq!(TimingWheel::<u32>::slot_index(0, 37), 37);
        assert_eq!(TimingWheel::<u32>::slot_index(1, 64), 1);
    }
}
