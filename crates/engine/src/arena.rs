//! `PacketArena` — a generational slab for the packet hot plane.
//!
//! Every queue in the simulator (switch egress FIFOs, host control queues)
//! used to move full 64-byte packet structs between `VecDeque`s. The arena
//! inverts that: queues hold 4-byte [`PacketHandle`]s and the packets
//! themselves sit still in a dense slab, alongside **SoA hot columns** for
//! the handful of fields the per-event loops actually touch — wire size,
//! flow id, control-class flag and enqueue timestamp. Occupancy sweeps and
//! egress byte accounting read those columns without ever loading the cold
//! payload, and a queue entry is one quarter of a cache line instead of
//! two lines.
//!
//! Same idiom as [`crate::FlowTable`]: dense `Vec` storage, an explicit
//! LIFO free list, and fully deterministic behavior — slot assignment is a
//! pure function of the alloc/free history, never of pointer values.
//!
//! **Generational safety.** A handle packs a slot index with a generation
//! stamp; freeing a slot bumps its generation, so any handle retained past
//! the packet's lifetime stops matching. Every accessor checks the stamp
//! and panics on a stale handle — a use-after-free of a packet slot means
//! queue bookkeeping has diverged and every downstream metric is suspect,
//! so dying loudly beats silently reading a recycled packet. (The stamp is
//! [`GEN_BITS`] wide; a stale handle could only false-match after exactly
//! `2^GEN_BITS` reuses of its slot, which the audit-feature sweeps would
//! catch long before.)
//!
//! The arena is generic over the cold payload type: the engine stays
//! ignorant of what a packet *is* (see the crate docs) while still owning
//! the memory discipline. `rlb-net` instantiates it with its `Packet`.

/// Bits of a handle devoted to the slot index. 2^20 simultaneously-live
/// packets is far beyond any reachable queue population (the shared-buffer
/// admission caps per-switch occupancy in the low thousands).
pub const INDEX_BITS: u32 = 20;
/// Bits devoted to the generation stamp.
pub const GEN_BITS: u32 = 32 - INDEX_BITS;

const INDEX_MASK: u32 = (1 << INDEX_BITS) - 1;
const GEN_MASK: u32 = (1 << GEN_BITS) - 1;

/// A 4-byte ticket for one live packet: slot index in the low
/// [`INDEX_BITS`], generation stamp in the high [`GEN_BITS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle(u32);

impl PacketHandle {
    #[inline]
    fn new(index: u32, gen: u32) -> PacketHandle {
        debug_assert!(index <= INDEX_MASK);
        PacketHandle(index | (gen << INDEX_BITS))
    }

    #[inline]
    pub fn index(self) -> usize {
        (self.0 & INDEX_MASK) as usize
    }

    #[inline]
    fn gen(self) -> u32 {
        self.0 >> INDEX_BITS
    }
}

/// Generational slab owning every queued packet, with SoA hot columns.
#[derive(Debug, Clone)]
pub struct PacketArena<T> {
    /// Cold payloads, AoS. `None` exactly for slots on the free list.
    slots: Vec<Option<T>>,
    /// Generation stamp per slot (low [`GEN_BITS`] bits used).
    gens: Vec<u32>,
    /// Free slots, reused LIFO (most-recently-freed first — deterministic
    /// and cache-warm).
    free: Vec<u32>,
    // --- hot columns (SoA), valid only for live slots ---
    /// Wire size in bytes.
    sizes: Vec<u32>,
    /// Flow id.
    flows: Vec<u32>,
    /// Control-class flag (strict-priority, PFC-immune).
    ctrl: Vec<bool>,
    /// Simulation time the packet entered its current queue, ps.
    enqueued_at: Vec<u64>,
    /// Live packets.
    len: usize,
    /// Peak simultaneous occupancy over the arena's lifetime.
    high_water: usize,
}

impl<T> Default for PacketArena<T> {
    fn default() -> Self {
        PacketArena::new()
    }
}

impl<T> PacketArena<T> {
    pub fn new() -> PacketArena<T> {
        PacketArena {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            sizes: Vec::new(),
            flows: Vec::new(),
            ctrl: Vec::new(),
            enqueued_at: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Pre-size every column for an expected live population (optional —
    /// the slab grows lazily either way).
    pub fn with_capacity(n: usize) -> PacketArena<T> {
        let mut a = PacketArena::new();
        let n = n.min(INDEX_MASK as usize + 1);
        a.slots.reserve(n);
        a.gens.reserve(n);
        a.sizes.reserve(n);
        a.flows.reserve(n);
        a.ctrl.reserve(n);
        a.enqueued_at.reserve(n);
        a
    }

    /// Live packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (live + free-listed).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Peak simultaneous occupancy over the arena's lifetime.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Park a packet in the arena. The hot-column values are snapshot at
    /// allocation — queued packets are immutable, so the columns and the
    /// cold payload can never disagree.
    #[inline]
    pub fn alloc(
        &mut self,
        size_bytes: u32,
        flow: u32,
        control: bool,
        enqueued_at_ps: u64,
        value: T,
    ) -> PacketHandle {
        let index = match self.free.pop() {
            Some(i) => {
                let i_us = i as usize;
                debug_assert!(self.slots[i_us].is_none(), "free-listed slot is live");
                self.slots[i_us] = Some(value);
                self.sizes[i_us] = size_bytes;
                self.flows[i_us] = flow;
                self.ctrl[i_us] = control;
                self.enqueued_at[i_us] = enqueued_at_ps;
                i
            }
            None => {
                let i = self.slots.len() as u32;
                assert!(
                    i <= INDEX_MASK,
                    "PacketArena overflow: more than 2^{INDEX_BITS} live packets"
                );
                self.slots.push(Some(value));
                self.gens.push(0);
                self.sizes.push(size_bytes);
                self.flows.push(flow);
                self.ctrl.push(control);
                self.enqueued_at.push(enqueued_at_ps);
                i
            }
        };
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        PacketHandle::new(index, self.gens[index as usize])
    }

    /// Generation check shared by every accessor. Panics on stale handles:
    /// the caller is holding a ticket for a packet that already left.
    #[inline]
    fn check(&self, h: PacketHandle) -> usize {
        let i = h.index();
        assert!(
            i < self.gens.len() && self.gens[i] == h.gen(),
            "stale packet handle: slot {i} is at generation {}, handle \
             carries {} (use after free)",
            self.gens.get(i).copied().unwrap_or(u32::MAX),
            h.gen(),
        );
        i
    }

    /// Take the packet out, retiring its slot. The handle (and any copy of
    /// it) is dead from here on.
    #[inline]
    pub fn free(&mut self, h: PacketHandle) -> T {
        self.free_sized(h).0
    }

    /// [`free`](Self::free) fused with the hot-column wire size, under one
    /// generation check. The transmit path's egress byte accounting reads
    /// the SoA `sizes` column here instead of dereferencing the cold
    /// payload it is about to hand off.
    #[inline]
    pub fn free_sized(&mut self, h: PacketHandle) -> (T, u32) {
        let i = self.check(h);
        let v = self.slots[i].take().expect("generation-checked slot is live");
        self.gens[i] = self.gens[i].wrapping_add(1) & GEN_MASK;
        self.free.push(i as u32);
        self.len -= 1;
        (v, self.sizes[i])
    }

    /// Cold payload access.
    #[inline]
    pub fn get(&self, h: PacketHandle) -> &T {
        let i = self.check(h);
        self.slots[i].as_ref().expect("generation-checked slot is live")
    }

    // --- hot-column reads (no cold-payload touch) ---

    /// Wire size in bytes.
    #[inline]
    pub fn size_bytes(&self, h: PacketHandle) -> u32 {
        self.sizes[self.check(h)]
    }

    /// Flow id.
    #[inline]
    pub fn flow(&self, h: PacketHandle) -> u32 {
        self.flows[self.check(h)]
    }

    /// Control-class flag.
    #[inline]
    pub fn is_control(&self, h: PacketHandle) -> bool {
        self.ctrl[self.check(h)]
    }

    /// When the packet entered its current queue, ps.
    #[inline]
    pub fn enqueued_at_ps(&self, h: PacketHandle) -> u64 {
        self.enqueued_at[self.check(h)]
    }

    /// Whether `h` still points at the packet it was issued for.
    #[inline]
    pub fn contains(&self, h: PacketHandle) -> bool {
        let i = h.index();
        i < self.gens.len() && self.gens[i] == h.gen() && self.slots[i].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut a: PacketArena<u64> = PacketArena::new();
        assert!(a.is_empty());
        let h = a.alloc(1_048, 7, false, 5_000, 0xDEAD);
        assert_eq!(a.len(), 1);
        assert_eq!(*a.get(h), 0xDEAD);
        assert_eq!(a.size_bytes(h), 1_048);
        assert_eq!(a.flow(h), 7);
        assert!(!a.is_control(h));
        assert_eq!(a.enqueued_at_ps(h), 5_000);
        assert!(a.contains(h));
        assert_eq!(a.free(h), 0xDEAD);
        assert!(a.is_empty());
        assert!(!a.contains(h));
    }

    #[test]
    fn slots_are_reused_lifo_with_fresh_generations() {
        let mut a: PacketArena<u32> = PacketArena::new();
        let h0 = a.alloc(1, 0, false, 0, 10);
        let h1 = a.alloc(2, 0, false, 0, 11);
        assert_eq!(a.capacity(), 2);
        a.free(h1);
        a.free(h0);
        // LIFO: slot 0 (freed last) comes back first.
        let h0b = a.alloc(3, 0, true, 9, 12);
        assert_eq!(h0b.index(), 0);
        assert_ne!(h0b, h0, "recycled slot must issue a new generation");
        assert_eq!(a.capacity(), 2, "no growth while the free list serves");
        let h1b = a.alloc(4, 0, false, 9, 13);
        assert_eq!(h1b.index(), 1);
        assert_eq!(*a.get(h0b), 12);
        assert_eq!(*a.get(h1b), 13);
        assert!(a.is_control(h0b));
    }

    #[test]
    fn handles_stay_stable_under_churn() {
        // Long-lived handles must survive arbitrary alloc/free churn of
        // *other* slots: the slab never moves a live entry.
        let mut a: PacketArena<u64> = PacketArena::new();
        let keep: Vec<PacketHandle> =
            (0..16).map(|i| a.alloc(i, i, false, 0, 1_000 + i as u64)).collect();
        let mut churn: Vec<PacketHandle> = Vec::new();
        for round in 0..1_000u64 {
            if round % 3 == 2 {
                if let Some(h) = churn.pop() {
                    a.free(h);
                }
            } else {
                churn.push(a.alloc(64, round as u32, round % 2 == 0, round, round));
            }
        }
        for (i, h) in keep.iter().enumerate() {
            assert_eq!(*a.get(*h), 1_000 + i as u64, "handle {i} went stale");
            assert_eq!(a.size_bytes(*h), i as u32);
        }
        let expect_live = 16 + churn.len();
        assert_eq!(a.len(), expect_live);
        assert!(a.high_water() >= expect_live);
    }

    #[test]
    fn free_sized_returns_the_hot_column_size_and_retires_the_slot() {
        let mut a: PacketArena<u64> = PacketArena::new();
        let h = a.alloc(4_096, 3, false, 7, 0xBEEF);
        let (v, size) = a.free_sized(h);
        assert_eq!(v, 0xBEEF);
        assert_eq!(size, 4_096);
        assert!(a.is_empty());
        assert!(!a.contains(h));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let hs: Vec<_> = (0..10).map(|i| a.alloc(1, i, false, 0, 0)).collect();
        for h in hs {
            a.free(h);
        }
        assert_eq!(a.len(), 0);
        assert_eq!(a.high_water(), 10);
        assert_eq!(a.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_use_panics() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let h = a.alloc(100, 1, false, 0, 42);
        a.free(h);
        // Reoccupy the slot so this is a true use-after-free, not an
        // empty-slot access.
        let _h2 = a.alloc(200, 2, false, 0, 43);
        let _ = a.size_bytes(h);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn double_free_panics() {
        let mut a: PacketArena<u8> = PacketArena::new();
        let h = a.alloc(100, 1, false, 0, 42);
        a.free(h);
        a.free(h);
    }

    #[test]
    fn handle_packing_roundtrips_at_the_edges() {
        // Index occupies the low bits, generation the high bits; neither
        // corrupts the other at their extremes.
        let h = PacketHandle::new(INDEX_MASK, GEN_MASK);
        assert_eq!(h.index(), INDEX_MASK as usize);
        assert_eq!(h.gen(), GEN_MASK);
        let h0 = PacketHandle::new(0, 1);
        assert_eq!(h0.index(), 0);
        assert_eq!(h0.gen(), 1);
    }
}
