//! The predicting module (§3.2.1): per-ingress-queue PFC prediction from
//! the queue-length derivative.
//!
//! Every Δt the switch feeds the predictor the ingress queue's byte count.
//! The predictor computes the growth rate over the interval and warns when
//! all of the following hold:
//!
//! 1. the queue is already past the warning threshold Qth (the paper
//!    "first checks whether the ingress queue length exceeds a certain
//!    threshold ... and only performs prediction when there is congestion");
//! 2. the queue is growing (positive derivative);
//! 3. at the current rate the PFC threshold will be reached within the
//!    prediction horizon — `(Q_PFC − Q) / dQ/dt ≤ horizon`;
//! 4. PFC has not actually fired yet (once `Q ≥ Q_PFC` the real PAUSE
//!    supersedes any warning).
//!
//! The predictor also reports when the danger has passed (queue back below
//! Qth or shrinking), which lets the switch stop refreshing warnings so
//! they expire upstream.

use serde::Serialize;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Prediction {
    /// PFC is predicted to trigger within the horizon: emit/refresh a CNM.
    Warn,
    /// No danger at this sample.
    Clear,
}

/// Per-ingress-port PFC predictor state.
#[derive(Debug, Clone, Serialize)]
pub struct PfcPredictor {
    qth_bytes: u64,
    q_pfc_bytes: u64,
    horizon_ps: u64,
    last_sample: Option<(u64, u64)>, // (time_ps, queue_bytes)
    pub warns_issued: u64,
}

impl PfcPredictor {
    pub fn new(qth_bytes: u64, q_pfc_bytes: u64, horizon_ps: u64) -> PfcPredictor {
        assert!(qth_bytes <= q_pfc_bytes, "Qth must not exceed Q_PFC");
        assert!(horizon_ps > 0);
        PfcPredictor {
            qth_bytes,
            q_pfc_bytes,
            horizon_ps,
            last_sample: None,
            warns_issued: 0,
        }
    }

    pub fn qth_bytes(&self) -> u64 {
        self.qth_bytes
    }

    /// Feed one queue-length sample. Call once per Δt per ingress port.
    pub fn on_sample(&mut self, now_ps: u64, queue_bytes: u64) -> Prediction {
        let prev = self.last_sample.replace((now_ps, queue_bytes));
        // Condition 1: congestion gate.
        if queue_bytes < self.qth_bytes {
            return Prediction::Clear;
        }
        // Condition 4: PFC already fired — the real PAUSE handles it. The
        // warning is still useful (the path *is* dangerous), and the paper
        // keeps warning until the queue drains, so we warn here too.
        if queue_bytes >= self.q_pfc_bytes {
            self.warns_issued += 1;
            return Prediction::Warn;
        }
        let Some((t0, q0)) = prev else {
            return Prediction::Clear;
        };
        let dt = now_ps.saturating_sub(t0);
        if dt == 0 {
            return Prediction::Clear;
        }
        // Condition 2: growth.
        if queue_bytes <= q0 {
            return Prediction::Clear;
        }
        // Condition 3: time to threshold within horizon.
        // (q_pfc - q) / ((q - q0)/dt) <= horizon  ⇔
        // (q_pfc - q) * dt <= horizon * (q - q0)   — integer-exact.
        let headroom = (self.q_pfc_bytes - queue_bytes) as u128;
        let growth = (queue_bytes - q0) as u128;
        if headroom * dt as u128 <= self.horizon_ps as u128 * growth {
            self.warns_issued += 1;
            Prediction::Warn
        } else {
            Prediction::Clear
        }
    }

    /// Drop derivative history (e.g. after the port goes idle), so the next
    /// sample can't compute a rate against a stale baseline.
    pub fn reset(&mut self) {
        self.last_sample = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QTH: u64 = 64_000;
    const QPFC: u64 = 256_000;
    const H: u64 = 4_000_000; // 4 µs horizon
    const DT: u64 = 2_000_000; // 2 µs sampling

    fn pred() -> PfcPredictor {
        PfcPredictor::new(QTH, QPFC, H)
    }

    #[test]
    fn quiet_queue_never_warns() {
        let mut p = pred();
        for i in 0..100 {
            assert_eq!(p.on_sample(i * DT, 1_000), Prediction::Clear);
        }
        assert_eq!(p.warns_issued, 0);
    }

    #[test]
    fn fast_growth_above_qth_warns() {
        let mut p = pred();
        // 100 KB → 180 KB in 2 µs: rate 40 KB/µs, headroom 76 KB → 1.9 µs
        // to PFC, well inside the 4 µs horizon.
        assert_eq!(p.on_sample(0, 100_000), Prediction::Clear); // first sample: no rate yet
        assert_eq!(p.on_sample(DT, 180_000), Prediction::Warn);
    }

    #[test]
    fn growth_below_qth_is_gated_out() {
        let mut p = pred();
        // Steep growth but still under Qth: condition 1 gates it.
        assert_eq!(p.on_sample(0, 1_000), Prediction::Clear);
        assert_eq!(p.on_sample(DT, 50_000), Prediction::Clear);
    }

    #[test]
    fn slow_growth_far_from_threshold_stays_clear() {
        let mut p = pred();
        // Above Qth but creeping: 70 KB → 71 KB per 2 µs. Headroom 185 KB /
        // 0.5 KB/µs = 370 µs ≫ horizon.
        assert_eq!(p.on_sample(0, 70_000), Prediction::Clear);
        assert_eq!(p.on_sample(DT, 71_000), Prediction::Clear);
    }

    #[test]
    fn shrinking_queue_clears_even_when_high() {
        let mut p = pred();
        p.on_sample(0, 200_000);
        assert_eq!(p.on_sample(DT, 150_000), Prediction::Clear);
    }

    #[test]
    fn at_or_above_pfc_threshold_always_warns() {
        let mut p = pred();
        assert_eq!(p.on_sample(0, QPFC), Prediction::Warn);
        assert_eq!(p.on_sample(DT, QPFC + 10_000), Prediction::Warn);
    }

    #[test]
    fn boundary_exactly_at_horizon_warns() {
        let mut p = pred();
        // growth 40 KB per 2 µs; pick q so headroom/rate == horizon exactly:
        // headroom = H * growth / dt = 4 µs * 40 KB / 2 µs = 80 KB.
        let q = QPFC - 80_000;
        p.on_sample(0, q - 40_000);
        assert_eq!(p.on_sample(DT, q), Prediction::Warn);
        // One byte more headroom → just outside the horizon.
        let mut p2 = pred();
        let q2 = QPFC - 80_001;
        p2.on_sample(0, q2 - 40_000);
        assert_eq!(p2.on_sample(DT, q2), Prediction::Clear);
    }

    #[test]
    fn reset_forgets_rate_baseline() {
        let mut p = pred();
        p.on_sample(0, 100_000);
        p.reset();
        // After reset this is a "first" sample again: no derivative.
        assert_eq!(p.on_sample(DT, 200_000), Prediction::Clear);
        // But the next one warns.
        assert_eq!(p.on_sample(2 * DT, 240_000), Prediction::Warn);
    }

    #[test]
    fn irregular_sampling_intervals_are_handled() {
        let mut p = pred();
        p.on_sample(0, 100_000);
        // 10 µs gap with the same total growth: rate is 5× lower.
        // 100→180 KB over 10 µs = 8 KB/µs; headroom 76 KB → 9.5 µs > horizon.
        assert_eq!(p.on_sample(10 * 1_000_000, 180_000), Prediction::Clear);
    }

    #[test]
    #[should_panic(expected = "Qth must not exceed")]
    fn qth_above_qpfc_rejected() {
        PfcPredictor::new(QPFC + 1, QPFC, H);
    }
}
