//! The PFC warning threshold Qth (§3.2.3).
//!
//! The paper derives, for an n:1 incast onto a link of capacity C with
//! one-hop delay d and PFC threshold Q_PFC:
//!
//! * **Upper bound** (Eq. 1): the warning must leave room for one more
//!   link-delay's worth of arrivals before PFC actually fires —
//!   `Qth < Q_PFC − d·C·(n−1)` when every sender blasts at C (the
//!   conservative worst case; the `−d·C·n` arrival term is offset by
//!   `+d·C` of drain).
//! * **Lower bound** (Eq. 2): if everyone reroutes away on the warning,
//!   the queue must not underrun before the warning lifts —
//!   `Qth ≥ d·C` (drain for one link delay with no arrivals).
//!
//! giving the conservative range `[⌊d·C⌋, ⌊Q_PFC − d·C·(n−1)⌋)`.

/// The conservative admissible range `[lo, hi)` for Qth, in bytes.
///
/// `d_ps` — link delay, `c_bps` — link capacity, `n` — worst-case incast
/// fan-in, `q_pfc_bytes` — the PFC PAUSE threshold.
///
/// Returns `None` when the range is empty (Q_PFC too small for the given
/// fan-in — every warning would be late, so prediction degenerates).
pub fn qth_range(d_ps: u64, c_bps: u64, n: u32, q_pfc_bytes: u64) -> Option<(u64, u64)> {
    let dc = d_times_c_bytes(d_ps, c_bps);
    let hi = q_pfc_bytes.checked_sub(dc.saturating_mul(n.saturating_sub(1) as u64))?;
    let lo = dc;
    (lo < hi).then_some((lo, hi))
}

/// Bytes arriving in one link delay at capacity: ⌊d·C⌋.
pub fn d_times_c_bytes(d_ps: u64, c_bps: u64) -> u64 {
    ((d_ps as u128 * c_bps as u128) / (8 * 1_000_000_000_000u128)) as u64
}

/// Resolve the operating Qth: take the requested fraction of Q_PFC and
/// clamp it into the conservative range where one exists.
///
/// Fig. 10(a) sweeps `fraction` from 20% to 80%; values outside the
/// admissible range are clamped, matching the paper's observation that an
/// over-late threshold simply behaves like "prediction after PFC already
/// fired".
pub fn conservative_qth(
    fraction: f64,
    d_ps: u64,
    c_bps: u64,
    n: u32,
    q_pfc_bytes: u64,
) -> u64 {
    let requested = (fraction * q_pfc_bytes as f64).round() as u64;
    match qth_range(d_ps, c_bps, n, q_pfc_bytes) {
        Some((lo, hi)) => requested.clamp(lo, hi.saturating_sub(1)),
        // Degenerate fabric: fall back to the raw fraction, floored at one
        // link-delay of bytes so the predictor still has headroom.
        None => requested.max(d_times_c_bytes(d_ps, c_bps).min(q_pfc_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper's settings: 40 Gbps links, 2 µs delay, 256 KB PFC threshold.
    const C: u64 = 40_000_000_000;
    const D: u64 = 2_000_000;
    const QPFC: u64 = 256 * 1024;

    #[test]
    fn d_times_c_at_paper_settings() {
        // 2 µs · 40 Gbps = 80 kbit = 10 KB.
        assert_eq!(d_times_c_bytes(D, C), 10_000);
    }

    #[test]
    fn range_matches_paper_formula() {
        let (lo, hi) = qth_range(D, C, 8, QPFC).unwrap();
        assert_eq!(lo, 10_000);
        assert_eq!(hi, QPFC - 7 * 10_000); // Q_PFC − d·C·(n−1)
        assert!(lo < hi);
    }

    #[test]
    fn range_empty_when_fanin_too_large() {
        // 256 KB / 10 KB ≈ 26 senders exhaust the headroom.
        assert!(qth_range(D, C, 27, QPFC).is_none());
        assert!(qth_range(D, C, 100, QPFC).is_none());
    }

    #[test]
    fn conservative_qth_clamps_into_range() {
        let (lo, hi) = qth_range(D, C, 8, QPFC).unwrap();
        // 25% of 256 KB = 64 KB lies inside the range.
        let q = conservative_qth(0.25, D, C, 8, QPFC);
        assert_eq!(q, (0.25 * QPFC as f64) as u64);
        assert!((lo..hi).contains(&q));
        // 99% would exceed the upper bound → clamped just below hi.
        let q_hi = conservative_qth(0.99, D, C, 8, QPFC);
        assert_eq!(q_hi, hi - 1);
        // Tiny fraction clamps up to the lower bound.
        let q_lo = conservative_qth(0.001, D, C, 8, QPFC);
        assert_eq!(q_lo, lo);
    }

    #[test]
    fn degenerate_range_falls_back_to_fraction() {
        let q = conservative_qth(0.5, D, C, 100, QPFC);
        assert_eq!(q, QPFC / 2);
    }

    #[test]
    fn slower_links_need_smaller_headroom() {
        // At 10 Gbps, d·C is 2.5 KB — the admissible range widens.
        let (lo40, hi40) = qth_range(D, C, 10, QPFC).unwrap();
        let (lo10, hi10) = qth_range(D, 10_000_000_000, 10, QPFC).unwrap();
        assert!(lo10 < lo40);
        assert!(hi10 > hi40);
    }
}
