//! # rlb-core — Reordering-robust Load Balancing (the paper's contribution)
//!
//! RLB is a building block that sits *under* an existing load-balancing
//! scheme and makes its decisions safe against hop-by-hop PFC pausing:
//!
//! * [`PfcPredictor`] — predicts PFC triggering from the derivative of the
//!   ingress queue length (§3.2.1);
//! * [`threshold`] — the conservative warning-threshold range
//!   `[⌊d·C⌋, ⌊Q_PFC − d·C·(n−1)⌋)` (§3.2.3);
//! * [`Cnm`] / [`WarningTable`] / [`ContributorTable`] — the warning
//!   message, its upstream bookkeeping, and hop-by-hop relay targeting;
//! * [`algorithm1`] / [`Rlb`] — the rerouting module (§3.2.2): on a
//!   warning, either reroute to a comparable-delay safe path or
//!   recirculate and re-decide, so earlier-sent packets are never overtaken.
//!
//! All logic here is pure (no clocks, no queues); `rlb-net` wires it into
//! the simulated switches.

// Library code must justify every panic site: bare unwrap() is denied here
// (tests are exempt). Enforced alongside `cargo xtask lint`'s lib-unwrap rule.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod predictor;
pub mod reroute;
pub mod threshold;
pub mod warning;

pub use config::{RlbConfig, SuboptimalPolicy};
pub use predictor::{PfcPredictor, Prediction};
pub use reroute::{algorithm1, Decision, DecisionReason, Rlb, RlbStats};
pub use threshold::{conservative_qth, d_times_c_bytes, qth_range};
pub use warning::{Cnm, ContributorTable, WarningTable};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rlb_lb::{Ctx, PathInfo};

    fn mk_ctx(paths: &[PathInfo]) -> Ctx<'_> {
        Ctx {
            now_ps: 0,
            flow_id: 1,
            dst_leaf: 0,
            seq: 0,
            pkt_bytes: 1000,
            paths,
        }
    }

    fn arb_path() -> impl Strategy<Value = PathInfo> {
        (any::<bool>(), 1_000.0f64..1_000_000.0, 0u64..10_000_000).prop_map(
            |(warned, rtt_ns, queue_bytes)| PathInfo {
                warned,
                rtt_ns,
                queue_bytes,
                ..PathInfo::default()
            },
        )
    }

    proptest! {
        /// Algorithm 1 never forwards onto a warned path while any unwarned
        /// path exists — the paper's core safety property.
        #[test]
        fn never_forwards_onto_warned_path_when_alternative_exists(
            paths in proptest::collection::vec(arb_path(), 1..30),
            initial_raw in 0usize..30,
            recircs in 0u32..20,
            enable_recirc in any::<bool>(),
        ) {
            let initial = initial_raw % paths.len();
            let cfg = RlbConfig {
                enable_recirculation: enable_recirc,
                ..RlbConfig::default()
            };
            let (d, _) = algorithm1(initial, &mk_ctx(&paths), &cfg, recircs);
            if let Decision::Forward(p) = d {
                prop_assert!(p < paths.len());
                let any_unwarned = paths.iter().any(|x| !x.warned);
                if any_unwarned {
                    prop_assert!(!paths[p].warned,
                        "forwarded onto warned path {p} though unwarned paths existed");
                }
            }
        }

        /// The decision process always terminates with a Forward once the
        /// recirculation budget is spent — no endless loop (§3.2.2).
        #[test]
        fn terminates_after_budget(
            paths in proptest::collection::vec(arb_path(), 1..30),
            initial_raw in 0usize..30,
        ) {
            let initial = initial_raw % paths.len();
            let cfg = RlbConfig::default();
            let (d, _) = algorithm1(initial, &mk_ctx(&paths), &cfg, cfg.max_recirculations);
            prop_assert!(matches!(d, Decision::Forward(_)));
        }

        /// With no warnings anywhere, RLB is a no-op: it forwards exactly
        /// the inner scheme's choice (preserves the original LB behaviour).
        #[test]
        fn transparent_without_warnings(
            n in 1usize..30,
            initial_raw in 0usize..30,
            rtts in proptest::collection::vec(1_000.0f64..100_000.0, 30),
        ) {
            let paths: Vec<PathInfo> = (0..n)
                .map(|i| PathInfo { rtt_ns: rtts[i], ..PathInfo::default() })
                .collect();
            let initial = initial_raw % n;
            let (d, r) = algorithm1(initial, &mk_ctx(&paths), &RlbConfig::default(), 0);
            prop_assert_eq!(d, Decision::Forward(initial));
            prop_assert_eq!(r, DecisionReason::UnwarnedInitial);
        }

        /// Predictor: a queue that stays below Qth never warns; a queue
        /// pinned at/above Q_PFC always warns.
        #[test]
        fn predictor_gates(
            qth in 1_000u64..100_000,
            samples in proptest::collection::vec(0u64..u32::MAX as u64, 2..50),
        ) {
            let q_pfc = 256_000u64;
            let qth = qth.min(q_pfc);
            let mut p = PfcPredictor::new(qth, q_pfc, 4_000_000);
            for (i, &s) in samples.iter().enumerate() {
                let q_low = s % qth;
                prop_assert_eq!(p.on_sample(i as u64 * 2_000_000, q_low), Prediction::Clear);
            }
            let mut p2 = PfcPredictor::new(qth, q_pfc, 4_000_000);
            for i in 0..5u64 {
                prop_assert_eq!(p2.on_sample(i * 2_000_000, q_pfc + i), Prediction::Warn);
            }
        }

        /// Warning table: a warning is visible strictly before its expiry
        /// and invisible at/after it, at both granularities.
        #[test]
        fn warning_expiry_semantics(
            uplink in 0usize..8,
            dst in 0usize..8,
            until in 1u64..1_000_000,
        ) {
            let mut w = WarningTable::new(8, 8);
            w.warn_path(uplink, dst, until);
            prop_assert!(w.is_warned(uplink, dst, until - 1));
            prop_assert!(!w.is_warned(uplink, dst, until));
            let mut w2 = WarningTable::new(8, 8);
            w2.warn_uplink(uplink, until);
            prop_assert!(w2.is_warned(uplink, dst, until - 1));
            prop_assert!(!w2.is_warned(uplink, dst, until));
        }
    }
}
