//! The rerouting module (§3.2.2, Algorithm 1): reroute or recirculate on a
//! PFC warning, preserving packet order.

use crate::config::RlbConfig;
use rlb_engine::FlowTable;
use rlb_lb::{Ctx, LoadBalancer, PathIdx};
use serde::Serialize;

/// RLB's verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Forward on this path now.
    Forward(PathIdx),
    /// Send the packet around the egress→ingress loop; it re-decides after
    /// `t_rc` with fresh warning state.
    Recirculate,
}

/// Why the decision came out the way it did (diagnostics / counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DecisionReason {
    /// Initial path carried no warning.
    UnwarnedInitial,
    /// Warned, but a nearby suboptimal path existed: rerouted (Alg. 1 l.8).
    Rerouted,
    /// Warned and the best alternative was much slower: recirculated
    /// (Alg. 1 l.6).
    RecirculatedGap,
    /// Every path warned: recirculate and hope a warning lifts.
    RecirculatedAllWarned,
    /// Recirculation budget exhausted or disabled: forced out on the best
    /// available path ("recirculation will stop to avoid the endless loop").
    ForcedOut,
}

/// Aggregate decision counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RlbStats {
    pub forwards_unwarned: u64,
    pub reroutes: u64,
    pub recirculations: u64,
    pub forced_out: u64,
    /// Packets that followed an existing per-flow reroute override.
    pub sticky_forwards: u64,
}

/// Algorithm 1, "Rerouting without Packet Reordering".
///
/// * `initial` — the path the inner load balancer picked (line 2);
/// * `recircs_so_far` — how many times this packet has already looped.
///
/// Line-by-line correspondence:
/// * l.3 `if receiving p.hPFC` — `ctx.paths[p].warned`;
/// * l.4 select suboptimal `ps` — best unwarned alternative by RTT (queue
///   length breaking ties);
/// * l.5 `(ps.tRTT − p.tRTT) > trc` → recirculate (l.6);
/// * l.8 otherwise replace `p` with `ps` and re-check — `ps` is unwarned,
///   so the loop exits with `Forward(ps)`;
/// * termination: when the recirculation budget is spent, the packet is
///   forced out on the least-loaded path rather than looping forever.
pub fn algorithm1(
    initial: PathIdx,
    ctx: &Ctx<'_>,
    cfg: &RlbConfig,
    recircs_so_far: u32,
) -> (Decision, DecisionReason) {
    let paths = ctx.paths;
    debug_assert!(initial < paths.len());

    if !paths[initial].warned {
        return (Decision::Forward(initial), DecisionReason::UnwarnedInitial);
    }

    let budget_left = cfg.enable_recirculation && recircs_so_far < cfg.max_recirculations;

    // Line 4: the suboptimal path — the best alternative with no PFC
    // warning. "Best" here must respect ordering: a rerouted packet's
    // predecessors are queued on (or past) the warned path `p`, so the
    // safe alternative is the unwarned path whose delay is *closest to
    // p's from above* — fast enough to beat the pending pause, slow
    // enough not to overtake the packets already sent on `p`. Only if
    // every unwarned path is faster than `p` do we take the slowest of
    // them (least overtaking risk).
    let rtt_p = paths[initial].rtt_ns;
    let candidates = paths
        .iter()
        .enumerate()
        .filter(|&(i, q)| i != initial && !q.warned);
    let mut best_above: Option<(usize, f64, u64)> = None; // rtt >= rtt_p: min rtt
    let mut best_below: Option<(usize, f64, u64)> = None; // rtt < rtt_p: max rtt
    for (i, q) in candidates {
        if q.rtt_ns >= rtt_p {
            // Queue depth first (default policy): local queues react
            // instantly when many flows reroute at once, dispersing the
            // herd; the RTT estimate lags by an EWMA and would funnel
            // everyone onto one path. The RttFirst ablation keeps the
            // literal Algorithm 1 line-4 ordering.
            let better = match best_above {
                None => true,
                Some((_, r, qb)) => match cfg.suboptimal_policy {
                    crate::config::SuboptimalPolicy::QueueFirst => {
                        (q.queue_bytes, q.rtt_ns) < (qb, r)
                    }
                    crate::config::SuboptimalPolicy::RttFirst => {
                        (q.rtt_ns, q.queue_bytes) < (r, qb)
                    }
                },
            };
            if better {
                best_above = Some((i, q.rtt_ns, q.queue_bytes));
            }
        } else {
            let better = match best_below {
                None => true,
                Some((_, r, qb)) => match q.rtt_ns.partial_cmp(&r) {
                    Some(std::cmp::Ordering::Greater) => true,
                    Some(std::cmp::Ordering::Equal) => q.queue_bytes < qb,
                    _ => false,
                },
            };
            if better {
                best_below = Some((i, q.rtt_ns, q.queue_bytes));
            }
        }
    }
    let suboptimal = best_above.or(best_below).map(|(i, _, _)| i);

    match suboptimal {
        Some(ps) => {
            let gap_ns = paths[ps].rtt_ns - paths[initial].rtt_ns;
            let t_rc_ns = cfg.t_rc_ps as f64 / 1e3;
            if gap_ns > t_rc_ns {
                // Line 5–6: the alternative is much slower — waiting out the
                // (likely transient) pause on the fast path wins.
                if budget_left {
                    (Decision::Recirculate, DecisionReason::RecirculatedGap)
                } else {
                    (Decision::Forward(ps), DecisionReason::ForcedOut)
                }
            } else {
                // Line 8: comparable delay — take the safe path now.
                (Decision::Forward(ps), DecisionReason::Rerouted)
            }
        }
        None => {
            // Every visible path is warned: the warning carries no routing
            // information (there is nothing safer to wait for), so keep the
            // inner scheme's choice. Recirculating here would only add
            // latency — Algorithm 1's recirculation is justified by a fast
            // path being *selectively* endangered, not by fabric-wide
            // congestion. One recirculation is still allowed when the
            // packet has never looped, giving a just-raised warning the
            // chance to expire (cheap insurance against boundary cases).
            if budget_left && recircs_so_far == 0 && cfg.recirculate_when_all_warned {
                (Decision::Recirculate, DecisionReason::RecirculatedAllWarned)
            } else {
                (Decision::Forward(initial), DecisionReason::ForcedOut)
            }
        }
    }
}

/// RLB as a building block: wraps any [`LoadBalancer`] (§1: "RLB is
/// architecturally compatible with all existing load balancing schemes").
///
/// Beyond Algorithm 1, the wrapper keeps a small per-flow override cache:
/// once a flow is rerouted away from a warned path, its subsequent packets
/// follow the same safe path for the rest of the warning episode instead
/// of re-deciding per packet. Without this, a flow's packets alternate
/// between the original and the reroute path at every warning-refresh
/// boundary — self-inflicted reordering that Algorithm 1's per-packet
/// formulation does not guard against (see DESIGN.md, "Known deviations").
pub struct Rlb<L: ?Sized> {
    pub cfg: RlbConfig,
    pub stats: RlbStats,
    overrides: FlowTable<(PathIdx, u64)>,
    inner: Box<L>,
}

impl Rlb<dyn LoadBalancer> {
    pub fn new(inner: Box<dyn LoadBalancer>, cfg: RlbConfig) -> Self {
        Rlb {
            cfg,
            stats: RlbStats::default(),
            overrides: FlowTable::new(),
            inner,
        }
    }

    pub fn inner_name(&self) -> &'static str {
        self.inner.name()
    }

    /// Full RLB decision for one packet: inner scheme first (line 2), then
    /// Algorithm 1 on its choice, with per-flow reroute stickiness.
    pub fn decide(&mut self, ctx: &Ctx<'_>, recircs_so_far: u32) -> Decision {
        // Keep the inner scheme's state warm even when an override wins.
        let initial = self.inner.select(ctx);

        // Active override: stay on the rerouted path while it is itself
        // safe and the episode hasn't expired.
        if self.cfg.sticky_reroutes {
            if let Some(&(path, until)) = self.overrides.get(ctx.flow_id) {
                let valid = ctx.now_ps < until
                    && path < ctx.paths.len()
                    && !ctx.paths[path].warned
                    && ctx.paths[initial].warned;
                if valid {
                    self.stats.sticky_forwards += 1;
                    return Decision::Forward(path);
                }
                self.overrides.remove(ctx.flow_id);
            }
        }

        let (decision, reason) = algorithm1(initial, ctx, &self.cfg, recircs_so_far);
        match reason {
            DecisionReason::UnwarnedInitial => self.stats.forwards_unwarned += 1,
            DecisionReason::Rerouted => {
                self.stats.reroutes += 1;
                if let Decision::Forward(ps) = decision {
                    let until = rlb_engine::SimTime(ctx.now_ps)
                        + rlb_engine::SimDuration::from_ps(self.cfg.warn_lifetime_ps);
                    self.overrides.insert(ctx.flow_id, (ps, until.as_ps()));
                }
            }
            DecisionReason::RecirculatedGap | DecisionReason::RecirculatedAllWarned => {
                self.stats.recirculations += 1
            }
            DecisionReason::ForcedOut => self.stats.forced_out += 1,
        }
        decision
    }

    pub fn observe_ack(&mut self, dst_leaf: u32, path: PathIdx, rtt_ns: f64, ecn: bool) {
        self.inner.observe_ack(dst_leaf, path, rtt_ns, ecn);
    }

    pub fn on_flow_complete(&mut self, flow_id: u64) {
        self.overrides.remove(flow_id);
        self.inner.on_flow_complete(flow_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlb_lb::PathInfo;

    fn mk_paths(specs: &[(bool, f64, u64)]) -> Vec<PathInfo> {
        specs
            .iter()
            .map(|&(warned, rtt_ns, queue)| PathInfo {
                warned,
                rtt_ns,
                queue_bytes: queue,
                ..PathInfo::default()
            })
            .collect()
    }

    fn ctx<'a>(paths: &'a [PathInfo]) -> Ctx<'a> {
        Ctx {
            now_ps: 0,
            flow_id: 1,
            dst_leaf: 0,
            seq: 0,
            pkt_bytes: 1000,
            paths,
        }
    }

    fn cfg() -> RlbConfig {
        RlbConfig {
            t_rc_ps: 1_000_000, // 1 µs
            ..RlbConfig::default()
        }
    }

    #[test]
    fn unwarned_initial_path_is_kept() {
        let paths = mk_paths(&[(false, 10_000.0, 0), (false, 10_000.0, 0)]);
        let (d, r) = algorithm1(0, &ctx(&paths), &cfg(), 0);
        assert_eq!(d, Decision::Forward(0));
        assert_eq!(r, DecisionReason::UnwarnedInitial);
    }

    #[test]
    fn small_delay_gap_reroutes_to_suboptimal() {
        // Initial path warned; alternative only 0.5 µs slower < t_rc=1 µs.
        let paths = mk_paths(&[(true, 10_000.0, 0), (false, 10_500.0, 0)]);
        let (d, r) = algorithm1(0, &ctx(&paths), &cfg(), 0);
        assert_eq!(d, Decision::Forward(1));
        assert_eq!(r, DecisionReason::Rerouted);
    }

    #[test]
    fn large_delay_gap_recirculates() {
        // Alternative 5 µs slower > t_rc=1 µs: wait on the fast path.
        let paths = mk_paths(&[(true, 10_000.0, 0), (false, 15_000.0, 0)]);
        let (d, r) = algorithm1(0, &ctx(&paths), &cfg(), 0);
        assert_eq!(d, Decision::Recirculate);
        assert_eq!(r, DecisionReason::RecirculatedGap);
    }

    #[test]
    fn suboptimal_prefers_unwarned_not_faster_with_shortest_queue() {
        let paths = mk_paths(&[
            (true, 10_000.0, 0),    // initial, warned
            (false, 10_400.0, 50),  // slower-than-p, queue 50
            (false, 10_400.0, 10),  // slower-than-p, queue 10
            (false, 10_800.0, 0),   // empty queue → queue-first wins
            (true, 10_100.0, 0),    // warned — excluded despite best rtt
        ]);
        let (d, _) = algorithm1(0, &ctx(&paths), &cfg(), 0);
        // Queue-first among rtt ≥ rtt_p: path 3 has the shortest queue,
        // and its 0.8 µs delay gap stays below t_rc so it is a reroute.
        assert_eq!(d, Decision::Forward(3));
    }

    #[test]
    fn suboptimal_never_overtakes_when_slower_choice_exists() {
        // A faster unwarned path exists, but rerouting onto it would let
        // this packet overtake its predecessors queued on the warned path.
        let paths = mk_paths(&[
            (true, 20_000.0, 0),  // initial, warned
            (false, 5_000.0, 0),  // much faster — overtaking risk
            (false, 20_500.0, 0), // slightly slower — safe
        ]);
        let (d, r) = algorithm1(0, &ctx(&paths), &cfg(), 0);
        assert_eq!(d, Decision::Forward(2));
        assert_eq!(r, DecisionReason::Rerouted);
    }

    #[test]
    fn all_unwarned_faster_takes_closest_below() {
        let paths = mk_paths(&[
            (true, 50_000.0, 0),  // initial, warned, slowest
            (false, 5_000.0, 0),  // far faster
            (false, 40_000.0, 0), // closest below → least overtaking risk
        ]);
        let (d, r) = algorithm1(0, &ctx(&paths), &cfg(), 0);
        assert_eq!(d, Decision::Forward(2));
        assert_eq!(r, DecisionReason::Rerouted);
    }

    #[test]
    fn all_paths_warned_keeps_inner_choice() {
        // A blanket warning carries no routing signal: forward on the
        // inner scheme's pick immediately (default config).
        let paths = mk_paths(&[(true, 10_000.0, 500), (true, 10_000.0, 100)]);
        let c = cfg();
        let (d, r) = algorithm1(0, &ctx(&paths), &c, 0);
        assert_eq!(d, Decision::Forward(0));
        assert_eq!(r, DecisionReason::ForcedOut);
        // With the opt-in knob, one recirculation is allowed for a
        // never-looped packet, then it is forced out.
        let mut c2 = cfg();
        c2.recirculate_when_all_warned = true;
        let (d2, r2) = algorithm1(0, &ctx(&paths), &c2, 0);
        assert_eq!(d2, Decision::Recirculate);
        assert_eq!(r2, DecisionReason::RecirculatedAllWarned);
        let (d3, r3) = algorithm1(0, &ctx(&paths), &c2, 1);
        assert_eq!(d3, Decision::Forward(0));
        assert_eq!(r3, DecisionReason::ForcedOut);
    }

    #[test]
    fn recirculation_disabled_forces_reroute_even_on_large_gap() {
        // Fig. 9's "RLB w/o Recir." ablation.
        let paths = mk_paths(&[(true, 10_000.0, 0), (false, 50_000.0, 0)]);
        let mut c = cfg();
        c.enable_recirculation = false;
        let (d, r) = algorithm1(0, &ctx(&paths), &c, 0);
        assert_eq!(d, Decision::Forward(1));
        assert_eq!(r, DecisionReason::ForcedOut);
    }

    #[test]
    fn budget_exhaustion_with_large_gap_takes_suboptimal() {
        let paths = mk_paths(&[(true, 10_000.0, 0), (false, 50_000.0, 0)]);
        let c = cfg();
        let (d, r) = algorithm1(0, &ctx(&paths), &c, c.max_recirculations);
        assert_eq!(d, Decision::Forward(1));
        assert_eq!(r, DecisionReason::ForcedOut);
    }

    #[test]
    fn wrapper_counts_decisions_and_delegates() {
        let inner = rlb_lb::build(rlb_lb::Scheme::Ecmp, 1000, rlb_engine::substream(1, b"t", 0));
        let mut rlb = Rlb::new(inner, cfg());
        assert_eq!(rlb.inner_name(), "ECMP");
        let clean = mk_paths(&[(false, 10_000.0, 0); 4]);
        match rlb.decide(&ctx(&clean), 0) {
            Decision::Forward(_) => {}
            d => panic!("unexpected {d:?}"),
        }
        assert_eq!(rlb.stats.forwards_unwarned, 1);
        // All-warned snapshot: forced out on the inner choice, counted.
        let warned = mk_paths(&[(true, 10_000.0, 0); 4]);
        assert!(matches!(rlb.decide(&ctx(&warned), 0), Decision::Forward(_)));
        assert_eq!(rlb.stats.forced_out, 1);
        // Selective warning with a large gap: recirculates. ECMP is
        // deterministic per flow id, so probe for a flow that lands on the
        // warned fast path.
        let selective = mk_paths(&[(true, 10_000.0, 0), (false, 50_000.0, 0)]);
        let mut hit = false;
        for fid in 0..64u64 {
            let c = Ctx {
                flow_id: fid,
                ..ctx(&selective)
            };
            if rlb.decide(&c, 0) == Decision::Recirculate {
                hit = true;
                break;
            }
        }
        assert!(hit, "some flow must hash onto the warned fast path");
        assert_eq!(rlb.stats.recirculations, 1);
    }
}
