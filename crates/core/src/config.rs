//! RLB configuration (§3.2).

use serde::{Deserialize, Serialize};

/// How Algorithm 1 picks the suboptimal path `ps` among the unwarned
/// candidates whose delay is not below the warned path's (see
/// `reroute::algorithm1` for why faster candidates are avoided).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuboptimalPolicy {
    /// Shortest local queue first (RTT breaking ties). Disperses herds:
    /// queues react instantly when many flows reroute at once. Default.
    QueueFirst,
    /// Lowest RTT estimate first (queue breaking ties) — the literal
    /// "suboptimal by delay" reading of Algorithm 1 line 4. Kept for the
    /// ablation harness; funnels simultaneous reroutes onto one path.
    RttFirst,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlbConfig {
    /// Queue-derivative sampling interval Δt (§3.2.1). Paper default: the
    /// link delay, 2 µs. Fig. 10(b) sweeps 2–5 µs.
    pub dt_ps: u64,
    /// PFC warning threshold Qth as a fraction of the PFC threshold
    /// Q_PFC (§3.2.3 derives the admissible range; Fig. 10(a) sweeps the
    /// fraction 20%–80%). The absolute threshold additionally gets clamped
    /// into the paper's conservative range by
    /// [`crate::threshold::conservative_qth`].
    pub qth_fraction: f64,
    /// Prediction horizon: warn if, at the current ingress growth rate, the
    /// PFC threshold would be reached within this long. Defaults to twice
    /// the link delay — time for the CNM to travel one hop plus for the
    /// upstream to react.
    pub horizon_ps: u64,
    /// Measured delay of one packet recirculation t_rc (Algorithm 1 input).
    pub t_rc_ps: u64,
    /// Hard cap on recirculations per packet, upholding the paper's
    /// "recirculation will stop to avoid the endless loop".
    pub max_recirculations: u32,
    /// Ablation switch for Fig. 9: with recirculation disabled RLB always
    /// reroutes to the suboptimal path on a warning.
    pub enable_recirculation: bool,
    /// When every visible path is warned, allow one recirculation before
    /// falling back to the inner scheme's choice. Default off: a blanket
    /// warning carries no routing signal, so waiting rarely pays.
    pub recirculate_when_all_warned: bool,
    /// How long a CNM warning stays in force at the upstream switch before
    /// expiring (refreshed by subsequent CNMs while congestion persists).
    pub warn_lifetime_ps: u64,
    /// Suboptimal-path selection policy (see [`SuboptimalPolicy`]).
    pub suboptimal_policy: SuboptimalPolicy,
    /// Cache a flow's reroute target for the warning lifetime so its
    /// packets don't alternate between the original and the safe path on
    /// every warning-refresh edge (self-inflicted reordering). Ablation
    /// knob; see DESIGN.md "Known deviations".
    pub sticky_reroutes: bool,
}

impl Default for RlbConfig {
    fn default() -> Self {
        let link_delay = rlb_engine::SimDuration::from_ps(2_000_000); // 2 µs, the paper's link delay
        RlbConfig {
            dt_ps: link_delay.as_ps(),
            qth_fraction: 0.25,
            horizon_ps: link_delay.mul_u64(2).as_ps(),
            t_rc_ps: 1_000_000, // 1 µs loop through the switch pipeline
            max_recirculations: 8,
            enable_recirculation: true,
            recirculate_when_all_warned: false,
            // Warnings must outlive CNM refresh jitter (CNMs queue behind
            // ACK bursts on reverse links); a flapping warning makes
            // consecutive packets of one flow alternate between rerouting
            // and the original path — reordering by itself. 10 sampling
            // intervals ≈ 20 µs, still well below typical pause durations.
            warn_lifetime_ps: link_delay.mul_u64(10).as_ps(),
            suboptimal_policy: SuboptimalPolicy::QueueFirst,
            sticky_reroutes: true,
        }
    }
}

impl RlbConfig {
    /// Validate invariants; call after deserializing user configs.
    pub fn validate(&self) -> Result<(), String> {
        if self.dt_ps == 0 {
            return Err("dt_ps must be positive".into());
        }
        if !(self.qth_fraction > 0.0 && self.qth_fraction <= 1.0) {
            return Err(format!("qth_fraction must be in (0,1]: {}", self.qth_fraction));
        }
        if self.horizon_ps == 0 {
            return Err("horizon_ps must be positive".into());
        }
        if self.warn_lifetime_ps < self.dt_ps {
            return Err("warn_lifetime_ps shorter than the sampling interval would \
                 let warnings expire between refreshes"
                .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_constants() {
        let c = RlbConfig::default();
        c.validate().unwrap();
        assert_eq!(c.dt_ps, 2_000_000); // 2 µs
        assert!(c.enable_recirculation);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = |f: fn(&mut RlbConfig)| {
            let mut c = RlbConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.qth_fraction = 0.0));
        assert!(bad(|c| c.dt_ps = 0));
        assert!(bad(|c| c.warn_lifetime_ps = c.dt_ps / 2));
    }
}
