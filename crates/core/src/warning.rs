//! PFC-warning state: the CNM message, the upstream warning table, and the
//! recent-contributor table used to relay CNMs hop-by-hop (§3.2.1,
//! "Sending PFC warning").

use serde::Serialize;

/// A congestion notification message carrying a PFC warning upstream.
///
/// The paper reuses the QCN CNM format, filling "the identification number
/// of the ingress port that is predicted to trigger PFC" into the QCN
/// field; switches relay it hop-by-hop toward traffic sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Cnm {
    /// Switch at which PFC is predicted to trigger.
    pub origin_node: u32,
    /// The endangered ingress port of that switch.
    pub origin_ingress_port: u32,
    /// Remaining relay hops (TTL) — bounds propagation in larger fabrics.
    pub ttl: u8,
}

/// Warning state a source leaf keeps per (uplink=spine, destination leaf).
///
/// Two granularities, matching where the predicted PFC sits:
/// * congestion at the **destination leaf's** ingress from spine `s` only
///   endangers the path (s, that leaf) → *path warning*;
/// * congestion at **spine s's** ingress from this leaf endangers every
///   path through `s` from here → *uplink warning*.
#[derive(Debug, Clone)]
pub struct WarningTable {
    n_uplinks: usize,
    n_leaves: usize,
    /// warned-until timestamp per (uplink, dst_leaf); 0 = never warned.
    path_until: Vec<u64>,
    /// warned-until per uplink.
    uplink_until: Vec<u64>,
    pub warnings_recorded: u64,
}

impl WarningTable {
    pub fn new(n_uplinks: usize, n_leaves: usize) -> WarningTable {
        WarningTable {
            n_uplinks,
            n_leaves,
            path_until: vec![0; n_uplinks * n_leaves],
            uplink_until: vec![0; n_uplinks],
            warnings_recorded: 0,
        }
    }

    #[inline]
    fn idx(&self, uplink: usize, dst_leaf: usize) -> usize {
        debug_assert!(uplink < self.n_uplinks && dst_leaf < self.n_leaves);
        uplink * self.n_leaves + dst_leaf
    }

    /// Record/refresh a path-granularity warning.
    pub fn warn_path(&mut self, uplink: usize, dst_leaf: usize, until_ps: u64) {
        let i = self.idx(uplink, dst_leaf);
        if until_ps > self.path_until[i] {
            self.path_until[i] = until_ps;
        }
        self.warnings_recorded += 1;
    }

    /// Record/refresh an uplink-granularity warning.
    pub fn warn_uplink(&mut self, uplink: usize, until_ps: u64) {
        if until_ps > self.uplink_until[uplink] {
            self.uplink_until[uplink] = until_ps;
        }
        self.warnings_recorded += 1;
    }

    /// Is the path (uplink, dst_leaf) under an active warning at `now`?
    #[inline]
    pub fn is_warned(&self, uplink: usize, dst_leaf: usize, now_ps: u64) -> bool {
        self.uplink_until[uplink] > now_ps || self.path_until[self.idx(uplink, dst_leaf)] > now_ps
    }

    /// The instant at which the warning on (uplink, dst_leaf) expires —
    /// `is_warned` is constant on `[now, warned_until)` and flips to false
    /// exactly at the returned timestamp (0 if never warned). Lets callers
    /// cache a warned/unwarned snapshot with a precise validity horizon:
    /// becoming *warned* always goes through `warn_path`/`warn_uplink`,
    /// but expiry is pure passage of time and fires at this boundary.
    #[inline]
    pub fn warned_until(&self, uplink: usize, dst_leaf: usize) -> u64 {
        self.uplink_until[uplink].max(self.path_until[self.idx(uplink, dst_leaf)])
    }

    /// Number of currently-warned uplinks toward `dst_leaf`.
    pub fn warned_count(&self, dst_leaf: usize, now_ps: u64) -> usize {
        (0..self.n_uplinks)
            .filter(|&u| self.is_warned(u, dst_leaf, now_ps))
            .count()
    }
}

/// Recent-contributor tracking: which ingress ports recently forwarded
/// traffic to each egress port.
///
/// This stands in for the paper's "records the source MAC address of the
/// incoming packets in the flow table": when a CNM must travel upstream, it
/// is relayed out of the reverse links of exactly the ingress ports that
/// recently fed the endangered egress — not flooded fabric-wide.
#[derive(Debug, Clone)]
pub struct ContributorTable {
    n_ports: usize,
    window_ps: u64,
    /// last time ingress j forwarded to egress i: row-major [egress][ingress].
    last_seen: Vec<u64>,
}

impl ContributorTable {
    pub fn new(n_ports: usize, window_ps: u64) -> ContributorTable {
        assert!(window_ps > 0);
        ContributorTable {
            n_ports,
            window_ps,
            last_seen: vec![0; n_ports * n_ports],
        }
    }

    #[inline]
    pub fn record(&mut self, egress: usize, ingress: usize, now_ps: u64) {
        self.last_seen[egress * self.n_ports + ingress] = now_ps.max(1);
    }

    /// Ingress ports that fed `egress` within the aging window.
    pub fn contributors(&self, egress: usize, now_ps: u64) -> impl Iterator<Item = usize> + '_ {
        let row = &self.last_seen[egress * self.n_ports..(egress + 1) * self.n_ports];
        let window = self.window_ps;
        row.iter()
            .enumerate()
            .filter(move |(_, &t)| t != 0 && now_ps.saturating_sub(t) <= window)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_warning_expires() {
        let mut w = WarningTable::new(4, 3);
        w.warn_path(2, 1, 5_000);
        assert!(w.is_warned(2, 1, 4_999));
        assert!(!w.is_warned(2, 1, 5_000), "expiry is exclusive");
        assert!(!w.is_warned(2, 0, 1_000), "other dst unaffected");
        assert!(!w.is_warned(1, 1, 1_000), "other uplink unaffected");
    }

    #[test]
    fn uplink_warning_covers_every_destination() {
        let mut w = WarningTable::new(4, 3);
        w.warn_uplink(0, 9_000);
        for dst in 0..3 {
            assert!(w.is_warned(0, dst, 8_999));
        }
        assert!(!w.is_warned(1, 0, 0));
    }

    #[test]
    fn refresh_extends_not_shrinks() {
        let mut w = WarningTable::new(2, 2);
        w.warn_path(0, 0, 10_000);
        w.warn_path(0, 0, 6_000); // stale refresh must not shorten
        assert!(w.is_warned(0, 0, 9_999));
        w.warn_path(0, 0, 20_000);
        assert!(w.is_warned(0, 0, 19_999));
        assert_eq!(w.warnings_recorded, 3);
    }

    #[test]
    fn warned_count_combines_granularities() {
        let mut w = WarningTable::new(4, 2);
        w.warn_path(0, 1, 10_000);
        w.warn_uplink(3, 10_000);
        assert_eq!(w.warned_count(1, 5_000), 2);
        assert_eq!(w.warned_count(0, 5_000), 1); // only the uplink warning
        assert_eq!(w.warned_count(1, 20_000), 0);
    }

    #[test]
    fn contributors_age_out() {
        let mut c = ContributorTable::new(4, 1_000);
        c.record(2, 0, 500);
        c.record(2, 3, 1_200);
        let at_1300: Vec<usize> = c.contributors(2, 1_300).collect();
        assert_eq!(at_1300, vec![0, 3]);
        let at_1600: Vec<usize> = c.contributors(2, 1_600).collect();
        assert_eq!(at_1600, vec![3], "port 0 aged out");
        assert!(c.contributors(1, 1_300).next().is_none());
    }

    #[test]
    fn record_at_time_zero_still_counts() {
        let mut c = ContributorTable::new(2, 1_000);
        c.record(0, 1, 0);
        assert_eq!(c.contributors(0, 500).collect::<Vec<_>>(), vec![1]);
    }
}
