//! Sharded-vs-sequential equivalence: `run_with_shards(n)` must be
//! byte-identical to the sequential engine for every shard count — the
//! non-negotiable contract of the bounded-window parallel driver.
//!
//! Events are keyed by `(sched_ps, entity rank, per-entity counter)` in
//! both engines, so each shard's dispatch order is the restriction of the
//! sequential order to the entities it owns and the merged observables
//! agree exactly — not statistically, not approximately. The digest below
//! covers every output the figure pipeline consumes *except*
//! `events_processed`, which legitimately differs (global DCQCN ticks are
//! replicated per shard and the final window may dispatch a few events
//! past the last completion; stable figure output excludes it for the
//! same reason).
//!
//! Under `--features audit` the sharded driver additionally asserts global
//! packet conservation from the per-shard cuts at every window barrier, so
//! running this suite with the feature enabled exercises those checks too.

use proptest::prelude::*;
use rlb_core::RlbConfig;
use rlb_engine::{SimDuration, SimTime};
use rlb_lb::Scheme;
use rlb_net::scenario::{FailSweepConfig, MotivationConfig, Scenario};
use rlb_net::{RunResult, SimConfig, TopoConfig};
use rlb_workloads::FlowSpec;

type PortKey = ((bool, u32), u16);

/// One flow record flattened for comparison: `(flow_id, src, dst, size,
/// packets, start, finish, ooo, max_ood, sent, naks, recircs)`.
type RecordRow = (u64, u32, u32, u64, u32, u64, Option<u64>, u64, u64, u64, u64, u64);

/// Everything observable except `events_processed` (see module docs).
#[derive(Debug, PartialEq)]
struct Digest {
    records: Vec<RecordRow>,
    groups: Vec<u64>,
    counters: Vec<u64>,
    pfc_pauses_by_port: Vec<(PortKey, u64)>,
    ood: (u64, u64, u64),
    end_ps: u64,
}

fn digest(res: &RunResult) -> Digest {
    let c = &res.counters;
    Digest {
        records: res
            .records
            .iter()
            .map(|r| {
                (
                    r.flow_id,
                    r.src_host,
                    r.dst_host,
                    r.size_bytes,
                    r.total_packets,
                    r.start_ps,
                    r.finish_ps,
                    r.ooo_packets,
                    r.max_ood,
                    r.packets_sent,
                    r.naks,
                    r.recirculations,
                )
            })
            .collect(),
        groups: res.groups.clone(),
        counters: vec![
            c.pause_frames,
            c.resume_frames,
            c.paused_port_time_ps,
            c.cnm_generated,
            c.cnm_relayed,
            c.recirculations,
            c.reroutes,
            c.forwards_unwarned,
            c.recirculation_budget_exhausted,
            c.buffer_drops,
            c.switch_packets,
            c.ecn_marks,
            c.faults_applied,
        ],
        pfc_pauses_by_port: res
            .pfc_pauses_by_port
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect(),
        ood: (
            res.ood_histogram.count(),
            res.ood_histogram.max(),
            res.ood_histogram.mean().to_bits(),
        ),
        end_ps: res.end_time.as_ps(),
    }
}

fn pfc_heavy_scenario(seed: u64) -> MotivationConfig {
    MotivationConfig {
        n_paths: 12,
        n_background: 12,
        n_burst_senders: 2,
        n_burst_senders_dst: 2,
        flows_per_burst: 40,
        bursts: 3,
        affected_paths: 4,
        congested_flow_bytes: 20_000_000,
        background_load: 0.25,
        horizon: SimTime::from_ms(2),
        seed,
    }
}

/// PFC storms, CNM relays and recirculation crossing the leaf↔spine shard
/// boundary all round: every shard count must land on the same bytes.
#[test]
fn motivation_scenario_matches_across_shard_counts() {
    let mk = || {
        Scenario::motivation(
            &pfc_heavy_scenario(42),
            Scheme::Drill,
            Some(RlbConfig::default()),
        )
    };
    let seq = digest(&mk().run());
    assert!(seq.counters[0] > 0, "scenario must exercise PFC");
    for shards in [2u16, 3, 5, 13] {
        let sharded = digest(&mk().run_with_shards(shards));
        assert_eq!(
            seq, sharded,
            "--shards {shards} diverged from the sequential engine"
        );
    }
}

/// Mid-run link faults are replicated into every shard's construction
/// set and their transmit kicks are owner-filtered; the faulted run must
/// still merge to the sequential bytes.
#[test]
fn faulted_runs_match_sequential() {
    let mk = || {
        let fc = FailSweepConfig {
            n_failures: 3,
            load: 0.4,
            horizon: SimTime::from_us(400),
            fail_at: SimTime::from_us(50),
            fail_stagger: SimDuration::from_us(30),
            fail_duration: SimDuration::from_us(150),
            seed: 13,
            ..FailSweepConfig::default()
        };
        Scenario::fail_sweep(&fc, Scheme::LetFlow, Some(RlbConfig::default()))
    };
    let seq = digest(&mk().run());
    assert_eq!(seq.counters[12], 6, "3 downs + 3 recoveries must fire");
    for shards in [2u16, 4] {
        assert_eq!(
            seq,
            digest(&mk().run_with_shards(shards)),
            "faulted --shards {shards} diverged"
        );
    }
}

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Ecmp),
        Just(Scheme::Presto),
        Just(Scheme::LetFlow),
        Just(Scheme::Hermes),
        Just(Scheme::Drill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case is 1 sequential + 2 sharded full simulations
        .. ProptestConfig::default()
    })]

    /// Differential property: arbitrary small workloads across schemes,
    /// RLB on/off, seeds and shard counts produce identical digests.
    #[test]
    fn sharded_equals_sequential(
        scheme in any_scheme(),
        use_rlb in any::<bool>(),
        seed in 0u64..1000,
        shards in 2u16..=4,
        flow_specs in proptest::collection::vec(
            (0u32..12, 0u32..12, 1u64..200_000, 0u64..500_000),
            1..12
        ),
    ) {
        let cfg = SimConfig {
            topo: TopoConfig {
                n_leaves: 3,
                n_spines: 2,
                hosts_per_leaf: 4,
                ..TopoConfig::default()
            },
            scheme,
            rlb: use_rlb.then(RlbConfig::default),
            seed,
            hard_stop: SimTime::from_ms(200),
            ..SimConfig::default()
        };
        let flows: Vec<FlowSpec> = flow_specs
            .into_iter()
            .filter(|(s, d, _, _)| s != d)
            .map(|(s, d, size, start_ps)| FlowSpec::new(SimTime(start_ps), s, d, size))
            .collect();
        let seq = digest(&Scenario::new(cfg.clone(), flows.clone()).run());
        let par = digest(&Scenario::new(cfg, flows).run_with_shards(shards));
        prop_assert_eq!(seq, par, "--shards {} diverged", shards);
    }
}
