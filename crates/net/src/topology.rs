//! Leaf–spine topology: node addressing, port maps and peer lookup.
//!
//! ```text
//!        spine 0   spine 1  ...  spine S-1
//!        /  |  \   /  |  \
//!    leaf 0   leaf 1  ...  leaf L-1
//!     / | \    / | \
//!   hosts     hosts
//! ```
//!
//! Port conventions:
//! * **Leaf l**: ports `0..H` face its hosts (`host = l·H + p`), ports
//!   `H..H+S` are uplinks (`port H+s` ↔ spine `s`).
//! * **Spine s**: port `l` ↔ leaf `l`.
//! * **Host h**: a single port 0 ↔ its leaf.

use crate::config::TopoConfig;
use serde::Serialize;

/// A node in the fabric. Encoded compactly for event payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Node {
    Host(u32),
    Leaf(u32),
    Spine(u32),
}

/// Static topology with O(1) peer lookup.
#[derive(Debug, Clone)]
pub struct Topology {
    pub cfg: TopoConfig,
}

impl Topology {
    pub fn new(cfg: TopoConfig) -> Topology {
        cfg.validate().expect("invalid topology");
        Topology { cfg }
    }

    #[inline]
    pub fn n_hosts(&self) -> u32 {
        self.cfg.n_hosts()
    }

    #[inline]
    pub fn leaf_of_host(&self, host: u32) -> u32 {
        host / self.cfg.hosts_per_leaf
    }

    /// The leaf port its host is attached to.
    #[inline]
    pub fn leaf_port_of_host(&self, host: u32) -> u16 {
        (host % self.cfg.hosts_per_leaf) as u16
    }

    /// Leaf uplink port for spine `s`.
    #[inline]
    pub fn leaf_uplink_port(&self, spine: u32) -> u16 {
        (self.cfg.hosts_per_leaf + spine) as u16
    }

    /// Inverse of `leaf_uplink_port`; `None` for host-facing ports.
    #[inline]
    pub fn spine_of_leaf_port(&self, port: u16) -> Option<u32> {
        let p = port as u32;
        (p >= self.cfg.hosts_per_leaf).then(|| p - self.cfg.hosts_per_leaf)
    }

    #[inline]
    pub fn n_ports(&self, node: Node) -> usize {
        match node {
            Node::Host(_) => 1,
            Node::Leaf(_) => (self.cfg.hosts_per_leaf + self.cfg.n_spines) as usize,
            Node::Spine(_) => self.cfg.n_leaves as usize,
        }
    }

    /// The other end of (node, port): (peer node, peer port).
    pub fn peer(&self, node: Node, port: u16) -> (Node, u16) {
        match node {
            Node::Host(h) => (Node::Leaf(self.leaf_of_host(h)), self.leaf_port_of_host(h)),
            Node::Leaf(l) => {
                if let Some(s) = self.spine_of_leaf_port(port) {
                    (Node::Spine(s), l as u16)
                } else {
                    (Node::Host(l * self.cfg.hosts_per_leaf + port as u32), 0)
                }
            }
            Node::Spine(s) => (Node::Leaf(port as u32), self.leaf_uplink_port(s)),
        }
    }

    /// Rate of the directed channel leaving (node, port), bits/sec.
    pub fn port_rate_bps(&self, node: Node, port: u16) -> u64 {
        match node {
            Node::Host(_) => self.cfg.host_link_rate_bps,
            Node::Leaf(l) => match self.spine_of_leaf_port(port) {
                Some(s) => self.cfg.uplink_rate_bps(l, s),
                None => self.cfg.host_link_rate_bps,
            },
            Node::Spine(s) => self.cfg.uplink_rate_bps(port as u32, s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(TopoConfig {
            n_leaves: 3,
            n_spines: 4,
            hosts_per_leaf: 2,
            ..TopoConfig::default()
        })
    }

    #[test]
    fn host_to_leaf_mapping() {
        let t = topo();
        assert_eq!(t.leaf_of_host(0), 0);
        assert_eq!(t.leaf_of_host(1), 0);
        assert_eq!(t.leaf_of_host(2), 1);
        assert_eq!(t.leaf_of_host(5), 2);
        assert_eq!(t.leaf_port_of_host(5), 1);
    }

    #[test]
    fn peer_is_symmetric_everywhere() {
        let t = topo();
        let mut nodes = Vec::new();
        for h in 0..t.n_hosts() {
            nodes.push(Node::Host(h));
        }
        for l in 0..3 {
            nodes.push(Node::Leaf(l));
        }
        for s in 0..4 {
            nodes.push(Node::Spine(s));
        }
        for node in nodes {
            for port in 0..t.n_ports(node) as u16 {
                let (pn, pp) = t.peer(node, port);
                let (back_n, back_p) = t.peer(pn, pp);
                assert_eq!((back_n, back_p), (node, port), "asymmetric peer at {node:?}:{port}");
            }
        }
    }

    #[test]
    fn uplink_port_round_trip() {
        let t = topo();
        for s in 0..4 {
            let p = t.leaf_uplink_port(s);
            assert_eq!(t.spine_of_leaf_port(p), Some(s));
        }
        assert_eq!(t.spine_of_leaf_port(0), None);
        assert_eq!(t.spine_of_leaf_port(1), None);
    }

    #[test]
    fn port_counts() {
        let t = topo();
        assert_eq!(t.n_ports(Node::Host(0)), 1);
        assert_eq!(t.n_ports(Node::Leaf(0)), 6);
        assert_eq!(t.n_ports(Node::Spine(0)), 3);
    }

    #[test]
    fn degraded_link_rates_visible_from_both_ends() {
        let mut cfg = TopoConfig {
            n_leaves: 3,
            n_spines: 4,
            hosts_per_leaf: 2,
            ..TopoConfig::default()
        };
        cfg.degraded_links.push((1, 2));
        let t = Topology::new(cfg);
        assert_eq!(t.port_rate_bps(Node::Leaf(1), t.leaf_uplink_port(2)), 10_000_000_000);
        assert_eq!(t.port_rate_bps(Node::Spine(2), 1), 10_000_000_000);
        assert_eq!(t.port_rate_bps(Node::Leaf(1), t.leaf_uplink_port(1)), 40_000_000_000);
        assert_eq!(t.port_rate_bps(Node::Host(0), 0), 40_000_000_000);
    }
}
