//! Experiment scenarios: the paper's setups plus declarative extensions.
//!
//! [`Scenario`] is the single entry point: a fully built simulation input
//! (config + flows + fault timeline). Construct one through the
//! builder-style constructors ([`Scenario::motivation`],
//! [`Scenario::steady_state`], [`Scenario::incast`],
//! [`Scenario::fail_sweep`]), or declaratively from an on-disk spec file
//! via [`crate::spec::ScenarioSpec`].

use crate::config::{SimConfig, TopoConfig};
use crate::fault::{Fault, TimedFault};
use rlb_core::RlbConfig;
use rlb_engine::{substream, SimDuration, SimTime};
use rlb_lb::Scheme;
use rlb_workloads::{
    congested_flow, incast, BurstConfig, FlowSpec, IncastConfig, LoadCurve, PairPolicy,
    PoissonTraffic, SizeCdf, Workload,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// The Fig. 2 motivation scenario: a dumbbell of two leaves joined by many
/// parallel spines. Background flows H1..Hn → R1..Rn cross the core, burst
/// senders Hb (on the receiving leaf) plus a long congested flow fc slam a
/// single victim receiver Rc, triggering PFC on the spine paths.
#[derive(Debug, Clone, Serialize)]
pub struct MotivationConfig {
    /// Parallel spine paths between the two leaves (paper: 40).
    pub n_paths: u32,
    /// Background sender/receiver pairs (paper: 100; scaled default 16).
    pub n_background: u32,
    /// Burst senders in Hb on the *source* leaf (their bursts cross the
    /// spines and are what pushes the affected paths' ingress counters at
    /// S2 over the PFC threshold).
    pub n_burst_senders: u32,
    /// Burst senders in Hb attached to the *destination* leaf S2 (the
    /// paper's text placement); they jam the victim's egress port and
    /// deepen the shared-buffer backlog without crossing the core.
    pub n_burst_senders_dst: u32,
    /// Simultaneous 64 KB flows per burst sender per burst (paper: 40).
    pub flows_per_burst: u32,
    /// Continuous bursts (paper default 2; Fig. 4b sweeps 1–6).
    pub bursts: u32,
    /// Paths the congested flow fc may use (Fig. 4a sweeps 5–30).
    pub affected_paths: u32,
    /// Size of fc (paper: 250 MB; scaled default 30 MB).
    pub congested_flow_bytes: u64,
    /// Offered background load as a fraction of the dumbbell core. The
    /// paper does not state it; chosen so per-host utilisation stays
    /// moderate (its 100 senders at 40 Gbps are far from saturated).
    pub background_load: f64,
    /// Background horizon.
    pub horizon: SimTime,
    pub seed: u64,
}

impl Default for MotivationConfig {
    fn default() -> Self {
        MotivationConfig {
            n_paths: 40,
            n_background: 16,
            n_burst_senders: 2,
            n_burst_senders_dst: 2,
            flows_per_burst: 40,
            bursts: 2,
            affected_paths: 5,
            congested_flow_bytes: 30_000_000,
            background_load: 0.25,
            horizon: SimTime::from_ms(4),
            seed: 1,
        }
    }
}

/// Built scenario: the simulation config (including any fault timeline in
/// `cfg.faults`) plus the flows to inject.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub cfg: SimConfig,
    pub flows: Vec<FlowSpec>,
}

impl Scenario {
    /// Wrap an explicit config + flow list.
    pub fn new(cfg: SimConfig, flows: Vec<FlowSpec>) -> Scenario {
        Scenario { cfg, flows }
    }

    /// The Fig. 2/3/4 motivation dumbbell (see [`motivation`]).
    pub fn motivation(mc: &MotivationConfig, scheme: Scheme, rlb: Option<RlbConfig>) -> Scenario {
        motivation(mc, scheme, rlb)
    }

    /// §4.1/§4.2 steady-state Poisson traffic (see [`steady_state`]).
    pub fn steady_state(
        sc: &SteadyStateConfig,
        scheme: Scheme,
        rlb: Option<RlbConfig>,
    ) -> Scenario {
        steady_state(sc, scheme, rlb)
    }

    /// §4.3 incast over optional background (see [`incast_scenario`]).
    pub fn incast(ic: &IncastScenarioConfig, scheme: Scheme, rlb: Option<RlbConfig>) -> Scenario {
        incast_scenario(ic, scheme, rlb)
    }

    /// Failure sweep the paper never ran (see [`fail_sweep`]).
    pub fn fail_sweep(fc: &FailSweepConfig, scheme: Scheme, rlb: Option<RlbConfig>) -> Scenario {
        fail_sweep(fc, scheme, rlb)
    }

    /// Replace the fault timeline (validated when the simulation is built).
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<TimedFault>) -> Scenario {
        self.cfg.faults = faults;
        self
    }

    /// Append extra flows, keeping the arrival order sorted.
    #[must_use]
    pub fn with_extra_flows(mut self, extra: impl IntoIterator<Item = FlowSpec>) -> Scenario {
        self.flows.extend(extra);
        self.flows.sort_by_key(|f| f.start);
        self
    }

    pub fn run(self) -> crate::sim::RunResult {
        crate::sim::Simulation::new(self.cfg, self.flows).run()
    }

    /// Run on `shards` parallel shards (bounded-window protocol; see
    /// `crate::shard`). Byte-identical to [`run`](Self::run) for every
    /// shard count — `shards <= 1`, monitoring, or packet tracing fall
    /// back to the sequential engine.
    pub fn run_with_shards(self, shards: u16) -> crate::sim::RunResult {
        crate::shard::run_sharded(self.cfg, self.flows, shards)
    }
}

/// Group tag labelling the measured background flows f1..fn in the
/// motivation scenario — Fig. 3/4 report metrics over these only, not the
/// bursty or congested traffic that *causes* the pausing.
pub const BACKGROUND_GROUP: u64 = u64::MAX - 1;

/// Host layout for the motivation dumbbell:
/// leaf 0 hosts: background senders H1..Hn, then Hc, then the Hb burst
/// senders; leaf 1 hosts: background receivers R1..Rn, then Rc.
///
/// Fig. 2 draws burst senders on the sending side as well as at S2; the
/// mechanism the paper describes — "these paths have the risk of being
/// paused by PFC due to bursty traffic" — requires the bursts to *cross
/// the spines*, so that S2's uplink ingress counters (holding burst and fc
/// packets stuck behind Rc's egress) hit the PFC threshold and pause the
/// spine-side paths the measured flows share. We therefore place Hb on the
/// sending leaf (see DESIGN.md, "Known deviations").
pub fn motivation(mc: &MotivationConfig, scheme: Scheme, rlb: Option<RlbConfig>) -> Scenario {
    let hosts_per_leaf = mc.n_background + 1 + mc.n_burst_senders.max(mc.n_burst_senders_dst);
    let topo = TopoConfig {
        n_leaves: 2,
        n_spines: mc.n_paths,
        hosts_per_leaf,
        ..TopoConfig::default()
    };
    let mut cfg = SimConfig {
        topo,
        scheme,
        rlb,
        seed: mc.seed,
        hard_stop: SimTime::ZERO + mc.horizon.as_duration().mul_u64(20),
        ..SimConfig::default()
    };
    let mut flows = Vec::new();
    let h = |leaf: u32, idx: u32| leaf * hosts_per_leaf + idx;

    // Background: H_i on leaf 0 → R_i on leaf 1, Web Search arrivals.
    let bg_pairs: Vec<(u32, u32)> = (0..mc.n_background).map(|i| (h(0, i), h(1, i))).collect();
    let cdf = SizeCdf::web_search();
    let mut rng = substream(mc.seed, b"motivation-bg", 0);
    let core_bps = mc.n_paths as f64 * cfg.topo.link_rate_bps as f64;
    let lambda = mc.background_load * core_bps / (8.0 * cdf.mean_bytes());
    let mean_gap = 1e12 / lambda;
    let mut t = 0u64;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += ((-u.ln()) * mean_gap).round().max(1.0) as u64;
        if t >= mc.horizon.as_ps() {
            break;
        }
        let &(src, dst) = bg_pairs.choose(&mut rng).expect("pairs");
        flows.push(
            FlowSpec::new(SimTime(t), src, dst, cdf.sample(&mut rng))
                .with_group(BACKGROUND_GROUP),
        );
    }

    // Victim receiver Rc and congested sender Hc.
    let rc = h(1, mc.n_background);
    let hc = h(0, mc.n_background);

    // fc as `affected_paths` parallel subflows, all restricted to the first
    // `affected_paths` spines — the paper's control knob: congested traffic
    // may only choose (and therefore only pause) that many paths.
    let limit = mc.affected_paths.max(1).min(mc.n_paths) as u8;
    let sub = (mc.congested_flow_bytes / mc.affected_paths.max(1) as u64).max(1);
    for _ in 0..mc.affected_paths {
        flows.push(congested_flow(hc, rc, sub, SimTime::ZERO).with_path_limit(limit));
    }

    // Continuous bursts from the source-leaf Hb set across the core into
    // Rc, restricted to the same affected paths.
    let burst = BurstConfig {
        senders: (0..mc.n_burst_senders)
            .map(|i| h(0, mc.n_background + 1 + i))
            .collect(),
        dst_host: rc,
        flows_per_burst: mc.flows_per_burst,
        flow_bytes: 64_000,
        bursts: mc.bursts,
        start: SimTime::from_us(100),
        burst_gap: SimDuration::from_us(400),
    };
    flows.extend(burst.generate().into_iter().map(|f| f.with_path_limit(limit)));

    // Bursts from the destination-leaf Hb set (single hop into Rc): they
    // keep the victim's egress queue and the S2 shared pool deep, so the
    // core-crossing congested traffic stays stuck at S2's uplink ingress.
    let local_burst = BurstConfig {
        senders: (0..mc.n_burst_senders_dst)
            .map(|i| h(1, mc.n_background + 1 + i))
            .collect(),
        dst_host: rc,
        flows_per_burst: mc.flows_per_burst,
        flow_bytes: 64_000,
        bursts: mc.bursts,
        start: SimTime::from_us(100),
        burst_gap: SimDuration::from_us(400),
    };
    flows.extend(local_burst.generate());
    flows.sort_by_key(|f| f.start);
    cfg.seed = mc.seed;
    Scenario { cfg, flows }
}

/// §4.1/§4.2 steady-state scenario: Poisson arrivals of a realistic
/// workload between random inter-leaf host pairs at a target core load.
#[derive(Debug, Clone, Serialize)]
pub struct SteadyStateConfig {
    pub topo: TopoConfig,
    pub workload: Workload,
    pub load: f64,
    pub horizon: SimTime,
    pub seed: u64,
}

impl Default for SteadyStateConfig {
    fn default() -> Self {
        SteadyStateConfig {
            topo: TopoConfig::default(),
            workload: Workload::WebSearch,
            load: 0.6,
            horizon: SimTime::from_ms(20),
            seed: 1,
        }
    }
}

pub fn steady_state(sc: &SteadyStateConfig, scheme: Scheme, rlb: Option<RlbConfig>) -> Scenario {
    let cfg = SimConfig {
        topo: sc.topo.clone(),
        scheme,
        rlb,
        seed: sc.seed,
        hard_stop: SimTime::ZERO + sc.horizon.as_duration().mul_u64(25),
        ..SimConfig::default()
    };
    let traffic = PoissonTraffic::with_load(
        sc.workload.cdf(),
        sc.topo.n_hosts(),
        PairPolicy::InterLeaf {
            hosts_per_leaf: sc.topo.hosts_per_leaf,
        },
        sc.load,
        sc.topo.core_bits_per_sec(),
    );
    let mut rng = substream(sc.seed, b"steady-state", 0);
    let flows = traffic.generate(sc.horizon, &mut rng);
    Scenario { cfg, flows }
}

/// §4.2's asymmetric topology: degrade 20% of randomly chosen leaf–spine
/// links from 40 to 10 Gbps.
pub fn asymmetric_topo(base: &TopoConfig, fraction: f64, seed: u64) -> TopoConfig {
    let mut topo = base.clone();
    let mut all: Vec<(u32, u32)> = (0..topo.n_leaves)
        .flat_map(|l| (0..topo.n_spines).map(move |s| (l, s)))
        .collect();
    let mut rng = substream(seed, b"asymmetry", 0);
    all.shuffle(&mut rng);
    let k = ((all.len() as f64) * fraction).round() as usize;
    topo.degraded_links = all.into_iter().take(k).collect();
    topo
}

/// §4.3 incast scenario, optionally over light background traffic.
#[derive(Debug, Clone, Serialize)]
pub struct IncastScenarioConfig {
    pub topo: TopoConfig,
    pub degree: u32,
    pub total_response_bytes: u64,
    pub requests: u32,
    pub request_interval: SimDuration,
    /// Background load (0 disables background).
    pub background_load: f64,
    pub seed: u64,
}

impl Default for IncastScenarioConfig {
    fn default() -> Self {
        IncastScenarioConfig {
            topo: TopoConfig::default(),
            degree: 15,
            total_response_bytes: 4_000_000,
            requests: 8,
            request_interval: SimDuration::from_ms(1),
            background_load: 0.2,
            seed: 1,
        }
    }
}

pub fn incast_scenario(
    ic: &IncastScenarioConfig,
    scheme: Scheme,
    rlb: Option<RlbConfig>,
) -> Scenario {
    let cfg = SimConfig {
        topo: ic.topo.clone(),
        scheme,
        rlb,
        seed: ic.seed,
        hard_stop: SimTime::ZERO
            + ic.request_interval
                .mul_u64(ic.requests as u64 + 1)
                .mul_u64(30),
        ..SimConfig::default()
    };
    let horizon = SimTime::ZERO + ic.request_interval.mul_u64(ic.requests as u64);
    let mut rng = substream(ic.seed, b"incast", 0);
    let mut flows = incast::generate(
        &IncastConfig {
            degree: ic.degree,
            total_response_bytes: ic.total_response_bytes,
            requests: ic.requests,
            request_interval: ic.request_interval,
            num_hosts: ic.topo.n_hosts(),
            hosts_per_leaf: ic.topo.hosts_per_leaf,
        },
        &mut rng,
    );
    if ic.background_load > 0.0 {
        let traffic = PoissonTraffic::with_load(
            SizeCdf::web_search(),
            ic.topo.n_hosts(),
            PairPolicy::InterLeaf {
                hosts_per_leaf: ic.topo.hosts_per_leaf,
            },
            ic.background_load,
            ic.topo.core_bits_per_sec(),
        );
        flows.extend(traffic.generate(horizon, &mut rng));
    }
    flows.sort_by_key(|f| f.start);
    Scenario { cfg, flows }
}

/// Failure sweep: steady-state Poisson traffic over a healthy fabric, then
/// `n_failures` distinct leaf–spine links go down mid-run (staggered), each
/// recovering after `fail_duration`. The links are chosen uniformly by seed
/// (the [`asymmetric_topo`] idiom), so replicates fail different links.
///
/// This is the scenario behind `fig_fail` — an experiment the paper never
/// ran, but squarely inside its premise: schemes that cannot perceive PFC
/// pausing keep spraying into paths stalled behind a dead link, while RLB's
/// warning chain steers flows off the failed spine.
#[derive(Debug, Clone, Serialize)]
pub struct FailSweepConfig {
    pub topo: TopoConfig,
    pub workload: Workload,
    /// Offered load as a fraction of the healthy core capacity.
    pub load: f64,
    /// Flow-arrival horizon.
    pub horizon: SimTime,
    /// Distinct leaf–spine links that fail (the sweep's x-axis).
    pub n_failures: u32,
    /// Instant the first link goes down.
    pub fail_at: SimTime,
    /// Gap between successive link failures.
    pub fail_stagger: SimDuration,
    /// Outage length per link; `SimDuration::ZERO` = no recovery.
    pub fail_duration: SimDuration,
    /// Offered-load multiplier over time (flat 1.0 by default).
    pub load_curve: LoadCurve,
    pub seed: u64,
}

impl Default for FailSweepConfig {
    fn default() -> Self {
        FailSweepConfig {
            topo: TopoConfig::default(),
            workload: Workload::WebSearch,
            load: 0.5,
            horizon: SimTime::from_ms(4),
            n_failures: 2,
            fail_at: SimTime::from_us(200),
            fail_stagger: SimDuration::from_us(100),
            fail_duration: SimDuration::from_ms(1),
            load_curve: LoadCurve::flat(),
            seed: 1,
        }
    }
}

pub fn fail_sweep(fc: &FailSweepConfig, scheme: Scheme, rlb: Option<RlbConfig>) -> Scenario {
    let n_links = fc.topo.n_leaves * fc.topo.n_spines;
    assert!(
        fc.n_failures <= n_links,
        "cannot fail {} of {} links",
        fc.n_failures,
        n_links
    );
    // Pick the victim links uniformly, deterministically per seed.
    let mut all: Vec<(u32, u32)> = (0..fc.topo.n_leaves)
        .flat_map(|l| (0..fc.topo.n_spines).map(move |s| (l, s)))
        .collect();
    let mut rng = substream(fc.seed, b"fail-sweep-links", 0);
    all.shuffle(&mut rng);
    let mut faults = Vec::with_capacity(fc.n_failures as usize * 2);
    for (i, &(leaf, spine)) in all.iter().take(fc.n_failures as usize).enumerate() {
        let down_at = fc.fail_at + fc.fail_stagger.mul_u64(i as u64);
        faults.push(TimedFault::new(down_at, Fault::LinkDown { leaf, spine }));
        if fc.fail_duration > SimDuration::ZERO {
            faults.push(TimedFault::new(
                down_at + fc.fail_duration,
                Fault::LinkUp { leaf, spine },
            ));
        }
    }
    faults.sort_by_key(|tf| tf.at);

    let cfg = SimConfig {
        topo: fc.topo.clone(),
        scheme,
        rlb,
        seed: fc.seed,
        hard_stop: SimTime::ZERO + fc.horizon.as_duration().mul_u64(25),
        faults,
        ..SimConfig::default()
    };
    let traffic = PoissonTraffic::with_load(
        fc.workload.cdf(),
        fc.topo.n_hosts(),
        PairPolicy::InterLeaf {
            hosts_per_leaf: fc.topo.hosts_per_leaf,
        },
        fc.load,
        fc.topo.core_bits_per_sec(),
    );
    let mut rng = substream(fc.seed, b"fail-sweep-traffic", 0);
    let flows = traffic.generate_modulated(fc.horizon, &fc.load_curve, &mut rng);
    Scenario { cfg, flows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_layout() {
        let mc = MotivationConfig {
            n_background: 4,
            n_burst_senders: 2,
            n_burst_senders_dst: 2,
            n_paths: 8,
            affected_paths: 3,
            bursts: 2,
            flows_per_burst: 5,
            horizon: SimTime::from_us(500),
            ..MotivationConfig::default()
        };
        let sc = motivation(&mc, Scheme::Drill, None);
        assert_eq!(sc.cfg.topo.n_leaves, 2);
        assert_eq!(sc.cfg.topo.n_spines, 8);
        assert_eq!(sc.cfg.topo.hosts_per_leaf, 7);
        // fc subflows present: 3 flows of ~2/3 MB from Hc (leaf 0, idx 4)
        // to Rc (leaf 1, idx 4).
        let hc = 4;
        let rc = 7 + 4;
        // burst senders live on BOTH leaves: the source-leaf set crosses
        // the spines (path-limited), the destination-leaf set is local.
        let burst_srcs: std::collections::HashSet<u32> = sc
            .flows
            .iter()
            .filter(|f| f.size_bytes == 64_000 && f.dst_host == rc)
            .map(|f| f.src_host)
            .collect();
        assert!(burst_srcs.iter().any(|&s| s < 7), "need Hb on leaf 0: {burst_srcs:?}");
        assert!(burst_srcs.iter().any(|&s| s >= 7), "need Hb on leaf 1: {burst_srcs:?}");
        // core-crossing bursts carry the path restriction; local ones don't
        for f in sc.flows.iter().filter(|f| f.size_bytes == 64_000 && f.dst_host == rc) {
            if f.src_host < 7 {
                assert_eq!(f.path_limit, Some(3));
            } else {
                assert_eq!(f.path_limit, None);
            }
        }
        let fc: Vec<_> = sc.flows.iter().filter(|f| f.src_host == hc && f.dst_host == rc).collect();
        assert_eq!(fc.len(), 3);
        // bursts: (2 src + 2 dst) senders × 5 flows × 2 bursts to Rc.
        let bursts = sc
            .flows
            .iter()
            .filter(|f| f.dst_host == rc && f.size_bytes == 64_000)
            .count();
        assert_eq!(bursts, 40);
        // arrival-sorted
        for w in sc.flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn asymmetric_degrades_requested_fraction() {
        let t = asymmetric_topo(&TopoConfig::default(), 0.2, 7);
        // 4×4 = 16 links; 20% → 3 degraded.
        assert_eq!(t.degraded_links.len(), 3);
        t.validate().unwrap();
        // deterministic per seed
        let t2 = asymmetric_topo(&TopoConfig::default(), 0.2, 7);
        assert_eq!(t.degraded_links, t2.degraded_links);
        let t3 = asymmetric_topo(&TopoConfig::default(), 0.2, 8);
        assert_ne!(t.degraded_links, t3.degraded_links);
    }

    #[test]
    fn steady_state_generates_interleaf_poisson() {
        let sc = steady_state(
            &SteadyStateConfig {
                horizon: SimTime::from_ms(5),
                load: 0.4,
                ..SteadyStateConfig::default()
            },
            Scheme::Presto,
            None,
        );
        assert!(!sc.flows.is_empty());
        let hpl = sc.cfg.topo.hosts_per_leaf;
        assert!(sc.flows.iter().all(|f| f.src_host / hpl != f.dst_host / hpl));
    }

    #[test]
    fn incast_scenario_tags_groups() {
        let sc = incast_scenario(
            &IncastScenarioConfig {
                requests: 3,
                degree: 5,
                background_load: 0.0,
                ..IncastScenarioConfig::default()
            },
            Scheme::Hermes,
            Some(RlbConfig::default()),
        );
        assert_eq!(sc.flows.len(), 15);
        assert!(sc.flows.iter().all(|f| f.group < 3));
        assert!(sc.cfg.rlb.is_some());
    }

    #[test]
    fn fail_sweep_builds_sorted_validated_timeline() {
        let fc = FailSweepConfig {
            n_failures: 3,
            horizon: SimTime::from_ms(1),
            ..FailSweepConfig::default()
        };
        let sc = Scenario::fail_sweep(&fc, Scheme::Drill, Some(RlbConfig::default()));
        // 3 outages, each with a recovery.
        assert_eq!(sc.cfg.faults.len(), 6);
        sc.cfg.validate().expect("fail-sweep config validates");
        let downs: Vec<_> = sc
            .cfg
            .faults
            .iter()
            .filter(|tf| matches!(tf.fault, Fault::LinkDown { .. }))
            .collect();
        assert_eq!(downs.len(), 3);
        assert_eq!(downs[0].at, fc.fail_at);
        // distinct victim links
        let mut links: Vec<(u32, u32)> = sc
            .cfg
            .faults
            .iter()
            .filter_map(|tf| match tf.fault {
                Fault::LinkDown { leaf, spine } => Some((leaf, spine)),
                _ => None,
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        assert_eq!(links.len(), 3);
        assert!(!sc.flows.is_empty());
        // deterministic per seed, different across seeds
        let sc2 = Scenario::fail_sweep(&fc, Scheme::Drill, Some(RlbConfig::default()));
        assert_eq!(sc.cfg.faults, sc2.cfg.faults);
        let sc3 = Scenario::fail_sweep(
            &FailSweepConfig { seed: 9, ..fc.clone() },
            Scheme::Drill,
            None,
        );
        assert_ne!(sc.cfg.faults, sc3.cfg.faults);
    }

    #[test]
    fn scenario_builders_match_free_functions() {
        let mc = MotivationConfig {
            horizon: SimTime::from_us(200),
            ..MotivationConfig::default()
        };
        let a = Scenario::motivation(&mc, Scheme::Presto, None);
        let b = motivation(&mc, Scheme::Presto, None);
        assert_eq!(a.flows.len(), b.flows.len());
        assert_eq!(a.cfg.label(), b.cfg.label());
        let faulted = Scenario::steady_state(&SteadyStateConfig::default(), Scheme::Drill, None)
            .with_faults(vec![TimedFault::new(
                SimTime::from_us(5),
                Fault::SpineDown { spine: 1 },
            )]);
        assert_eq!(faulted.cfg.faults.len(), 1);
        faulted.cfg.validate().expect("faulted scenario validates");
    }
}
