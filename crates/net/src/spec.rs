//! On-disk scenario specs: a hand-rolled TOML-subset reader and writer.
//!
//! The vendored serde is a no-op stub, so — like `bench/src/json.rs` — this
//! module parses its format by hand, deterministically, with byte-exact
//! round-trips ([`ScenarioSpec::to_spec_text`] emits the canonical form that
//! [`ScenarioSpec::parse`] reads back to an equal value).
//!
//! The grammar is the TOML subset the scenario model needs, nothing more:
//!
//! ```text
//! # comment (full line)
//! [section]            # [scenario] | [topology]
//! [[table]]            # [[workload]] | [[fault]] | [[load]]
//! key = value          # value: integer (with _ separators), bool, "string"
//! ```
//!
//! Every quantity is an integer: times in picoseconds (`*_ps`, the
//! simulator's native clock), rates in bits/sec, loads and multipliers in
//! permille (parts-per-thousand). No floats means no precision loss between
//! a spec and its re-serialization.
//!
//! Errors carry a line/column span and render a rustc-style caret frame
//! (pinned by snapshot tests), so a typo in a 60-line spec points at the
//! offending token, not at "invalid config".

use crate::config::{SimConfig, TopoConfig};
use crate::fault::{self, Fault, TimedFault};
use crate::scenario::Scenario;
use rlb_core::RlbConfig;
use rlb_engine::{substream, SimDuration, SimTime};
use rlb_lb::Scheme;
use rlb_workloads::{incast, IncastConfig, LoadCurve, PairPolicy, PoissonTraffic, Workload};
use serde::Serialize;

/// A parse error with the span it points at. `Display` renders a caret
/// frame; keep the fields public so tools can re-render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Length of the underline (at least 1).
    pub len: usize,
    pub msg: String,
    /// The full source line, for the frame.
    pub src_line: String,
    /// Optional hint printed under the carets.
    pub help: Option<String>,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error: {}", self.msg)?;
        let num = self.line.to_string();
        let pad = " ".repeat(num.len());
        writeln!(f, "{pad}--> scenario spec, line {num}")?;
        writeln!(f, "{pad} |")?;
        writeln!(f, "{num} | {}", self.src_line)?;
        let carets = "^".repeat(self.len.max(1));
        write!(f, "{pad} | {}{carets}", " ".repeat(self.col.saturating_sub(1)))?;
        if let Some(h) = &self.help {
            write!(f, " {h}")?;
        }
        Ok(())
    }
}

/// One traffic component: Poisson arrivals of a named workload CDF at an
/// offered load (permille of the healthy core capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WorkloadEntry {
    pub kind: Workload,
    pub load_permille: u32,
}

impl Default for WorkloadEntry {
    fn default() -> Self {
        WorkloadEntry {
            kind: Workload::WebSearch,
            load_permille: 500,
        }
    }
}

/// One `[[fault]]` table: either a single timed fault or a flap pattern
/// that expands into down/up pairs at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultEntry {
    At(TimedFault),
    Flap {
        at: SimTime,
        leaf: u32,
        spine: u32,
        down: SimDuration,
        up: SimDuration,
        cycles: u32,
    },
}

/// Topology dimensions a spec may set; defaults mirror
/// [`TopoConfig::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TopoSpec {
    pub n_leaves: u32,
    pub n_spines: u32,
    pub hosts_per_leaf: u32,
    pub link_rate_bps: u64,
    pub host_link_rate_bps: u64,
    pub link_delay_ps: u64,
}

impl Default for TopoSpec {
    fn default() -> Self {
        let t = TopoConfig::default();
        TopoSpec {
            n_leaves: t.n_leaves,
            n_spines: t.n_spines,
            hosts_per_leaf: t.hosts_per_leaf,
            link_rate_bps: t.link_rate_bps,
            host_link_rate_bps: t.host_link_rate_bps,
            link_delay_ps: t.link_delay_ps,
        }
    }
}

/// Optional `[incast]` section: a §4.3 fan-in burst layered over the
/// workload mix (which then plays the role of background traffic).
/// Defaults mirror [`crate::scenario::IncastScenarioConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IncastSpec {
    /// Responding servers per request (the fan-in degree).
    pub degree: u32,
    /// Total bytes across all responders for one request (the burst size).
    pub total_response_bytes: u64,
    /// Number of incast requests issued.
    pub requests: u32,
    /// Gap between successive requests.
    pub request_interval: SimDuration,
}

impl Default for IncastSpec {
    fn default() -> Self {
        IncastSpec {
            degree: 15,
            total_response_bytes: 4_000_000,
            requests: 8,
            request_interval: SimDuration::from_ms(1),
        }
    }
}

/// A declarative scenario: topology + workload mix + fault timeline +
/// load curve. Parsed from spec text, buildable into a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScenarioSpec {
    /// Display / job label ("scenario" if empty).
    pub name: String,
    pub scheme: Scheme,
    /// Wrap the scheme in RLB (predictor + Algorithm 1, default params).
    pub rlb: bool,
    pub seed: u64,
    /// Flow-arrival horizon (the run's hard stop is 25× this).
    pub horizon: SimTime,
    pub topo: TopoSpec,
    /// Optional incast overlay; the workload mix becomes the background.
    pub incast: Option<IncastSpec>,
    /// Traffic mix: every entry generates independently and the flows merge.
    pub workloads: Vec<WorkloadEntry>,
    pub faults: Vec<FaultEntry>,
    /// Offered-load curve points `(from, permille)` applied to every
    /// workload entry.
    pub load_points: Vec<(SimTime, u32)>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: String::new(),
            scheme: Scheme::Drill,
            rlb: false,
            seed: 1,
            horizon: SimTime::from_ms(4),
            topo: TopoSpec::default(),
            incast: None,
            workloads: vec![WorkloadEntry::default()],
            faults: Vec::new(),
            load_points: Vec::new(),
        }
    }
}

fn scheme_name(s: Scheme) -> &'static str {
    match s {
        Scheme::Ecmp => "ecmp",
        Scheme::Presto => "presto",
        Scheme::LetFlow => "letflow",
        Scheme::Hermes => "hermes",
        Scheme::Drill => "drill",
        Scheme::Conga => "conga",
    }
}

const SCHEME_HELP: &str = "known schemes: ecmp, presto, letflow, hermes, drill, conga";

fn scheme_from(name: &str) -> Option<Scheme> {
    Some(match name {
        "ecmp" => Scheme::Ecmp,
        "presto" => Scheme::Presto,
        "letflow" => Scheme::LetFlow,
        "hermes" => Scheme::Hermes,
        "drill" => Scheme::Drill,
        "conga" => Scheme::Conga,
        _ => return None,
    })
}

fn workload_name(w: Workload) -> &'static str {
    match w {
        Workload::WebServer => "web_server",
        Workload::CacheFollower => "cache_follower",
        Workload::WebSearch => "web_search",
        Workload::DataMining => "data_mining",
    }
}

const WORKLOAD_HELP: &str =
    "known workloads: web_server, cache_follower, web_search, data_mining";

fn workload_from(name: &str) -> Option<Workload> {
    Some(match name {
        "web_server" => Workload::WebServer,
        "cache_follower" => Workload::CacheFollower,
        "web_search" => Workload::WebSearch,
        "data_mining" => Workload::DataMining,
        _ => return None,
    })
}

const FAULT_HELP: &str =
    "known fault kinds: link_down, link_up, link_rate, spine_down, spine_up, load_scale, flap";

/// One documented key of a spec section: the machine-readable grammar
/// reference. `cargo xtask spec-doc` renders [`SPEC_REFERENCE`] into
/// EXPERIMENTS.md, and the parser's own unknown-key diagnostics quote the
/// same tables (see [`known_keys`]) — so the rendered reference, the
/// diagnostics and the accepted grammar cannot drift apart. Unit tests
/// additionally pin every documented default to the canonical output of
/// [`ScenarioSpec::to_spec_text`] and every documented key to a parse.
pub struct KeyDoc {
    pub key: &'static str,
    /// Value shape shown in the reference ("string", "bool", integer
    /// units, or an enum listing).
    pub value: &'static str,
    /// Default rendered by the canonical writer, `_`-separated for
    /// readability (the parser accepts separators); `None` = required.
    pub default: Option<&'static str>,
    /// A valid example value (used by the documented-keys-parse test).
    pub example: &'static str,
    pub doc: &'static str,
}

/// One section (`[name]`) or repeatable table (`[[name]]`) of the grammar.
pub struct SectionDoc {
    pub header: &'static str,
    pub repeatable: bool,
    pub doc: &'static str,
    pub keys: &'static [KeyDoc],
    /// Extra bullets rendered after the key table (per-fault-kind field
    /// requirements and similar cross-key rules).
    pub notes: &'static [&'static str],
}

/// The complete scenario-spec grammar, one entry per section. Order is
/// the canonical section order of [`ScenarioSpec::to_spec_text`].
pub const SPEC_REFERENCE: &[SectionDoc] = &[
    SectionDoc {
        header: "[scenario]",
        repeatable: false,
        doc: "Run identity: the scheme under test, optional RLB wrapping, \
              seed and flow-arrival horizon.",
        keys: &[
            KeyDoc {
                key: "name",
                value: "string",
                default: Some("\"\""),
                example: "\"outage\"",
                doc: "Display / job label (`scenario` when empty).",
            },
            KeyDoc {
                key: "scheme",
                value: "`ecmp` \\| `presto` \\| `letflow` \\| `hermes` \\| `drill` \\| `conga`",
                default: Some("\"drill\""),
                example: "\"letflow\"",
                doc: "Load-balancing scheme deployed at the leaves.",
            },
            KeyDoc {
                key: "rlb",
                value: "bool",
                default: Some("false"),
                example: "true",
                doc: "Wrap the scheme in RLB (predictor + Algorithm 1, \
                      default parameters).",
            },
            KeyDoc {
                key: "seed",
                value: "integer",
                default: Some("1"),
                example: "7",
                doc: "Master seed; `--seeds N` replicates by offsetting it.",
            },
            KeyDoc {
                key: "horizon_ps",
                value: "integer, ps",
                default: Some("4_000_000_000"),
                example: "800_000_000",
                doc: "Flow arrivals stop here (the run's hard stop is 25× \
                      this, extended to outlast any incast burst train).",
            },
        ],
        notes: &[],
    },
    SectionDoc {
        header: "[topology]",
        repeatable: false,
        doc: "Leaf–spine fabric dimensions; defaults mirror \
              `TopoConfig::default` (the Quick-scale fabric).",
        keys: &[
            KeyDoc {
                key: "n_leaves",
                value: "integer",
                default: Some("4"),
                example: "12",
                doc: "Leaf switches.",
            },
            KeyDoc {
                key: "n_spines",
                value: "integer",
                default: Some("4"),
                example: "12",
                doc: "Spine switches (= uplinks per leaf).",
            },
            KeyDoc {
                key: "hosts_per_leaf",
                value: "integer",
                default: Some("8"),
                example: "24",
                doc: "Hosts under each leaf.",
            },
            KeyDoc {
                key: "link_rate_bps",
                value: "integer, bits/s",
                default: Some("40_000_000_000"),
                example: "100_000_000_000",
                doc: "Leaf–spine link rate.",
            },
            KeyDoc {
                key: "host_link_rate_bps",
                value: "integer, bits/s",
                default: Some("40_000_000_000"),
                example: "25_000_000_000",
                doc: "Host NIC line rate.",
            },
            KeyDoc {
                key: "link_delay_ps",
                value: "integer, ps",
                default: Some("2_000_000"),
                example: "1_000_000",
                doc: "One-way propagation delay of every link.",
            },
        ],
        notes: &[],
    },
    SectionDoc {
        header: "[incast]",
        repeatable: false,
        doc: "Optional: layer a §4.3 fan-in burst train over the workload \
              mix (which then plays the role of background traffic). Flows \
              replay the programmatic `incast_scenario` bit-exactly for \
              the same seed.",
        keys: &[
            KeyDoc {
                key: "degree",
                value: "integer ≥ 1",
                default: Some("15"),
                example: "31",
                doc: "Responding servers per request (the fan-in degree).",
            },
            KeyDoc {
                key: "total_response_bytes",
                value: "integer, bytes",
                default: Some("4_000_000"),
                example: "1_000_000",
                doc: "Burst size across all responders for one request.",
            },
            KeyDoc {
                key: "requests",
                value: "integer",
                default: Some("8"),
                example: "16",
                doc: "Number of incast requests issued.",
            },
            KeyDoc {
                key: "request_interval_ps",
                value: "integer, ps",
                default: Some("1_000_000_000"),
                example: "500_000_000",
                doc: "Gap between successive requests.",
            },
        ],
        notes: &[],
    },
    SectionDoc {
        header: "[[workload]]",
        repeatable: true,
        doc: "Traffic mix: each entry generates Poisson arrivals of a \
              named workload CDF independently and the flows merge. One \
              Web-Search entry at 500‰ if no table is given.",
        keys: &[
            KeyDoc {
                key: "kind",
                value: "`web_server` \\| `cache_follower` \\| `web_search` \\| `data_mining`",
                default: Some("\"web_search\""),
                example: "\"data_mining\"",
                doc: "Flow-size CDF.",
            },
            KeyDoc {
                key: "load_permille",
                value: "integer, ‰",
                default: Some("500"),
                example: "300",
                doc: "Offered load as ‰ of the healthy core capacity; \
                      entries add up, so two 300‰ entries offer 60% load \
                      as a mix.",
            },
        ],
        notes: &[],
    },
    SectionDoc {
        header: "[[fault]]",
        repeatable: true,
        doc: "Fault timeline, any order — the builder sorts by time. \
              Downed links freeze their queues without dropping (lossless \
              fabric), so PFC backpressure does the signalling.",
        keys: &[
            KeyDoc {
                key: "kind",
                value: "`link_down` \\| `link_up` \\| `link_rate` \\| `spine_down` \\| \
                        `spine_up` \\| `load_scale` \\| `flap`",
                default: None,
                example: "\"link_down\"",
                doc: "What fails (or recovers); see the field requirements \
                      below.",
            },
            KeyDoc {
                key: "at_ps",
                value: "integer, ps",
                default: None,
                example: "100_000_000",
                doc: "When the fault fires (every kind).",
            },
            KeyDoc {
                key: "leaf",
                value: "integer",
                default: None,
                example: "0",
                doc: "Leaf end of the affected link.",
            },
            KeyDoc {
                key: "spine",
                value: "integer",
                default: None,
                example: "1",
                doc: "Spine end of the affected link (or the failed spine).",
            },
            KeyDoc {
                key: "rate_bps",
                value: "integer, bits/s",
                default: None,
                example: "10_000_000_000",
                doc: "New link rate for `link_rate`.",
            },
            KeyDoc {
                key: "permille",
                value: "integer, ‰",
                default: None,
                example: "500",
                doc: "Send-rate multiplier for `load_scale` (1000 = nominal).",
            },
            KeyDoc {
                key: "down_ps",
                value: "integer, ps",
                default: None,
                example: "50_000_000",
                doc: "Outage length per `flap` cycle.",
            },
            KeyDoc {
                key: "up_ps",
                value: "integer, ps",
                default: None,
                example: "50_000_000",
                doc: "Recovery length per `flap` cycle.",
            },
            KeyDoc {
                key: "cycles",
                value: "integer",
                default: None,
                example: "3",
                doc: "Down/up pairs a `flap` expands into.",
            },
        ],
        notes: &[
            "`link_down` / `link_up` need `at_ps`, `leaf`, `spine` — take \
             one leaf–spine link down / bring it back.",
            "`link_rate` needs `at_ps`, `leaf`, `spine`, `rate_bps` — \
             degrade (or restore) one link's rate mid-run.",
            "`spine_down` / `spine_up` need `at_ps`, `spine` — fail / \
             recover every link of one spine at once.",
            "`load_scale` needs `at_ps`, `permille` — scale every host's \
             send rate.",
            "`flap` needs `at_ps`, `leaf`, `spine`, `down_ps`, `up_ps`, \
             `cycles` — expands into that many down/up pairs.",
        ],
    },
    SectionDoc {
        header: "[[load]]",
        repeatable: true,
        doc: "A piecewise-constant offered-load multiplier applied to flow \
              inter-arrival gaps (a load *curve*, distinct from \
              `load_scale` which throttles in-flight serialization).",
        keys: &[
            KeyDoc {
                key: "at_ps",
                value: "integer, ps",
                default: None,
                example: "0",
                doc: "Point start time.",
            },
            KeyDoc {
                key: "permille",
                value: "integer, ‰",
                default: None,
                example: "800",
                doc: "Load multiplier from this point on (1000 = the \
                      workloads' nominal offered load).",
            },
        ],
        notes: &[],
    },
];

/// Comma-joined key list for `header`, quoted by the parser's unknown-key
/// diagnostics — the hints and the generated reference share one source.
fn known_keys(header: &'static str) -> String {
    SPEC_REFERENCE
        .iter()
        .find(|s| s.header == header)
        .unwrap_or_else(|| panic!("{header} missing from SPEC_REFERENCE"))
        .keys
        .iter()
        .map(|k| k.key)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render [`SPEC_REFERENCE`] as the markdown block `cargo xtask spec-doc`
/// splices into EXPERIMENTS.md between its `spec-doc` markers.
pub fn render_spec_reference() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(
        w,
        "Reference — every section and key the parser accepts, generated\n\
         from the parser's own key tables (`rlb_net::spec::SPEC_REFERENCE`)\n\
         by `cargo xtask spec-doc`. Edit the tables, not this block —\n\
         `cargo xtask spec-doc --check` fails CI when the two drift."
    );
    for s in SPEC_REFERENCE {
        let rep = if s.repeatable { " — repeatable" } else { "" };
        let _ = writeln!(w, "\n### `{}`{rep}\n", s.header);
        let _ = writeln!(w, "{}\n", s.doc);
        let _ = writeln!(w, "| key | value | default | meaning |");
        let _ = writeln!(w, "|---|---|---|---|");
        for k in s.keys {
            let default = match k.default {
                Some(d) => format!("`{d}`"),
                None => "required".to_string(),
            };
            let _ = writeln!(w, "| `{}` | {} | {} | {} |", k.key, k.value, default, k.doc);
        }
        if !s.notes.is_empty() {
            let _ = writeln!(w);
            for n in s.notes {
                let _ = writeln!(w, "- {n}");
            }
        }
    }
    out
}

impl ScenarioSpec {
    /// Job/display label.
    pub fn label(&self) -> String {
        if self.name.is_empty() {
            "scenario".to_string()
        } else {
            self.name.clone()
        }
    }

    /// Emit the canonical spec text: `parse(to_spec_text(s)) == s` exactly.
    pub fn to_spec_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "# rlb-net scenario spec");
        let _ = writeln!(w, "[scenario]");
        let _ = writeln!(w, "name = \"{}\"", self.name);
        let _ = writeln!(w, "scheme = \"{}\"", scheme_name(self.scheme));
        let _ = writeln!(w, "rlb = {}", self.rlb);
        let _ = writeln!(w, "seed = {}", self.seed);
        let _ = writeln!(w, "horizon_ps = {}", self.horizon.as_ps());
        let _ = writeln!(w);
        let _ = writeln!(w, "[topology]");
        let _ = writeln!(w, "n_leaves = {}", self.topo.n_leaves);
        let _ = writeln!(w, "n_spines = {}", self.topo.n_spines);
        let _ = writeln!(w, "hosts_per_leaf = {}", self.topo.hosts_per_leaf);
        let _ = writeln!(w, "link_rate_bps = {}", self.topo.link_rate_bps);
        let _ = writeln!(w, "host_link_rate_bps = {}", self.topo.host_link_rate_bps);
        let _ = writeln!(w, "link_delay_ps = {}", self.topo.link_delay_ps);
        if let Some(ic) = &self.incast {
            let _ = writeln!(w);
            let _ = writeln!(w, "[incast]");
            let _ = writeln!(w, "degree = {}", ic.degree);
            let _ = writeln!(w, "total_response_bytes = {}", ic.total_response_bytes);
            let _ = writeln!(w, "requests = {}", ic.requests);
            let _ = writeln!(w, "request_interval_ps = {}", ic.request_interval.as_ps());
        }
        for wl in &self.workloads {
            let _ = writeln!(w);
            let _ = writeln!(w, "[[workload]]");
            let _ = writeln!(w, "kind = \"{}\"", workload_name(wl.kind));
            let _ = writeln!(w, "load_permille = {}", wl.load_permille);
        }
        for f in &self.faults {
            let _ = writeln!(w);
            let _ = writeln!(w, "[[fault]]");
            match *f {
                FaultEntry::At(tf) => {
                    let (kind, fields): (&str, Vec<(&str, u64)>) = match tf.fault {
                        Fault::LinkDown { leaf, spine } => {
                            ("link_down", vec![("leaf", leaf as u64), ("spine", spine as u64)])
                        }
                        Fault::LinkUp { leaf, spine } => {
                            ("link_up", vec![("leaf", leaf as u64), ("spine", spine as u64)])
                        }
                        Fault::LinkRate {
                            leaf,
                            spine,
                            rate_bps,
                        } => (
                            "link_rate",
                            vec![
                                ("leaf", leaf as u64),
                                ("spine", spine as u64),
                                ("rate_bps", rate_bps),
                            ],
                        ),
                        Fault::SpineDown { spine } => ("spine_down", vec![("spine", spine as u64)]),
                        Fault::SpineUp { spine } => ("spine_up", vec![("spine", spine as u64)]),
                        Fault::LoadScale { permille } => {
                            ("load_scale", vec![("permille", permille as u64)])
                        }
                    };
                    let _ = writeln!(w, "kind = \"{kind}\"");
                    let _ = writeln!(w, "at_ps = {}", tf.at.as_ps());
                    for (k, v) in fields {
                        let _ = writeln!(w, "{k} = {v}");
                    }
                }
                FaultEntry::Flap {
                    at,
                    leaf,
                    spine,
                    down,
                    up,
                    cycles,
                } => {
                    let _ = writeln!(w, "kind = \"flap\"");
                    let _ = writeln!(w, "at_ps = {}", at.as_ps());
                    let _ = writeln!(w, "leaf = {leaf}");
                    let _ = writeln!(w, "spine = {spine}");
                    let _ = writeln!(w, "down_ps = {}", down.as_ps());
                    let _ = writeln!(w, "up_ps = {}", up.as_ps());
                    let _ = writeln!(w, "cycles = {cycles}");
                }
            }
        }
        for &(at, permille) in &self.load_points {
            let _ = writeln!(w);
            let _ = writeln!(w, "[[load]]");
            let _ = writeln!(w, "at_ps = {}", at.as_ps());
            let _ = writeln!(w, "permille = {permille}");
        }
        out
    }

    /// Parse spec text (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        Parser::new(text).run()
    }

    /// Build the runnable scenario: expand flaps, sort the timeline, apply
    /// the load curve to every workload component, and validate the result.
    /// Semantic errors (no span — the spec was well-formed) come back as
    /// plain strings.
    pub fn build(&self) -> Result<Scenario, String> {
        let topo = TopoConfig {
            n_leaves: self.topo.n_leaves,
            n_spines: self.topo.n_spines,
            hosts_per_leaf: self.topo.hosts_per_leaf,
            link_rate_bps: self.topo.link_rate_bps,
            host_link_rate_bps: self.topo.host_link_rate_bps,
            link_delay_ps: self.topo.link_delay_ps,
            ..TopoConfig::default()
        };
        let curve = LoadCurve::new(self.load_points.clone())?;
        let mut flows = Vec::new();
        // Incast overlay first: same substream label as `incast_scenario`,
        // so a spec-driven incast replays the programmatic one bit-exactly.
        if let Some(ic) = &self.incast {
            if topo.n_leaves < 2 {
                return Err("incast needs at least two leaves".to_string());
            }
            if ic.degree > topo.n_hosts() - topo.hosts_per_leaf {
                return Err(format!(
                    "incast degree {} exceeds the {} off-leaf hosts available",
                    ic.degree,
                    topo.n_hosts() - topo.hosts_per_leaf
                ));
            }
            let mut rng = substream(self.seed, b"incast", 0);
            flows.extend(incast::generate(
                &IncastConfig {
                    degree: ic.degree,
                    total_response_bytes: ic.total_response_bytes,
                    requests: ic.requests,
                    request_interval: ic.request_interval,
                    num_hosts: topo.n_hosts(),
                    hosts_per_leaf: topo.hosts_per_leaf,
                },
                &mut rng,
            ));
        }
        for (i, wl) in self.workloads.iter().enumerate() {
            if wl.load_permille == 0 {
                return Err(format!("workload {i} has zero load"));
            }
            let traffic = PoissonTraffic::with_load(
                wl.kind.cdf(),
                topo.n_hosts(),
                PairPolicy::InterLeaf {
                    hosts_per_leaf: topo.hosts_per_leaf,
                },
                wl.load_permille as f64 / 1000.0,
                topo.core_bits_per_sec(),
            );
            let mut rng = substream(self.seed, b"spec-workload", i as u64);
            flows.extend(traffic.generate_modulated(self.horizon, &curve, &mut rng));
        }
        flows.sort_by_key(|f| f.start);
        let mut faults = Vec::new();
        for entry in &self.faults {
            match *entry {
                FaultEntry::At(tf) => faults.push(tf),
                FaultEntry::Flap {
                    at,
                    leaf,
                    spine,
                    down,
                    up,
                    cycles,
                } => faults.extend(fault::flap(leaf, spine, at, down, up, cycles)),
            }
        }
        faults.sort_by_key(|tf| tf.at);
        // The hard stop must outlast the incast burst train too, not just
        // the Poisson arrival horizon (same 30× slack as `incast_scenario`).
        let mut hard_stop = SimTime::ZERO + self.horizon.as_duration().mul_u64(25);
        if let Some(ic) = &self.incast {
            let burst_stop = SimTime::ZERO
                + ic.request_interval
                    .mul_u64(ic.requests as u64 + 1)
                    .mul_u64(30);
            hard_stop = hard_stop.max(burst_stop);
        }
        let cfg = SimConfig {
            topo,
            scheme: self.scheme,
            rlb: self.rlb.then(RlbConfig::default),
            seed: self.seed,
            hard_stop,
            faults,
            ..SimConfig::default()
        };
        cfg.validate()?;
        Ok(Scenario::new(cfg, flows))
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A scalar value with its source span.
#[derive(Debug, Clone, Copy)]
struct Val<'a> {
    kind: ValKind<'a>,
    col: usize,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
enum ValKind<'a> {
    Int(u64),
    Bool(bool),
    Str(&'a str),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Section {
    None,
    Scenario,
    Topology,
    Incast,
    Workload,
    Fault,
    Load,
}

/// Accumulator for one `[[fault]]` table, finalized at the next header/EOF.
#[derive(Default)]
struct FaultBuild {
    header_line: usize,
    kind: Option<String>,
    at: Option<u64>,
    leaf: Option<u32>,
    spine: Option<u32>,
    rate_bps: Option<u64>,
    permille: Option<u32>,
    down: Option<u64>,
    up: Option<u64>,
    cycles: Option<u32>,
}

#[derive(Default)]
struct LoadBuild {
    header_line: usize,
    at: Option<u64>,
    permille: Option<u32>,
}

struct Parser<'a> {
    lines: Vec<&'a str>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            lines: text.lines().collect(),
        }
    }

    fn err(
        &self,
        line: usize,
        col: usize,
        len: usize,
        msg: impl Into<String>,
        help: Option<&str>,
    ) -> SpecError {
        SpecError {
            line: line + 1,
            col,
            len,
            msg: msg.into(),
            src_line: self.lines.get(line).unwrap_or(&"").to_string(),
            help: help.map(str::to_string),
        }
    }

    fn run(self) -> Result<ScenarioSpec, SpecError> {
        let mut spec = ScenarioSpec {
            workloads: Vec::new(),
            ..ScenarioSpec::default()
        };
        let mut sect = Section::None;
        let mut fault: Option<FaultBuild> = None;
        let mut load: Option<LoadBuild> = None;

        for i in 0..self.lines.len() {
            let raw = self.lines[i];
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if trimmed.starts_with('[') {
                self.finalize_tables(&mut spec, &mut fault, &mut load)?;
                sect = self.parse_header(i, raw, trimmed, &mut spec, &mut fault, &mut load)?;
                continue;
            }
            let (key, key_col, val) = self.parse_kv(i)?;
            match sect {
                Section::None => {
                    return Err(self.err(
                        i,
                        key_col,
                        key.len(),
                        format!("key `{key}` before any section header"),
                        Some("start with [scenario]"),
                    ));
                }
                Section::Scenario => self.scenario_key(i, key, key_col, val, &mut spec)?,
                Section::Topology => self.topology_key(i, key, key_col, val, &mut spec)?,
                Section::Incast => self.incast_key(i, key, key_col, val, &mut spec)?,
                Section::Workload => {
                    let wl = spec.workloads.last_mut().expect("open workload table");
                    match key {
                        "kind" => {
                            let s = self.as_str(i, val)?;
                            wl.kind = workload_from(s).ok_or_else(|| {
                                self.err(
                                    i,
                                    val.col,
                                    val.len,
                                    format!("unknown workload `{s}`"),
                                    Some(WORKLOAD_HELP),
                                )
                            })?;
                        }
                        "load_permille" => wl.load_permille = self.as_u32(i, val)?,
                        _ => {
                            return Err(self.unknown_key(
                                i,
                                key,
                                key_col,
                                "[[workload]]",
                                &known_keys("[[workload]]"),
                            ))
                        }
                    }
                }
                Section::Fault => {
                    let fb = fault.as_mut().expect("open fault table");
                    match key {
                        "kind" => fb.kind = Some(self.as_str(i, val)?.to_string()),
                        "at_ps" => fb.at = Some(self.as_u64(i, val)?),
                        "leaf" => fb.leaf = Some(self.as_u32(i, val)?),
                        "spine" => fb.spine = Some(self.as_u32(i, val)?),
                        "rate_bps" => fb.rate_bps = Some(self.as_u64(i, val)?),
                        "permille" => fb.permille = Some(self.as_u32(i, val)?),
                        "down_ps" => fb.down = Some(self.as_u64(i, val)?),
                        "up_ps" => fb.up = Some(self.as_u64(i, val)?),
                        "cycles" => fb.cycles = Some(self.as_u32(i, val)?),
                        _ => {
                            return Err(self.unknown_key(
                                i,
                                key,
                                key_col,
                                "[[fault]]",
                                &known_keys("[[fault]]"),
                            ))
                        }
                    }
                    // Validate the kind as soon as it appears, at its span.
                    if key == "kind" {
                        let k = fb.kind.as_deref().unwrap_or("");
                        if !matches!(
                            k,
                            "link_down"
                                | "link_up"
                                | "link_rate"
                                | "spine_down"
                                | "spine_up"
                                | "load_scale"
                                | "flap"
                        ) {
                            return Err(self.err(
                                i,
                                val.col,
                                val.len,
                                format!("unknown fault kind `{k}`"),
                                Some(FAULT_HELP),
                            ));
                        }
                    }
                }
                Section::Load => {
                    let lb = load.as_mut().expect("open load table");
                    match key {
                        "at_ps" => lb.at = Some(self.as_u64(i, val)?),
                        "permille" => lb.permille = Some(self.as_u32(i, val)?),
                        _ => {
                            return Err(self.unknown_key(
                                i,
                                key,
                                key_col,
                                "[[load]]",
                                &known_keys("[[load]]"),
                            ))
                        }
                    }
                }
            }
        }
        self.finalize_tables(&mut spec, &mut fault, &mut load)?;
        if spec.workloads.is_empty() {
            spec.workloads.push(WorkloadEntry::default());
        }
        Ok(spec)
    }

    fn parse_header(
        &self,
        i: usize,
        raw: &str,
        trimmed: &str,
        spec: &mut ScenarioSpec,
        fault: &mut Option<FaultBuild>,
        load: &mut Option<LoadBuild>,
    ) -> Result<Section, SpecError> {
        let col = raw.find('[').map(|c| c + 1).unwrap_or(1);
        if let Some(name) = trimmed
            .strip_prefix("[[")
            .and_then(|r| r.strip_suffix("]]"))
        {
            return match name {
                "workload" => {
                    spec.workloads.push(WorkloadEntry::default());
                    Ok(Section::Workload)
                }
                "fault" => {
                    *fault = Some(FaultBuild {
                        header_line: i,
                        ..FaultBuild::default()
                    });
                    Ok(Section::Fault)
                }
                "load" => {
                    *load = Some(LoadBuild {
                        header_line: i,
                        ..LoadBuild::default()
                    });
                    Ok(Section::Load)
                }
                _ => Err(self.err(
                    i,
                    col,
                    trimmed.len(),
                    format!("unknown table `[[{name}]]`"),
                    Some("known tables: [[workload]], [[fault]], [[load]]"),
                )),
            };
        }
        if let Some(name) = trimmed.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            return match name {
                "scenario" => Ok(Section::Scenario),
                "topology" => Ok(Section::Topology),
                "incast" => {
                    spec.incast = Some(IncastSpec::default());
                    Ok(Section::Incast)
                }
                _ => Err(self.err(
                    i,
                    col,
                    trimmed.len(),
                    format!("unknown section `[{name}]`"),
                    Some("known sections: [scenario], [topology], [incast]"),
                )),
            };
        }
        Err(self.err(
            i,
            col,
            trimmed.len(),
            "malformed section header",
            Some("expected [section] or [[table]]"),
        ))
    }

    fn scenario_key(
        &self,
        i: usize,
        key: &str,
        key_col: usize,
        val: Val<'a>,
        spec: &mut ScenarioSpec,
    ) -> Result<(), SpecError> {
        match key {
            "name" => spec.name = self.as_str(i, val)?.to_string(),
            "scheme" => {
                let s = self.as_str(i, val)?;
                spec.scheme = scheme_from(s).ok_or_else(|| {
                    self.err(
                        i,
                        val.col,
                        val.len,
                        format!("unknown scheme `{s}`"),
                        Some(SCHEME_HELP),
                    )
                })?;
            }
            "rlb" => spec.rlb = self.as_bool(i, val)?,
            "seed" => spec.seed = self.as_u64(i, val)?,
            "horizon_ps" => spec.horizon = SimTime(self.as_u64(i, val)?),
            _ => {
                return Err(self.unknown_key(
                    i,
                    key,
                    key_col,
                    "[scenario]",
                    &known_keys("[scenario]"),
                ))
            }
        }
        Ok(())
    }

    fn topology_key(
        &self,
        i: usize,
        key: &str,
        key_col: usize,
        val: Val<'a>,
        spec: &mut ScenarioSpec,
    ) -> Result<(), SpecError> {
        match key {
            "n_leaves" => spec.topo.n_leaves = self.as_u32(i, val)?,
            "n_spines" => spec.topo.n_spines = self.as_u32(i, val)?,
            "hosts_per_leaf" => spec.topo.hosts_per_leaf = self.as_u32(i, val)?,
            "link_rate_bps" => spec.topo.link_rate_bps = self.as_u64(i, val)?,
            "host_link_rate_bps" => spec.topo.host_link_rate_bps = self.as_u64(i, val)?,
            "link_delay_ps" => spec.topo.link_delay_ps = self.as_u64(i, val)?,
            _ => {
                return Err(self.unknown_key(
                    i,
                    key,
                    key_col,
                    "[topology]",
                    &known_keys("[topology]"),
                ))
            }
        }
        Ok(())
    }

    fn incast_key(
        &self,
        i: usize,
        key: &str,
        key_col: usize,
        val: Val<'a>,
        spec: &mut ScenarioSpec,
    ) -> Result<(), SpecError> {
        let ic = spec.incast.as_mut().expect("open [incast] section");
        match key {
            "degree" => {
                let d = self.as_u32(i, val)?;
                if d == 0 {
                    return Err(self.err(
                        i,
                        val.col,
                        val.len,
                        "incast degree must be at least 1",
                        None,
                    ));
                }
                ic.degree = d;
            }
            "total_response_bytes" => ic.total_response_bytes = self.as_u64(i, val)?,
            "requests" => ic.requests = self.as_u32(i, val)?,
            "request_interval_ps" => ic.request_interval = SimDuration(self.as_u64(i, val)?),
            _ => {
                return Err(self.unknown_key(
                    i,
                    key,
                    key_col,
                    "[incast]",
                    &known_keys("[incast]"),
                ))
            }
        }
        Ok(())
    }

    /// Close any open `[[fault]]` / `[[load]]` table, checking required
    /// fields (errors point at the table's header line).
    fn finalize_tables(
        &self,
        spec: &mut ScenarioSpec,
        fault: &mut Option<FaultBuild>,
        load: &mut Option<LoadBuild>,
    ) -> Result<(), SpecError> {
        if let Some(fb) = fault.take() {
            spec.faults.push(self.finish_fault(fb)?);
        }
        if let Some(lb) = load.take() {
            let missing = match (lb.at, lb.permille) {
                (None, _) => Some("at_ps"),
                (_, None) => Some("permille"),
                _ => None,
            };
            if let Some(m) = missing {
                return Err(self.table_err(lb.header_line, format!("[[load]] is missing `{m}`")));
            }
            spec.load_points
                .push((SimTime(lb.at.expect("checked")), lb.permille.expect("checked")));
        }
        Ok(())
    }

    fn finish_fault(&self, fb: FaultBuild) -> Result<FaultEntry, SpecError> {
        let h = fb.header_line;
        let kind = fb
            .kind
            .as_deref()
            .ok_or_else(|| self.table_err(h, "[[fault]] is missing `kind`"))?;
        let at = SimTime(
            fb.at
                .ok_or_else(|| self.table_err(h, format!("[[fault]] `{kind}` is missing `at_ps`")))?,
        );
        let need = |field: Option<u32>, name: &str| {
            field.ok_or_else(|| {
                self.table_err(h, format!("[[fault]] `{kind}` is missing `{name}`"))
            })
        };
        let entry = match kind {
            "link_down" => FaultEntry::At(TimedFault::new(
                at,
                Fault::LinkDown {
                    leaf: need(fb.leaf, "leaf")?,
                    spine: need(fb.spine, "spine")?,
                },
            )),
            "link_up" => FaultEntry::At(TimedFault::new(
                at,
                Fault::LinkUp {
                    leaf: need(fb.leaf, "leaf")?,
                    spine: need(fb.spine, "spine")?,
                },
            )),
            "link_rate" => FaultEntry::At(TimedFault::new(
                at,
                Fault::LinkRate {
                    leaf: need(fb.leaf, "leaf")?,
                    spine: need(fb.spine, "spine")?,
                    rate_bps: fb.rate_bps.ok_or_else(|| {
                        self.table_err(h, "[[fault]] `link_rate` is missing `rate_bps`")
                    })?,
                },
            )),
            "spine_down" => FaultEntry::At(TimedFault::new(
                at,
                Fault::SpineDown {
                    spine: need(fb.spine, "spine")?,
                },
            )),
            "spine_up" => FaultEntry::At(TimedFault::new(
                at,
                Fault::SpineUp {
                    spine: need(fb.spine, "spine")?,
                },
            )),
            "load_scale" => FaultEntry::At(TimedFault::new(
                at,
                Fault::LoadScale {
                    permille: need(fb.permille, "permille")?,
                },
            )),
            "flap" => FaultEntry::Flap {
                at,
                leaf: need(fb.leaf, "leaf")?,
                spine: need(fb.spine, "spine")?,
                down: SimDuration(fb.down.ok_or_else(|| {
                    self.table_err(h, "[[fault]] `flap` is missing `down_ps`")
                })?),
                up: SimDuration(
                    fb.up
                        .ok_or_else(|| self.table_err(h, "[[fault]] `flap` is missing `up_ps`"))?,
                ),
                cycles: need(fb.cycles, "cycles")?,
            },
            other => unreachable!("kind `{other}` validated at parse time"),
        };
        Ok(entry)
    }

    fn table_err(&self, header_line: usize, msg: impl Into<String>) -> SpecError {
        let raw = self.lines.get(header_line).copied().unwrap_or("");
        let col = raw.find('[').map(|c| c + 1).unwrap_or(1);
        self.err(header_line, col, raw.trim().len(), msg, None)
    }

    fn unknown_key(
        &self,
        i: usize,
        key: &str,
        key_col: usize,
        section: &str,
        known: &str,
    ) -> SpecError {
        self.err(
            i,
            key_col,
            key.len(),
            format!("unknown key `{key}` in {section}"),
            Some(&format!("known keys: {known}")),
        )
    }

    /// Split `key = value`, returning the key, its 1-based column, and the
    /// parsed scalar value with its span.
    fn parse_kv(&self, i: usize) -> Result<(&'a str, usize, Val<'a>), SpecError> {
        let line: &'a str = self.lines[i];
        let eq = line.find('=').ok_or_else(|| {
            let col = line.len() - line.trim_start().len() + 1;
            self.err(
                i,
                col,
                line.trim().len(),
                "expected `key = value`",
                None,
            )
        })?;
        let key_part = &line[..eq];
        let key = key_part.trim();
        if key.is_empty() {
            return Err(self.err(i, 1, eq.max(1), "missing key before `=`", None));
        }
        let key_col = key_part.len() - key_part.trim_start().len() + 1;
        let val_off = eq + 1;
        let rest = &line[val_off..];
        let lead = rest.len() - rest.trim_start().len();
        let vcol = val_off + lead + 1; // 1-based column of the value
        let tok = rest.trim();
        if tok.is_empty() {
            return Err(self.err(i, vcol.saturating_sub(1), 1, format!("missing value for `{key}`"), None));
        }
        let kind = if let Some(inner) = tok.strip_prefix('"') {
            let Some(body) = inner.strip_suffix('"').filter(|_| tok.len() >= 2) else {
                return Err(self.err(i, vcol, tok.len(), "unterminated string", None));
            };
            if body.contains('\\') || body.contains('"') {
                return Err(self.err(
                    i,
                    vcol,
                    tok.len(),
                    "escape sequences are not supported in spec strings",
                    None,
                ));
            }
            ValKind::Str(body)
        } else if tok == "true" {
            ValKind::Bool(true)
        } else if tok == "false" {
            ValKind::Bool(false)
        } else if tok.bytes().all(|b| b.is_ascii_digit() || b == b'_') {
            let digits: String = tok.chars().filter(|c| *c != '_').collect();
            match digits.parse::<u64>() {
                Ok(n) => ValKind::Int(n),
                Err(_) => {
                    return Err(self.err(
                        i,
                        vcol,
                        tok.len(),
                        format!("integer `{tok}` does not fit in 64 bits"),
                        None,
                    ))
                }
            }
        } else {
            return Err(self.err(
                i,
                vcol,
                tok.len(),
                format!("cannot parse value `{tok}`"),
                Some("expected an integer, true/false, or a \"quoted string\""),
            ));
        };
        Ok((
            key,
            key_col,
            Val {
                kind,
                col: vcol,
                len: tok.len(),
            },
        ))
    }

    fn as_u64(&self, i: usize, v: Val<'a>) -> Result<u64, SpecError> {
        match v.kind {
            ValKind::Int(n) => Ok(n),
            _ => Err(self.err(i, v.col, v.len, "expected an integer", None)),
        }
    }

    fn as_u32(&self, i: usize, v: Val<'a>) -> Result<u32, SpecError> {
        let n = self.as_u64(i, v)?;
        u32::try_from(n).map_err(|_| {
            self.err(i, v.col, v.len, format!("{n} does not fit in 32 bits"), None)
        })
    }

    fn as_bool(&self, i: usize, v: Val<'a>) -> Result<bool, SpecError> {
        match v.kind {
            ValKind::Bool(b) => Ok(b),
            _ => Err(self.err(i, v.col, v.len, "expected true or false", None)),
        }
    }

    fn as_str(&self, i: usize, v: Val<'a>) -> Result<&'a str, SpecError> {
        match v.kind {
            ValKind::Str(s) => Ok(s),
            _ => Err(self.err(i, v.col, v.len, "expected a \"quoted string\"", None)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The grammar reference is the parser: every documented key must be
    /// accepted by its section (a rejected key would come back as an
    /// `unknown key` diagnostic), and vice versa the unknown-key hints are
    /// generated from the same tables (pinned by the snapshot tests).
    mod reference {
        use super::super::*;

        #[test]
        fn every_documented_key_parses_in_its_section() {
            for s in SPEC_REFERENCE {
                for k in s.keys {
                    // Tables need their section header; `[[fault]]`/
                    // `[[load]]` specs may fail *finalization* (missing
                    // sibling fields) but never key recognition.
                    let text = format!("{}\n{} = {}\n", s.header, k.key, k.example);
                    let text = if s.header == "[scenario]" {
                        text
                    } else {
                        format!("[scenario]\nseed = 1\n\n{text}")
                    };
                    match ScenarioSpec::parse(&text) {
                        Ok(_) => {}
                        Err(e) => assert!(
                            !e.msg.contains("unknown key"),
                            "{} key `{}` is documented but rejected: {}",
                            s.header,
                            k.key,
                            e.msg
                        ),
                    }
                }
            }
        }

        #[test]
        fn documented_defaults_match_the_canonical_writer() {
            // The canonical text of a default spec (with the optional
            // incast section opened) must contain every documented
            // default verbatim — so a changed `Default` impl fails here
            // until the reference table is updated.
            let spec = ScenarioSpec {
                incast: Some(IncastSpec::default()),
                ..ScenarioSpec::default()
            };
            let text = spec.to_spec_text();
            for s in SPEC_REFERENCE {
                for k in s.keys {
                    if let Some(d) = k.default {
                        // `_` separators are for readability in integers
                        // only; string defaults keep theirs.
                        let canon = if d.starts_with('"') {
                            d.to_string()
                        } else {
                            d.replace('_', "")
                        };
                        let line = format!("{} = {canon}", k.key);
                        assert!(
                            text.contains(&line),
                            "{} documents `{}` defaulting to `{}`, but the \
                             canonical default spec has no line `{line}`",
                            s.header,
                            k.key,
                            d
                        );
                    }
                }
            }
        }

        #[test]
        fn fault_notes_cover_every_kind() {
            let notes = SPEC_REFERENCE
                .iter()
                .find(|s| s.header == "[[fault]]")
                .expect("fault section documented")
                .notes
                .join("\n");
            for kind in [
                "link_down", "link_up", "link_rate", "spine_down", "spine_up",
                "load_scale", "flap",
            ] {
                assert!(
                    notes.contains(kind),
                    "fault kind `{kind}` missing from the [[fault]] notes"
                );
            }
        }

        #[test]
        fn rendered_reference_names_every_section_and_key() {
            let md = render_spec_reference();
            for s in SPEC_REFERENCE {
                assert!(md.contains(s.header), "{} missing", s.header);
                for k in s.keys {
                    assert!(
                        md.contains(&format!("| `{}` |", k.key)),
                        "{} `{}` missing a table row",
                        s.header,
                        k.key
                    );
                }
            }
        }
    }

    const EXAMPLE: &str = r#"
# A failure-sweep example.
[scenario]
name = "two-link-outage"
scheme = "drill"
rlb = true
seed = 7
horizon_ps = 2_000_000_000

[topology]
n_leaves = 4
n_spines = 4
hosts_per_leaf = 8

[[workload]]
kind = "web_search"
load_permille = 500

[[fault]]
kind = "link_down"
at_ps = 200_000_000
leaf = 0
spine = 1

[[fault]]
kind = "link_up"
at_ps = 900_000_000
leaf = 0
spine = 1

[[fault]]
kind = "flap"
at_ps = 300_000_000
leaf = 2
spine = 3
down_ps = 50_000_000
up_ps = 50_000_000
cycles = 2

[[load]]
at_ps = 1_000_000_000
permille = 1500
"#;

    #[test]
    fn parses_the_example() {
        let s = ScenarioSpec::parse(EXAMPLE).expect("example parses");
        assert_eq!(s.name, "two-link-outage");
        assert_eq!(s.scheme, Scheme::Drill);
        assert!(s.rlb);
        assert_eq!(s.seed, 7);
        assert_eq!(s.horizon, SimTime::from_ms(2));
        assert_eq!(s.topo.n_leaves, 4);
        assert_eq!(s.workloads.len(), 1);
        assert_eq!(s.workloads[0].load_permille, 500);
        assert_eq!(s.faults.len(), 3);
        assert_eq!(
            s.faults[0],
            FaultEntry::At(TimedFault::new(
                SimTime::from_us(200),
                Fault::LinkDown { leaf: 0, spine: 1 }
            ))
        );
        assert!(matches!(s.faults[2], FaultEntry::Flap { cycles: 2, .. }));
        assert_eq!(s.load_points, vec![(SimTime::from_ms(1), 1500)]);
    }

    #[test]
    fn canonical_text_round_trips() {
        let s = ScenarioSpec::parse(EXAMPLE).unwrap();
        let text = s.to_spec_text();
        let back = ScenarioSpec::parse(&text).expect("canonical text parses");
        assert_eq!(s, back);
        // And the canonical form is a fixed point.
        assert_eq!(text, back.to_spec_text());
    }

    #[test]
    fn builds_a_runnable_scenario() {
        let s = ScenarioSpec::parse(EXAMPLE).unwrap();
        let sc = s.build().expect("builds");
        assert!(sc.cfg.rlb.is_some());
        // 1 down + 1 up + flap(2 cycles → 4 entries) = 6, sorted.
        assert_eq!(sc.cfg.faults.len(), 6);
        assert!(sc.cfg.faults.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!sc.flows.is_empty());
        sc.cfg.validate().expect("built config validates");
    }

    #[test]
    fn default_spec_builds_and_round_trips() {
        let s = ScenarioSpec::default();
        let back = ScenarioSpec::parse(&s.to_spec_text()).unwrap();
        assert_eq!(s, back);
        assert!(s.build().is_ok());
    }

    #[test]
    fn out_of_range_fault_is_a_build_error() {
        let mut s = ScenarioSpec::default();
        s.faults.push(FaultEntry::At(TimedFault::new(
            SimTime::ZERO,
            Fault::LinkDown { leaf: 99, spine: 0 },
        )));
        let e = s.build().unwrap_err();
        assert!(e.contains("leaf 99 out of range"), "{e}");
    }

    const INCAST_EXAMPLE: &str = r#"
[scenario]
name = "incast-storm"
scheme = "letflow"
rlb = true
seed = 3
horizon_ps = 8_000_000_000

[topology]
n_leaves = 4
n_spines = 4
hosts_per_leaf = 8

[incast]
degree = 15
total_response_bytes = 4_000_000
requests = 8
request_interval_ps = 1_000_000_000

[[workload]]
kind = "web_search"
load_permille = 200
"#;

    #[test]
    fn parses_the_incast_example() {
        let s = ScenarioSpec::parse(INCAST_EXAMPLE).expect("incast example parses");
        let ic = s.incast.expect("incast section present");
        assert_eq!(ic.degree, 15);
        assert_eq!(ic.total_response_bytes, 4_000_000);
        assert_eq!(ic.requests, 8);
        assert_eq!(ic.request_interval, SimDuration::from_ms(1));
        // Round-trips through the canonical writer.
        let back = ScenarioSpec::parse(&s.to_spec_text()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn incast_spec_matches_programmatic_scenario() {
        use crate::scenario::{incast_scenario, IncastScenarioConfig};
        let s = ScenarioSpec::parse(INCAST_EXAMPLE).unwrap();
        let sc = s.build().expect("builds");
        // The overlay's flows must replay `incast_scenario`'s bit-exactly:
        // same substream label, same IncastConfig.
        let reference = incast_scenario(
            &IncastScenarioConfig {
                topo: TopoConfig {
                    n_leaves: 4,
                    n_spines: 4,
                    hosts_per_leaf: 8,
                    ..TopoConfig::default()
                },
                background_load: 0.0,
                seed: 3,
                ..IncastScenarioConfig::default()
            },
            Scheme::LetFlow,
            Some(RlbConfig::default()),
        );
        for rf in &reference.flows {
            assert!(
                sc.flows.iter().any(|f| f.src_host == rf.src_host
                    && f.dst_host == rf.dst_host
                    && f.size_bytes == rf.size_bytes
                    && f.start == rf.start),
                "reference incast flow missing from spec build: {rf:?}"
            );
        }
        // Background web_search traffic rides on top.
        assert!(sc.flows.len() > reference.flows.len());
        // Hard stop covers the whole 8-request burst train.
        assert!(sc.cfg.hard_stop >= SimTime::ZERO + SimDuration::from_ms(9).mul_u64(30));
    }

    #[test]
    fn incast_degree_out_of_range_is_a_build_error() {
        let mut s = ScenarioSpec::parse(INCAST_EXAMPLE).unwrap();
        // 4 leaves × 8 hosts = 32 hosts, 24 off-leaf candidates.
        s.incast.as_mut().unwrap().degree = 25;
        let e = s.build().unwrap_err();
        assert!(e.contains("exceeds the 24 off-leaf hosts"), "{e}");
    }

    // --- snapshot tests: malformed specs must render exactly these frames ---

    fn render_err(text: &str) -> String {
        ScenarioSpec::parse(text).expect_err("must fail").to_string()
    }

    #[test]
    fn snapshot_unknown_fault_kind() {
        let text = "[scenario]\nseed = 1\n\n[[fault]]\nkind = \"link_donw\"\nat_ps = 5\nleaf = 0\nspine = 0\n";
        assert_eq!(
            render_err(text),
            "error: unknown fault kind `link_donw`\n \
             --> scenario spec, line 5\n  \
             |\n\
             5 | kind = \"link_donw\"\n  \
             |        ^^^^^^^^^^^ known fault kinds: link_down, link_up, link_rate, \
             spine_down, spine_up, load_scale, flap"
        );
    }

    #[test]
    fn snapshot_unknown_key() {
        let text = "[scenario]\nsede = 1\n";
        assert_eq!(
            render_err(text),
            "error: unknown key `sede` in [scenario]\n \
             --> scenario spec, line 2\n  \
             |\n\
             2 | sede = 1\n  \
             | ^^^^ known keys: name, scheme, rlb, seed, horizon_ps"
        );
    }

    #[test]
    fn snapshot_missing_required_field_points_at_header() {
        let text = "[scenario]\nseed = 1\n\n[[fault]]\nkind = \"link_down\"\nat_ps = 5\nleaf = 0\n";
        assert_eq!(
            render_err(text),
            "error: [[fault]] `link_down` is missing `spine`\n \
             --> scenario spec, line 4\n  \
             |\n\
             4 | [[fault]]\n  \
             | ^^^^^^^^^"
        );
    }

    #[test]
    fn snapshot_bad_value() {
        let text = "[scenario]\nseed = maybe\n";
        assert_eq!(
            render_err(text),
            "error: cannot parse value `maybe`\n \
             --> scenario spec, line 2\n  \
             |\n\
             2 | seed = maybe\n  \
             |        ^^^^^ expected an integer, true/false, or a \"quoted string\""
        );
    }

    #[test]
    fn snapshot_unknown_section() {
        let text = "[scenari]\n";
        assert_eq!(
            render_err(text),
            "error: unknown section `[scenari]`\n \
             --> scenario spec, line 1\n  \
             |\n\
             1 | [scenari]\n  \
             | ^^^^^^^^^ known sections: [scenario], [topology], [incast]"
        );
    }

    #[test]
    fn snapshot_zero_incast_degree() {
        let text = "[scenario]\nseed = 1\n\n[incast]\ndegree = 0\n";
        assert_eq!(
            render_err(text),
            "error: incast degree must be at least 1\n \
             --> scenario spec, line 5\n  \
             |\n\
             5 | degree = 0\n  \
             |          ^"
        );
    }

    #[test]
    fn snapshot_unknown_incast_key() {
        let text = "[scenario]\nseed = 1\n\n[incast]\nfanin = 4\n";
        assert_eq!(
            render_err(text),
            "error: unknown key `fanin` in [incast]\n \
             --> scenario spec, line 5\n  \
             |\n\
             5 | fanin = 4\n  \
             | ^^^^^ known keys: degree, total_response_bytes, requests, \
             request_interval_ps"
        );
    }

    #[test]
    fn snapshot_key_outside_section() {
        let text = "seed = 1\n";
        assert_eq!(
            render_err(text),
            "error: key `seed` before any section header\n \
             --> scenario spec, line 1\n  \
             |\n\
             1 | seed = 1\n  \
             | ^^^^ start with [scenario]"
        );
    }

    mod roundtrip {
        use super::*;
        use proptest::prelude::*;

        fn arb_name() -> BoxedStrategy<String> {
            prop_oneof![
                Just(String::new()),
                Just("outage".to_string()),
                Just("fail-sweep-x4".to_string()),
                Just("ramp_2".to_string()),
            ]
            .boxed()
        }

        fn arb_scheme() -> BoxedStrategy<Scheme> {
            prop_oneof![
                Just(Scheme::Ecmp),
                Just(Scheme::Presto),
                Just(Scheme::LetFlow),
                Just(Scheme::Hermes),
                Just(Scheme::Drill),
                Just(Scheme::Conga),
            ]
            .boxed()
        }

        fn arb_workload() -> BoxedStrategy<WorkloadEntry> {
            (0usize..4, 1u32..3000)
                .prop_map(|(i, load_permille)| WorkloadEntry {
                    kind: Workload::ALL[i],
                    load_permille,
                })
                .boxed()
        }

        fn arb_fault() -> BoxedStrategy<FaultEntry> {
            let at = 0u64..10_000_000_000_000u64;
            prop_oneof![
                (at.clone(), 0u32..16, 0u32..16).prop_map(|(t, leaf, spine)| FaultEntry::At(
                    TimedFault::new(SimTime(t), Fault::LinkDown { leaf, spine })
                )),
                (at.clone(), 0u32..16, 0u32..16).prop_map(|(t, leaf, spine)| FaultEntry::At(
                    TimedFault::new(SimTime(t), Fault::LinkUp { leaf, spine })
                )),
                (at.clone(), 0u32..16, 0u32..16, 1u64..100_000_000_000).prop_map(
                    |(t, leaf, spine, rate_bps)| FaultEntry::At(TimedFault::new(
                        SimTime(t),
                        Fault::LinkRate {
                            leaf,
                            spine,
                            rate_bps
                        }
                    ))
                ),
                (at.clone(), 0u32..16).prop_map(|(t, spine)| FaultEntry::At(TimedFault::new(
                    SimTime(t),
                    Fault::SpineDown { spine }
                ))),
                (at.clone(), 0u32..16).prop_map(|(t, spine)| FaultEntry::At(TimedFault::new(
                    SimTime(t),
                    Fault::SpineUp { spine }
                ))),
                (at.clone(), 1u32..5000).prop_map(|(t, permille)| FaultEntry::At(
                    TimedFault::new(SimTime(t), Fault::LoadScale { permille })
                )),
                (at, (0u32..16, 0u32..16), (1u64..1_000_000_000, 1u64..1_000_000_000), 1u32..6)
                    .prop_map(|(t, (leaf, spine), (down, up), cycles)| FaultEntry::Flap {
                        at: SimTime(t),
                        leaf,
                        spine,
                        down: SimDuration(down),
                        up: SimDuration(up),
                        cycles,
                    }),
            ]
            .boxed()
        }

        fn arb_incast() -> BoxedStrategy<Option<IncastSpec>> {
            prop_oneof![
                Just(None),
                (1u32..64, 1u64..100_000_000, 1u32..32, 1u64..10_000_000_000u64).prop_map(
                    |(degree, total_response_bytes, requests, interval)| Some(IncastSpec {
                        degree,
                        total_response_bytes,
                        requests,
                        request_interval: SimDuration(interval),
                    })
                ),
            ]
            .boxed()
        }

        fn arb_spec() -> BoxedStrategy<ScenarioSpec> {
            (
                (arb_name(), arb_scheme(), any::<bool>(), any::<u64>(), 1u64..10_000_000_000_000),
                (2u32..8, 2u32..8, 1u32..16),
                arb_incast(),
                proptest::collection::vec(arb_workload(), 0..3),
                proptest::collection::vec(arb_fault(), 0..5),
                proptest::collection::vec((0u64..10_000_000_000_000u64, 1u32..4000), 0..4),
            )
                .prop_map(
                    |((name, scheme, rlb, seed, horizon), (nl, ns, hpl), incast, mut workloads, faults, loads)| {
                        if workloads.is_empty() {
                            // parse() restores the default mix for empty
                            // spec files, so canonical equality needs ≥1.
                            workloads.push(WorkloadEntry::default());
                        }
                        ScenarioSpec {
                            name,
                            scheme,
                            rlb,
                            seed,
                            horizon: SimTime(horizon),
                            topo: TopoSpec {
                                n_leaves: nl,
                                n_spines: ns,
                                hosts_per_leaf: hpl,
                                ..TopoSpec::default()
                            },
                            incast,
                            workloads,
                            faults,
                            load_points: loads
                                .into_iter()
                                .map(|(t, p)| (SimTime(t), p))
                                .collect(),
                        }
                    },
                )
                .boxed()
        }

        proptest! {
            /// Spec → canonical text → spec is the identity, for arbitrary
            /// well-formed specs (including unsorted fault timelines and
            /// out-of-range topology indices — syntax round-trips even when
            /// `build()` would reject the semantics).
            #[test]
            fn arbitrary_specs_round_trip(spec in arb_spec()) {
                let text = spec.to_spec_text();
                let back = ScenarioSpec::parse(&text)
                    .expect("canonical text must re-parse");
                prop_assert_eq!(&spec, &back);
                prop_assert_eq!(text, back.to_spec_text());
            }
        }
    }

    #[test]
    fn error_spans_point_at_the_token() {
        let e = ScenarioSpec::parse("[scenario]\nscheme = \"dril\"\n").unwrap_err();
        assert_eq!((e.line, e.col, e.len), (2, 10, 6));
        let e = ScenarioSpec::parse("[scenario]\nrlb = 3\n").unwrap_err();
        assert_eq!((e.line, e.col, e.len), (2, 7, 1));
        assert_eq!(e.msg, "expected true or false");
    }
}
