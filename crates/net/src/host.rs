//! Host / NIC model: per-flow sender+receiver transport state and the NIC
//! egress arbitration bookkeeping.
//!
//! The NIC uses a *pull* model, like hardware RoCE NICs: whenever the
//! egress link is free (and not PFC-paused by the leaf), it round-robins
//! over the host's active flows and transmits one packet from the first
//! flow whose DCQCN pacing clock allows. If no flow is eligible yet, the
//! simulator schedules a wake-up at the earliest pacing deadline.

use crate::topology::Node;
use rlb_transport::{
    CnpGenerator, DcqcnConfig, DcqcnRate, GbnReceiver, GbnSender, IrnReceiver, IrnSender,
};
use rlb_workloads::FlowSpec;
use serde::Serialize;

/// Which reliable-delivery scheme the NICs run (see `rlb-transport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransportMode {
    /// RoCEv2 go-back-N — the paper's lossless-DCN baseline (§2.1.2).
    GoBackN,
    /// IRN-style selective repeat with a BDP window — the abandon-PFC
    /// alternative from the paper's related work (§5).
    SelectiveRepeat,
}

/// Per-flow reliability state, one variant per transport mode.
pub enum Reliability {
    Gbn { tx: GbnSender, rx: GbnReceiver },
    Irn { tx: IrnSender, rx: IrnReceiver },
}

impl Reliability {
    pub fn new(mode: TransportMode, total_packets: u32, irn_window: u32) -> Reliability {
        match mode {
            TransportMode::GoBackN => Reliability::Gbn {
                tx: GbnSender::new(total_packets),
                rx: GbnReceiver::new(total_packets),
            },
            TransportMode::SelectiveRepeat => Reliability::Irn {
                tx: IrnSender::new(total_packets, irn_window.max(1)),
                rx: IrnReceiver::new(total_packets),
            },
        }
    }

    pub fn peek_next(&self) -> Option<u32> {
        match self {
            Reliability::Gbn { tx, .. } => tx.peek_next(),
            Reliability::Irn { tx, .. } => tx.peek_next(),
        }
    }

    pub fn take_next(&mut self) -> Option<u32> {
        match self {
            Reliability::Gbn { tx, .. } => tx.take_next(),
            Reliability::Irn { tx, .. } => tx.take_next(),
        }
    }

    pub fn sender_complete(&self) -> bool {
        match self {
            Reliability::Gbn { tx, .. } => tx.is_complete(),
            Reliability::Irn { tx, .. } => tx.is_complete(),
        }
    }

    /// Cumulative progress marker (for RTO progress detection).
    pub fn progress_mark(&self) -> u32 {
        match self {
            Reliability::Gbn { tx, .. } => tx.snd_una(),
            Reliability::Irn { tx, .. } => tx.cumulative(),
        }
    }

    pub fn has_outstanding(&self) -> bool {
        match self {
            Reliability::Gbn { tx, .. } => tx.in_flight() > 0,
            Reliability::Irn { tx, .. } => tx.in_flight() > 0,
        }
    }

    pub fn on_timeout(&mut self) -> bool {
        match self {
            Reliability::Gbn { tx, .. } => tx.on_timeout(),
            Reliability::Irn { tx, .. } => tx.on_timeout(),
        }
    }

    pub fn packets_sent(&self) -> u64 {
        match self {
            Reliability::Gbn { tx, .. } => tx.packets_sent,
            Reliability::Irn { tx, .. } => tx.packets_sent,
        }
    }

    /// NAKs (go-back-N) / NACK-flagged ACKs (IRN) seen by the sender.
    pub fn naks(&self) -> u64 {
        match self {
            Reliability::Gbn { tx, .. } => tx.naks_received,
            Reliability::Irn { tx, .. } => tx.nacks,
        }
    }

    pub fn ooo_packets(&self) -> u64 {
        match self {
            Reliability::Gbn { rx, .. } => rx.ooo_packets,
            Reliability::Irn { rx, .. } => rx.ooo_arrivals,
        }
    }

    pub fn max_ood(&self) -> u32 {
        match self {
            Reliability::Gbn { rx, .. } => rx.max_ood,
            Reliability::Irn { rx, .. } => rx.max_ood,
        }
    }
}

/// Everything the simulation tracks for one flow.
pub struct FlowState {
    pub spec: FlowSpec,
    pub total_packets: u32,
    pub reliability: Reliability,
    pub dcqcn: DcqcnRate,
    pub cnp_gen: CnpGenerator,
    /// Pacing: earliest time the sender may emit its next packet.
    pub next_eligible_ps: u64,
    pub started: bool,
    pub finish_ps: Option<u64>,
    /// Progress marker observed at the previous RTO check.
    pub last_una_at_rto: u32,
    /// RLB recirculations suffered by this flow's packets.
    pub recirculations: u64,
}

impl FlowState {
    pub fn new(spec: FlowSpec, mtu_bytes: u32, dcqcn_cfg: DcqcnConfig) -> FlowState {
        FlowState::with_mode(spec, mtu_bytes, dcqcn_cfg, TransportMode::GoBackN, 0)
    }

    pub fn with_mode(
        spec: FlowSpec,
        mtu_bytes: u32,
        dcqcn_cfg: DcqcnConfig,
        mode: TransportMode,
        irn_window: u32,
    ) -> FlowState {
        let total_packets = spec.size_bytes.div_ceil(mtu_bytes as u64).max(1) as u32;
        FlowState {
            spec,
            total_packets,
            reliability: Reliability::new(mode, total_packets, irn_window),
            dcqcn: DcqcnRate::new(dcqcn_cfg),
            cnp_gen: CnpGenerator::default(),
            next_eligible_ps: 0,
            started: false,
            finish_ps: None,
            last_una_at_rto: 0,
            recirculations: 0,
        }
    }

    pub fn is_complete(&self) -> bool {
        self.finish_ps.is_some()
    }

    /// Payload bytes of packet `psn` (the last packet may be short).
    pub fn payload_bytes(&self, psn: u32, mtu_bytes: u32) -> u32 {
        debug_assert!(psn < self.total_packets);
        if psn + 1 == self.total_packets {
            let rem = self.spec.size_bytes - (self.total_packets as u64 - 1) * mtu_bytes as u64;
            rem.max(1) as u32
        } else {
            mtu_bytes
        }
    }

    /// Ready to transmit at `now`: pacing allows and the sender has a PSN.
    pub fn eligible(&self, now_ps: u64) -> bool {
        self.started
            && !self.is_complete()
            && self.next_eligible_ps <= now_ps
            && self.reliability.peek_next().is_some()
    }

    /// Has queued data but its pacing clock hasn't expired yet.
    pub fn pending(&self) -> bool {
        self.started && !self.is_complete() && self.reliability.peek_next().is_some()
    }
}

/// NIC-level state for one host.
pub struct Host {
    pub node: Node,
    /// Flows whose sender lives on this host (indices into the flow table).
    pub tx_flows: Vec<u32>,
    pub rr_cursor: usize,
    /// The single egress link toward the leaf.
    pub busy: bool,
    /// PFC-paused by the leaf's ingress MMU.
    pub paused: bool,
    pub paused_since_ps: u64,
    /// Earliest outstanding HostWake event time (dedup).
    pub wake_at: Option<u64>,
}

impl Host {
    pub fn new(host_id: u32) -> Host {
        Host {
            node: Node::Host(host_id),
            tx_flows: Vec::new(),
            rr_cursor: 0,
            busy: false,
            paused: false,
            paused_since_ps: 0,
            wake_at: None,
        }
    }

    /// Round-robin pick of an eligible flow; advances the cursor past the
    /// chosen flow so heavy flows can't starve others.
    pub fn pick_eligible(&mut self, flows: &[FlowState], now_ps: u64) -> Option<u32> {
        let n = self.tx_flows.len();
        for k in 0..n {
            let i = (self.rr_cursor + k) % n;
            let f = self.tx_flows[i];
            if flows[f as usize].eligible(now_ps) {
                self.rr_cursor = (i + 1) % n;
                return Some(f);
            }
        }
        None
    }

    /// Earliest pacing deadline among flows that have data but aren't
    /// eligible yet — when the NIC should wake up.
    pub fn earliest_deadline(&self, flows: &[FlowState]) -> Option<u64> {
        self.tx_flows
            .iter()
            .filter(|&&f| flows[f as usize].pending())
            .map(|&f| flows[f as usize].next_eligible_ps)
            .min()
    }

    /// Drop completed flows from the NIC's service list.
    pub fn gc_flows(&mut self, flows: &[FlowState]) {
        self.tx_flows.retain(|&f| !flows[f as usize].is_complete());
        if self.rr_cursor >= self.tx_flows.len() {
            self.rr_cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlb_engine::SimTime;

    fn flow(size: u64) -> FlowState {
        let mut f = FlowState::new(
            FlowSpec::new(SimTime::ZERO, 0, 9, size),
            1000,
            DcqcnConfig::default(),
        );
        f.started = true;
        f
    }

    #[test]
    fn packetization_rounds_up_and_shortens_tail() {
        let f = flow(2_500);
        assert_eq!(f.total_packets, 3);
        assert_eq!(f.payload_bytes(0, 1000), 1000);
        assert_eq!(f.payload_bytes(2, 1000), 500);
        let g = flow(1);
        assert_eq!(g.total_packets, 1);
        assert_eq!(g.payload_bytes(0, 1000), 1);
        let h = flow(3_000);
        assert_eq!(h.payload_bytes(2, 1000), 1000);
    }

    #[test]
    fn eligibility_gates_on_pacing_and_data() {
        let mut f = flow(2_000);
        assert!(f.eligible(0));
        f.next_eligible_ps = 500;
        assert!(!f.eligible(499));
        assert!(f.eligible(500));
        // Exhaust the send window.
        f.reliability.take_next();
        f.reliability.take_next();
        assert!(!f.eligible(1_000), "nothing left to send");
        assert!(!f.pending());
    }

    #[test]
    fn round_robin_is_fair_and_skips_ineligible() {
        let mut flows = vec![flow(10_000), flow(10_000), flow(10_000)];
        flows[1].next_eligible_ps = 1_000_000; // not eligible now
        let mut h = Host::new(0);
        h.tx_flows = vec![0, 1, 2];
        assert_eq!(h.pick_eligible(&flows, 0), Some(0));
        assert_eq!(h.pick_eligible(&flows, 0), Some(2));
        assert_eq!(h.pick_eligible(&flows, 0), Some(0));
        // Once flow 1 becomes eligible it gets service too.
        assert_eq!(h.pick_eligible(&flows, 2_000_000), Some(1));
    }

    #[test]
    fn earliest_deadline_for_wakeup() {
        let mut flows = vec![flow(10_000), flow(10_000)];
        flows[0].next_eligible_ps = 700;
        flows[1].next_eligible_ps = 300;
        let mut h = Host::new(0);
        h.tx_flows = vec![0, 1];
        assert_eq!(h.earliest_deadline(&flows), Some(300));
        // Completed flows are ignored.
        flows[1].finish_ps = Some(1);
        assert_eq!(h.earliest_deadline(&flows), Some(700));
        h.gc_flows(&flows);
        assert_eq!(h.tx_flows, vec![0]);
    }

    #[test]
    fn pick_on_empty_flow_list() {
        let mut h = Host::new(3);
        assert_eq!(h.pick_eligible(&[], 0), None);
        assert_eq!(h.earliest_deadline(&[]), None);
    }
}
