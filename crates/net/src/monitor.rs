//! Fabric time-series monitoring: periodic snapshots of buffer occupancy,
//! pause state and flow progress, for deep-dive plots and debugging
//! (queue-evolution figures, pause-storm timelines).

use rlb_engine::SimDuration;
use serde::Serialize;

/// Enables periodic sampling during a run.
#[derive(Debug, Clone, Serialize)]
pub struct MonitorConfig {
    /// Sampling period. Each tick costs one event plus a scan over the
    /// switches, so keep it ≥ a few µs for long runs.
    pub interval: SimDuration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: SimDuration::from_us(20),
        }
    }
}

/// One fabric snapshot.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FabricSample {
    pub t_ps: u64,
    /// Total bytes in all switch shared buffers.
    pub buffered_bytes: u64,
    /// Egress ports currently paused by PFC (switches only).
    pub paused_ports: u32,
    /// Hosts whose NIC is currently paused by the leaf.
    pub paused_hosts: u32,
    /// Flows started but not yet completed.
    pub active_flows: u32,
    /// Deepest single egress data queue in the fabric.
    pub max_egress_queue_bytes: u64,
}

/// The collected series with a few convenience reductions.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FabricTimeSeries {
    pub samples: Vec<FabricSample>,
}

impl FabricTimeSeries {
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Peak total buffer occupancy over the run.
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.buffered_bytes).max().unwrap_or(0)
    }

    /// Peak single-queue depth.
    pub fn peak_queue_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.max_egress_queue_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Fraction of samples with at least one paused port.
    pub fn paused_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.paused_ports > 0).count() as f64
            / self.samples.len() as f64
    }

    /// Render as whitespace-separated columns (gnuplot friendly).
    pub fn render(&self) -> String {
        let mut out =
            String::from("# t_us buffered_bytes paused_ports paused_hosts active_flows max_queue\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3} {} {} {} {} {}\n",
                s.t_ps as f64 / 1e6,
                s.buffered_bytes,
                s.paused_ports,
                s.paused_hosts,
                s.active_flows,
                s.max_egress_queue_bytes
            ));
        }
        out
    }
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample(t: u64, buf: u64, paused: u32, q: u64) -> FabricSample {
        FabricSample {
            t_ps: t,
            buffered_bytes: buf,
            paused_ports: paused,
            paused_hosts: 0,
            active_flows: 1,
            max_egress_queue_bytes: q,
        }
    }

    #[test]
    fn reductions() {
        let ts = FabricTimeSeries {
            samples: vec![
                sample(0, 100, 0, 50),
                sample(1, 900, 2, 800),
                sample(2, 300, 0, 100),
                sample(3, 500, 1, 200),
            ],
        };
        assert_eq!(ts.peak_buffered_bytes(), 900);
        assert_eq!(ts.peak_queue_bytes(), 800);
        assert!((ts.paused_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn empty_series() {
        let ts = FabricTimeSeries::default();
        assert!(ts.is_empty());
        assert_eq!(ts.peak_buffered_bytes(), 0);
        assert_eq!(ts.paused_fraction(), 0.0);
    }

    #[test]
    fn render_format() {
        let ts = FabricTimeSeries {
            samples: vec![sample(2_000_000, 42, 1, 7)],
        };
        let r = ts.render();
        assert!(r.starts_with("# t_us"));
        assert!(r.contains("2.000 42 1 0 1 7"));
    }
}
