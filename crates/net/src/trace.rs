//! Per-flow packet tracing: a chronological log of every transport-visible
//! event for a selected set of flows — the tool for answering "*why* did
//! PSN 412 overtake PSN 409?" after a run.
//!
//! Tracing is opt-in per flow (`SimConfig::trace_flows`) because a full
//! fabric trace would dwarf the simulation itself.

use serde::Serialize;
use std::collections::BTreeMap;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceEvent {
    /// Sender NIC put the PSN on the wire.
    Sent,
    /// Source leaf forwarded the packet onto spine `path`.
    Routed { path: u8 },
    /// RLB recirculated the packet at the source leaf.
    Recirculated,
    /// Receiver NIC accepted the PSN in order.
    Delivered,
    /// Receiver NIC saw it out of order (buffered under IRN, discarded
    /// under go-back-N) with the given out-of-order degree.
    OutOfOrder { ood: u32 },
    /// Receiver NIC discarded a duplicate.
    Duplicate,
    /// Sender received a NAK naming this PSN as expected.
    NakReceived,
    /// Sender's retransmission timer rewound to this PSN.
    TimeoutRewind,
}

/// A single log entry: when, which PSN, what happened.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TraceEntry {
    pub t_ps: u64,
    pub psn: u32,
    pub event: TraceEvent,
}

/// Collected traces, keyed by flow id.
#[derive(Debug, Default)]
pub struct FlowTraces {
    traces: BTreeMap<u32, Vec<TraceEntry>>,
}

impl FlowTraces {
    pub fn new(flow_ids: &[u32]) -> FlowTraces {
        FlowTraces {
            traces: flow_ids.iter().map(|&f| (f, Vec::new())).collect(),
        }
    }

    /// Is this flow being traced? (Cheap check for the hot path.)
    #[inline]
    pub fn wants(&self, flow: u32) -> bool {
        !self.traces.is_empty() && self.traces.contains_key(&flow)
    }

    #[inline]
    pub fn record(&mut self, flow: u32, t_ps: u64, psn: u32, event: TraceEvent) {
        if let Some(v) = self.traces.get_mut(&flow) {
            v.push(TraceEntry { t_ps, psn, event });
        }
    }

    pub fn get(&self, flow: u32) -> Option<&[TraceEntry]> {
        self.traces.get(&flow).map(|v| v.as_slice())
    }

    pub fn is_empty(&self) -> bool {
        self.traces.values().all(|v| v.is_empty())
    }

    /// Count of events of one kind for a flow (test/analysis helper).
    pub fn count(&self, flow: u32, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.get(flow)
            .map(|es| es.iter().filter(|e| pred(&e.event)).count())
            .unwrap_or(0)
    }

    /// Render a flow's trace as one line per event.
    pub fn render(&self, flow: u32) -> String {
        let mut out = format!("# trace flow {flow}: t_us psn event\n");
        if let Some(entries) = self.get(flow) {
            for e in entries {
                out.push_str(&format!(
                    "{:.3} {} {:?}\n",
                    e.t_ps as f64 / 1e6,
                    e.psn,
                    e.event
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_requested_flows() {
        let mut tr = FlowTraces::new(&[7]);
        assert!(tr.wants(7));
        assert!(!tr.wants(8));
        tr.record(7, 1000, 0, TraceEvent::Sent);
        tr.record(8, 2000, 0, TraceEvent::Sent); // ignored
        assert_eq!(tr.get(7).unwrap().len(), 1);
        assert!(tr.get(8).is_none());
    }

    #[test]
    fn empty_tracer_is_cheap_and_silent() {
        let tr = FlowTraces::default();
        assert!(!tr.wants(0));
        assert!(tr.is_empty());
    }

    #[test]
    fn counting_and_rendering() {
        let mut tr = FlowTraces::new(&[1]);
        tr.record(1, 1_000_000, 0, TraceEvent::Sent);
        tr.record(1, 2_000_000, 0, TraceEvent::Routed { path: 3 });
        tr.record(1, 9_000_000, 5, TraceEvent::OutOfOrder { ood: 5 });
        tr.record(1, 9_500_000, 0, TraceEvent::Delivered);
        assert_eq!(tr.count(1, |e| matches!(e, TraceEvent::Sent)), 1);
        assert_eq!(tr.count(1, |e| matches!(e, TraceEvent::OutOfOrder { .. })), 1);
        let text = tr.render(1);
        assert!(text.contains("1.000 0 Sent"));
        assert!(text.contains("9.000 5 OutOfOrder { ood: 5 }"));
        assert!(!tr.is_empty());
    }
}
