//! The packet — the unit moved by every queue in the simulator.
//!
//! Packets are plain 'Copy'-able values moved between `VecDeque`s; nothing
//! in the hot path allocates per packet.

use serde::Serialize;

/// What kind of frame this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PacketKind {
    /// Application data (counted by PFC, subject to pausing and ECN).
    Data,
    /// Cumulative acknowledgement; `psn` is the highest delivered PSN.
    /// Carries echoes for RTT/ECN estimation (see field docs).
    Ack,
    /// Negative acknowledgement; `psn` is the PSN the receiver expected.
    Nak,
    /// DCQCN congestion notification packet (receiver → sender).
    Cnp,
    /// RLB PFC-warning CNM relayed hop-by-hop upstream (§3.2.1).
    Cnm {
        origin_node: u32,
        origin_ingress_port: u16,
        ttl: u8,
    },
}

impl PacketKind {
    /// Control frames ride the strict-priority lossless control class:
    /// never ECN-marked, never PFC-counted, never paused.
    #[inline]
    pub fn is_control(self) -> bool {
        !matches!(self, PacketKind::Data)
    }
}

/// One frame on the wire.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Packet {
    pub kind: PacketKind,
    /// Flow index into the simulation's flow table (unused for CNM).
    pub flow: u32,
    /// Data: PSN. Ack: cumulative PSN. Nak: expected PSN.
    pub psn: u32,
    /// Wire size in bytes (payload + headers).
    pub size_bytes: u32,
    pub src_host: u32,
    pub dst_host: u32,
    /// ECN CE mark. For Ack/Nak this is the *echo* of the data packet's CE
    /// bit (control frames themselves are never marked).
    pub ecn: bool,
    /// Departure time from the source NIC; echoed in ACKs for RTT samples.
    pub sent_ps: u64,
    /// Spine index chosen at the source leaf; `u8::MAX` until routed.
    /// Echoed in ACKs so the source leaf can attribute the RTT sample.
    pub path: u8,
    /// Times this packet has been recirculated by RLB.
    pub recircs: u8,
    /// Ingress port at the switch currently holding the packet — the port
    /// whose PFC counter this packet's bytes were charged against.
    pub ingress_port: u16,
    /// IRN selective-repeat ACKs: the receiver's cumulative PSN.
    pub cum: u32,
    /// IRN: this ACK exposes a sequence gap (NACK semantics).
    pub nack: bool,
}

pub const NO_PATH: u8 = u8::MAX;

impl Packet {
    pub fn data(flow: u32, psn: u32, size_bytes: u32, src: u32, dst: u32, now_ps: u64) -> Packet {
        Packet {
            kind: PacketKind::Data,
            flow,
            psn,
            size_bytes,
            src_host: src,
            dst_host: dst,
            ecn: false,
            sent_ps: now_ps,
            path: NO_PATH,
            recircs: 0,
            ingress_port: 0,
            cum: 0,
            nack: false,
        }
    }

    /// Control response travelling back from a data packet's receiver to
    /// its sender, echoing path / timestamp / CE for the estimators.
    pub fn response(kind: PacketKind, data: &Packet, psn: u32, size_bytes: u32) -> Packet {
        debug_assert!(kind.is_control());
        Packet {
            kind,
            flow: data.flow,
            psn,
            size_bytes,
            src_host: data.dst_host,
            dst_host: data.src_host,
            ecn: data.ecn,
            sent_ps: data.sent_ps,
            path: data.path,
            recircs: 0,
            ingress_port: 0,
            cum: 0,
            nack: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert!(!PacketKind::Data.is_control());
        for k in [
            PacketKind::Ack,
            PacketKind::Nak,
            PacketKind::Cnp,
            PacketKind::Cnm { origin_node: 0, origin_ingress_port: 0, ttl: 3 },
        ] {
            assert!(k.is_control());
        }
    }

    #[test]
    fn response_reverses_direction_and_echoes() {
        let mut d = Packet::data(7, 42, 1048, 3, 9, 1_000_000);
        d.path = 2;
        d.ecn = true;
        let ack = Packet::response(PacketKind::Ack, &d, 42, 64);
        assert_eq!((ack.src_host, ack.dst_host), (9, 3));
        assert_eq!(ack.path, 2);
        assert_eq!(ack.sent_ps, 1_000_000);
        assert!(ack.ecn, "CE echo preserved");
        assert_eq!(ack.flow, 7);
    }

    #[test]
    fn packet_is_small() {
        // Keep the hot-path value type compact (two cache lines max).
        assert!(std::mem::size_of::<Packet>() <= 64);
    }
}
