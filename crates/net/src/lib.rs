//! # rlb-net — packet-level lossless-Ethernet datacenter simulator
//!
//! The substrate the paper evaluated on NS-3, rebuilt from scratch:
//!
//! * [`topology`] — leaf–spine fabrics with optional link-rate asymmetry;
//! * [`switch`] — shared-memory switches with per-ingress PFC counters,
//!   PAUSE/RESUME, strict-priority control class, RED/ECN marking, packet
//!   recirculation and the RLB predictor hooks;
//! * [`host`] — RoCE-style NICs: per-flow DCQCN pacing, go-back-N;
//! * [`sim`] — the event loop wiring it all together with real one-hop
//!   latencies for every signal (PAUSE frames, CNMs, ACKs);
//! * [`scenario`] — the paper's experimental setups (Fig. 2 motivation
//!   dumbbell, §4.1 symmetric, §4.2 asymmetric, §4.3 incast) plus the
//!   failure-sweep scenario the paper never ran;
//! * [`fault`] — the declarative fault timeline (link/switch failures and
//!   recoveries, rate degradation, load scaling) executed as ordinary
//!   wheel events;
//! * [`spec`] — on-disk scenario specs: a deterministic TOML-subset
//!   reader/writer with span-carrying parse errors.
//!
//! ```
//! use rlb_net::scenario::{steady_state, SteadyStateConfig};
//! use rlb_lb::Scheme;
//! use rlb_core::RlbConfig;
//! use rlb_engine::SimTime;
//!
//! let mut sc = SteadyStateConfig::default();
//! sc.horizon = SimTime::from_us(300); // keep the doctest fast
//! let result = steady_state(&sc, Scheme::Drill, Some(RlbConfig::default())).run();
//! assert_eq!(result.counters.buffer_drops, 0); // lossless
//! ```

// Library code must justify every panic site: bare unwrap() is denied here
// (tests are exempt). Enforced alongside `cargo xtask lint`'s lib-unwrap rule.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

#[cfg(feature = "audit")]
pub mod audit;
pub mod config;
pub mod fault;
pub mod host;
pub mod monitor;
pub mod packet;
pub mod scenario;
mod shard;
pub mod sim;
pub mod spec;
pub mod switch;
pub mod trace;
pub mod topology;

pub use config::{EcnConfig, SimConfig, SwitchConfig, TopoConfig, TransportConfig};
pub use fault::{flap, Fault, TimedFault};
pub use host::TransportMode;
pub use monitor::{FabricSample, FabricTimeSeries, MonitorConfig};
pub use packet::{Packet, PacketKind};
pub use scenario::{
    asymmetric_topo, fail_sweep, incast_scenario, motivation, steady_state, FailSweepConfig,
    IncastScenarioConfig, MotivationConfig, Scenario, SteadyStateConfig,
};
pub use spec::{ScenarioSpec, SpecError};
pub use sim::{RunResult, Simulation};
pub use trace::{FlowTraces, TraceEntry, TraceEvent};
pub use topology::{Node, Topology};

/// SplitMix64 — shared stable hash for flow→path decisions.
#[inline]
pub fn hash_u64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod smoke {
    use super::*;
    use rlb_engine::SimTime;
    use rlb_lb::Scheme;
    use rlb_workloads::FlowSpec;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            topo: TopoConfig {
                n_leaves: 2,
                n_spines: 2,
                hosts_per_leaf: 2,
                ..TopoConfig::default()
            },
            scheme: Scheme::Ecmp,
            hard_stop: SimTime::from_ms(50),
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_flow_completes_with_sane_fct() {
        // 100 KB from host 0 (leaf 0) to host 2 (leaf 1).
        let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 2, 100_000)];
        let res = Simulation::new(tiny_cfg(), flows).run();
        assert_eq!(res.records.len(), 1);
        let r = &res.records[0];
        assert!(r.completed(), "flow did not complete");
        // Lower bound: 100 packets × 209.6 ns serialization ≈ 21 µs, plus
        // ~8.8 µs one-way latency and the ACK path back.
        let fct_us = r.fct_ps().unwrap() as f64 / 1e6;
        assert!(fct_us > 20.0, "FCT impossibly low: {fct_us} µs");
        assert!(fct_us < 200.0, "FCT absurdly high: {fct_us} µs");
        assert_eq!(r.ooo_packets, 0, "single flow on ECMP cannot reorder");
        assert_eq!(res.counters.buffer_drops, 0);
    }

    #[test]
    fn bidirectional_flows_complete() {
        let flows = vec![
            FlowSpec::new(SimTime::ZERO, 0, 2, 50_000),
            FlowSpec::new(SimTime::ZERO, 2, 0, 50_000),
            FlowSpec::new(SimTime::from_us(10), 1, 3, 20_000),
        ];
        let res = Simulation::new(tiny_cfg(), flows).run();
        assert!(res.records.iter().all(|r| r.completed()));
    }

    #[test]
    fn intra_leaf_flow_never_touches_core() {
        // host 0 → host 1, same leaf.
        let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 1, 10_000)];
        let res = Simulation::new(tiny_cfg(), flows).run();
        assert!(res.records[0].completed());
        // Data hops: only the single leaf switch forwards the 10 packets
        // (plus control frames do not count as switch data packets).
        assert_eq!(res.counters.switch_packets, 10);
    }

    #[test]
    fn cnm_chain_reaches_source_leaf_and_changes_decisions() {
        // Core-side incast: 6 senders across leaf 0 and leaf 2 hammer one
        // host on leaf 1 through the spines. The victim leaf's uplink
        // ingress counters must climb, its predictor must emit CNMs, the
        // spines must relay them to the contributing source leaves, and
        // RLB must react with reroutes and/or recirculations.
        let cfg = SimConfig {
            topo: TopoConfig {
                n_leaves: 3,
                n_spines: 3,
                hosts_per_leaf: 4,
                ..TopoConfig::default()
            },
            scheme: Scheme::Drill,
            // Under this core-side incast the warnings are fabric-wide —
            // almost every decision sees *all* paths warned, so the default
            // all-warned policy (forward anyway) leaves reroute counts at
            // the mercy of tie-order. Allow the one all-warned
            // recirculation so a warned decision observably reacts.
            rlb: Some(rlb_core::RlbConfig {
                recirculate_when_all_warned: true,
                ..rlb_core::RlbConfig::default()
            }),
            hard_stop: SimTime::from_ms(100),
            ..SimConfig::default()
        };
        let victim = 4; // first host of leaf 1
        let senders = [0u32, 1, 2, 3, 8, 9];
        let flows: Vec<FlowSpec> = senders
            .iter()
            .map(|&s| FlowSpec::new(SimTime::ZERO, s, victim, 600_000))
            .collect();
        let res = Simulation::new(cfg, flows).run();
        assert!(res.records.iter().all(|r| r.completed()), "incast must finish");
        assert!(res.counters.pause_frames > 0, "incast must trigger PFC");
        assert!(res.counters.cnm_generated > 0, "predictor must warn");
        assert!(
            res.counters.cnm_relayed > 0,
            "spines must relay CNMs to the source leaves (got {} generated)",
            res.counters.cnm_generated
        );
        assert!(
            res.counters.reroutes + res.counters.recirculations > 0,
            "warnings must change RLB decisions (reroutes={}, recirc={})",
            res.counters.reroutes,
            res.counters.recirculations
        );
    }

    #[test]
    fn tracer_records_flow_lifecycle() {
        let mut cfg = tiny_cfg();
        cfg.trace_flows = vec![0];
        let flows = vec![
            FlowSpec::new(SimTime::ZERO, 0, 2, 10_000),
            FlowSpec::new(SimTime::ZERO, 1, 3, 10_000), // untraced
        ];
        let res = Simulation::new(cfg, flows).run();
        use trace::TraceEvent;
        let sent = res.traces.count(0, |e| matches!(e, TraceEvent::Sent));
        let routed = res.traces.count(0, |e| matches!(e, TraceEvent::Routed { .. }));
        let delivered = res.traces.count(0, |e| matches!(e, TraceEvent::Delivered));
        assert_eq!(sent, 10, "10 packets sent");
        assert_eq!(routed, 10, "each routed once at the source leaf");
        assert_eq!(delivered, 10, "all delivered in order");
        assert!(res.traces.get(1).is_none(), "flow 1 untraced");
        // Chronological order within the trace.
        let entries = res.traces.get(0).unwrap();
        for w in entries.windows(2) {
            assert!(w[0].t_ps <= w[1].t_ps);
        }
    }

    #[test]
    fn monitor_collects_timeseries() {
        let mut cfg = tiny_cfg();
        cfg.monitor = Some(monitor::MonitorConfig {
            interval: rlb_engine::SimDuration::from_us(5),
        });
        let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 2, 100_000)];
        let res = Simulation::new(cfg, flows).run();
        assert!(!res.timeseries.is_empty(), "monitor must sample");
        // Samples are time-ordered and spaced by the interval.
        for w in res.timeseries.samples.windows(2) {
            assert_eq!(w[1].t_ps - w[0].t_ps, 5_000_000);
        }
        // A single 100KB flow definitely buffers something at some point.
        assert!(res.timeseries.peak_buffered_bytes() > 0);
        assert_eq!(res.timeseries.paused_fraction(), 0.0, "one flow never pauses");
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let sc = scenario::steady_state(
                &SteadyStateConfig {
                    horizon: SimTime::from_us(500),
                    load: 0.5,
                    seed: 99,
                    ..SteadyStateConfig::default()
                },
                Scheme::Drill,
                Some(rlb_core::RlbConfig::default()),
            );
            sc.run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.counters.pause_frames, b.counters.pause_frames);
        let fa: Vec<_> = a.records.iter().map(|r| r.finish_ps).collect();
        let fb: Vec<_> = b.records.iter().map(|r| r.finish_ps).collect();
        assert_eq!(fa, fb);
    }
}
