//! Runtime invariant auditing (`--features audit`).
//!
//! Double-entry bookkeeping for the fabric: the simulator increments edge
//! counters (NIC injections, NIC arrivals, drops) as packets cross the
//! fabric boundary, and the auditor independently *walks the live state*
//! (switch queues, pending events) to count packets in flight. The two
//! views must always balance:
//!
//! ```text
//! injected == arrived + dropped + in_switch_buffers + in_flight_events
//!             + recirculating
//! ```
//!
//! Additional invariants checked on the same cadence:
//! * **PFC pairing** — per (switch, ingress port): `resumes <= pauses` and
//!   `pauses - resumes <= 1`; at drain the imbalance must equal the port's
//!   live `paused_upstream` flag.
//! * **Buffer occupancy** — per switch: `shared_used <= buffer_bytes`,
//!   `sum(ingress_bytes) == shared_used`, and every egress `data_q_bytes`
//!   equals the byte sum of the packets actually queued there.
//!
//! (Event-clock monotonicity is checked inside `rlb_engine::EventQueue`
//! under the same feature.)
//!
//! A violation panics with the full [`AuditReport`] — an invariant break
//! means every metric downstream of it is untrustworthy, so dying loudly
//! beats producing a subtly wrong figure.
//!
//! Checks run every [`crate::SimConfig::audit_every_events`] events and
//! once at drain; the walk is O(state), so the default interval keeps the
//! overhead negligible.

use crate::packet::Packet;
use crate::switch::Switch;
use rlb_engine::PacketArena;
use std::collections::BTreeMap;

/// Stable identity of a switch for audit bookkeeping: `(is_spine, index)`.
pub type SwitchId = (bool, u32);

/// Running edge-counters plus per-port PFC ledgers.
#[derive(Debug, Default)]
pub struct FabricAuditor {
    /// Data packets put on the wire by host NICs (incl. retransmissions).
    pub injected: u64,
    /// Data packets consumed by receiver NICs (incl. dups and OOO).
    pub arrived: u64,
    /// Data packets dropped (ingress admission overflow + DT egress drops).
    pub dropped: u64,
    /// PAUSE / RESUME frames sent, keyed by the emitting switch's ingress
    /// port (the port whose upstream the frame throttles).
    pfc: BTreeMap<(SwitchId, u16), PfcLedger>,
    /// Number of audit sweeps performed (diagnostic).
    pub checks_run: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct PfcLedger {
    pauses: u64,
    resumes: u64,
}

/// Everything the conservation sweep counted, kept for the panic report.
#[derive(Debug, Default, Clone, Copy)]
pub struct AuditReport {
    pub at_ps: u64,
    pub injected: u64,
    pub arrived: u64,
    pub dropped: u64,
    pub in_switch_buffers: u64,
    pub in_flight_events: u64,
    pub recirculating: u64,
}

impl AuditReport {
    fn accounted(&self) -> u64 {
        self.arrived
            + self.dropped
            + self.in_switch_buffers
            + self.in_flight_events
            + self.recirculating
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fabric audit @ t={} ps", self.at_ps)?;
        writeln!(f, "  injected           = {}", self.injected)?;
        writeln!(f, "  arrived            = {}", self.arrived)?;
        writeln!(f, "  dropped            = {}", self.dropped)?;
        writeln!(f, "  in switch buffers  = {}", self.in_switch_buffers)?;
        writeln!(f, "  in flight (events) = {}", self.in_flight_events)?;
        writeln!(f, "  recirculating      = {}", self.recirculating)?;
        write!(
            f,
            "  accounted          = {} ({})",
            self.accounted(),
            if self.accounted() == self.injected {
                "balanced"
            } else {
                "IMBALANCED"
            }
        )
    }
}

impl FabricAuditor {
    pub fn on_injected(&mut self) {
        self.injected += 1;
    }

    pub fn on_arrived(&mut self) {
        self.arrived += 1;
    }

    pub fn on_dropped(&mut self) {
        self.dropped += 1;
    }

    pub fn on_pause_sent(&mut self, sw: SwitchId, port: u16) {
        let l = self.pfc.entry((sw, port)).or_default();
        l.pauses += 1;
        assert!(
            l.pauses - l.resumes <= 1,
            "audit violation [pfc-pairing]: switch {sw:?} port {port} sent \
             PAUSE while already paused ({} pauses vs {} resumes)",
            l.pauses,
            l.resumes
        );
    }

    pub fn on_resume_sent(&mut self, sw: SwitchId, port: u16) {
        let l = self.pfc.entry((sw, port)).or_default();
        l.resumes += 1;
        assert!(
            l.resumes <= l.pauses,
            "audit violation [pfc-pairing]: switch {sw:?} port {port} sent \
             RESUME without a matching PAUSE ({} pauses vs {} resumes)",
            l.pauses,
            l.resumes
        );
    }

    /// Full invariant sweep. `switches` yields every switch with its id;
    /// `arena` is the packet arena the queued handles point into (any stale
    /// handle panics right here, inside the sweep); `in_flight_events` /
    /// `recirculating` are the packet counts the caller tallied from the
    /// pending event set; `drain` additionally requires each PFC ledger to
    /// match the live pause flags.
    pub fn check<'a>(
        &mut self,
        at_ps: u64,
        switches: impl Iterator<Item = (SwitchId, &'a Switch)>,
        arena: &PacketArena<Packet>,
        in_flight_events: u64,
        recirculating: u64,
        drain: bool,
    ) {
        self.checks_run += 1;
        let mut report = AuditReport {
            at_ps,
            injected: self.injected,
            arrived: self.arrived,
            dropped: self.dropped,
            in_flight_events,
            recirculating,
            ..AuditReport::default()
        };
        for ((is_spine, idx), sw) in switches {
            let id: SwitchId = (is_spine, idx);
            self.check_buffers(id, sw, arena, at_ps);
            if drain {
                self.check_pfc_drained(id, sw, at_ps);
            }
            for ep in &sw.egress {
                report.in_switch_buffers += ep.data_q.len() as u64;
            }
        }
        assert!(
            report.accounted() == report.injected,
            "audit violation [packet-conservation]:\n{report}"
        );
    }

    /// Shard-local slice of [`check`](Self::check): buffer-occupancy (and,
    /// at drain, PFC pairing) invariants for the switches this shard owns,
    /// returning the number of data packets buffered in them. A single
    /// shard sees only its side of each flow, so the conservation balance
    /// cannot be asserted here — the sharded driver sums the partials and
    /// asserts it globally every window.
    pub fn check_partial<'a>(
        &mut self,
        at_ps: u64,
        switches: impl Iterator<Item = (SwitchId, &'a Switch)>,
        arena: &PacketArena<Packet>,
        drain: bool,
    ) -> u64 {
        self.checks_run += 1;
        let mut in_switch_buffers = 0u64;
        for (id, sw) in switches {
            self.check_buffers(id, sw, arena, at_ps);
            if drain {
                self.check_pfc_drained(id, sw, at_ps);
            }
            for ep in &sw.egress {
                in_switch_buffers += ep.data_q.len() as u64;
            }
        }
        in_switch_buffers
    }

    fn check_buffers(&self, id: SwitchId, sw: &Switch, arena: &PacketArena<Packet>, at_ps: u64) {
        let cap = sw.config().buffer_bytes;
        assert!(
            sw.shared_used <= cap,
            "audit violation [buffer-occupancy]: switch {id:?} holds \
             {} bytes > capacity {cap} at t={at_ps} ps",
            sw.shared_used
        );
        let ingress_sum: u64 = sw.ingress_bytes.iter().sum();
        assert!(
            ingress_sum == sw.shared_used,
            "audit violation [buffer-occupancy]: switch {id:?} ingress \
             counters sum to {ingress_sum} but shared_used={} at t={at_ps} ps",
            sw.shared_used
        );
        for (p, ep) in sw.egress.iter().enumerate() {
            // SoA sweep: the byte sum reads only the arena's size column —
            // and validates every handle's generation along the way.
            let q_sum: u64 = ep.data_q.iter().map(|&h| arena.size_bytes(h) as u64).sum();
            assert!(
                q_sum == ep.data_q_bytes,
                "audit violation [buffer-occupancy]: switch {id:?} egress \
                 port {p} queue holds {q_sum} bytes but data_q_bytes={} \
                 at t={at_ps} ps",
                ep.data_q_bytes
            );
        }
    }

    fn check_pfc_drained(&self, id: SwitchId, sw: &Switch, at_ps: u64) {
        for (port, &paused) in sw.paused_upstream.iter().enumerate() {
            let l = self
                .pfc
                .get(&(id, port as u16))
                .copied()
                .unwrap_or_default();
            let open = l.pauses - l.resumes; // ledger methods keep this in {0, 1}
            assert!(
                open == paused as u64,
                "audit violation [pfc-pairing]: switch {id:?} port {port} \
                 ends with {} pauses vs {} resumes but paused_upstream={} \
                 at t={at_ps} ps",
                l.pauses,
                l.resumes,
                paused
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchConfig;
    use rlb_engine::substream;

    fn test_switch() -> Switch {
        Switch::new(
            2,
            SwitchConfig::default(),
            vec![40_000_000_000; 2],
            1_000_000,
            substream(0, b"audit-test", 0),
        )
    }

    #[test]
    fn balanced_ledger_passes() {
        let mut a = FabricAuditor::default();
        for _ in 0..5 {
            a.on_injected();
        }
        for _ in 0..3 {
            a.on_arrived();
        }
        a.on_dropped();
        let sw = test_switch();
        // 5 = 3 arrived + 1 dropped + 1 in-flight.
        a.check(1_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 1, 0, true);
        assert_eq!(a.checks_run, 1);
    }

    #[test]
    #[should_panic(expected = "packet-conservation")]
    fn leaked_packet_is_caught() {
        let mut a = FabricAuditor::default();
        a.on_injected();
        a.on_injected();
        a.on_arrived();
        let sw = test_switch();
        // Second packet is nowhere: not arrived, dropped, buffered or in
        // flight — the sweep must refuse to balance the books.
        a.check(2_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 0, 0, false);
    }

    #[test]
    #[should_panic(expected = "pfc-pairing")]
    fn double_pause_is_caught() {
        let mut a = FabricAuditor::default();
        a.on_pause_sent((false, 0), 3);
        a.on_pause_sent((false, 0), 3);
    }

    #[test]
    #[should_panic(expected = "pfc-pairing")]
    fn resume_without_pause_is_caught() {
        let mut a = FabricAuditor::default();
        a.on_resume_sent((true, 1), 0);
    }

    #[test]
    #[should_panic(expected = "pfc-pairing")]
    fn unmatched_pause_at_drain_is_caught() {
        let mut a = FabricAuditor::default();
        // PAUSE sent but the switch's live flag says unpaused: inconsistent.
        a.on_pause_sent((false, 0), 1);
        let sw = test_switch();
        a.check(3_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 0, 0, true);
    }

    #[test]
    #[should_panic(expected = "buffer-occupancy")]
    fn overfull_buffer_is_caught() {
        let mut a = FabricAuditor::default();
        let mut sw = test_switch();
        sw.shared_used = sw.config().buffer_bytes + 1;
        a.check(4_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 0, 0, false);
    }

    #[test]
    #[should_panic(expected = "buffer-occupancy")]
    fn ingress_counter_drift_is_caught() {
        let mut a = FabricAuditor::default();
        let mut sw = test_switch();
        sw.ingress_bytes[0] = 512; // shared_used still 0
        a.check(5_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 0, 0, false);
    }

    #[test]
    fn paused_port_balances_at_drain() {
        let mut a = FabricAuditor::default();
        a.on_pause_sent((false, 0), 1);
        let mut sw = test_switch();
        sw.paused_upstream[1] = true;
        a.check(6_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 0, 0, true);
        a.on_resume_sent((false, 0), 1);
        sw.paused_upstream[1] = false;
        a.check(7_000, [((false, 0), &sw)].into_iter(), &PacketArena::new(), 0, 0, true);
    }
}
