//! Simulation configuration.

use rlb_core::RlbConfig;
use rlb_engine::{SimDuration, SimTime};
use rlb_lb::Scheme;
use rlb_transport::DcqcnConfig;
use serde::{Deserialize, Serialize};

/// Leaf–spine fabric shape and link properties.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoConfig {
    pub n_leaves: u32,
    pub n_spines: u32,
    pub hosts_per_leaf: u32,
    /// Leaf–spine link rate (bits/s). Paper: 40 Gbps.
    pub link_rate_bps: u64,
    /// Host–leaf link rate (bits/s). Paper: 40 Gbps.
    pub host_link_rate_bps: u64,
    /// One-way propagation delay of every link. Paper: 2 µs.
    pub link_delay_ps: u64,
    /// Degraded leaf–spine links (leaf, spine) — the asymmetric topology of
    /// §4.2 cuts 20% of links from 40 to 10 Gbps.
    pub degraded_links: Vec<(u32, u32)>,
    pub degraded_rate_bps: u64,
}

impl Default for TopoConfig {
    fn default() -> Self {
        // Scaled-down default (see DESIGN.md §2): 4×4 leaf–spine, 8 hosts
        // per leaf. `paper_scale` gives the 12×12×24 fabric.
        TopoConfig {
            n_leaves: 4,
            n_spines: 4,
            hosts_per_leaf: 8,
            link_rate_bps: 40_000_000_000,
            host_link_rate_bps: 40_000_000_000,
            link_delay_ps: 2_000_000,
            degraded_links: Vec::new(),
            degraded_rate_bps: 10_000_000_000,
        }
    }
}

impl TopoConfig {
    /// The paper's evaluation fabric: 12 leaves × 12 spines, 24 hosts/leaf.
    pub fn paper_scale() -> TopoConfig {
        TopoConfig {
            n_leaves: 12,
            n_spines: 12,
            hosts_per_leaf: 24,
            ..TopoConfig::default()
        }
    }

    pub fn n_hosts(&self) -> u32 {
        self.n_leaves * self.hosts_per_leaf
    }

    /// Aggregate leaf→spine capacity, the "network core" loads are
    /// expressed against.
    pub fn core_bits_per_sec(&self) -> f64 {
        let mut total = 0.0;
        for l in 0..self.n_leaves {
            for s in 0..self.n_spines {
                total += self.uplink_rate_bps(l, s) as f64;
            }
        }
        total
    }

    pub fn uplink_rate_bps(&self, leaf: u32, spine: u32) -> u64 {
        if self.degraded_links.contains(&(leaf, spine)) {
            self.degraded_rate_bps
        } else {
            self.link_rate_bps
        }
    }

    /// Uncongested one-way host→host latency across the core, in ps:
    /// 4 links of propagation plus serialization of one MTU at each hop.
    pub fn base_one_way_ps(&self, mtu_wire_bytes: u64) -> u64 {
        let ser = rlb_engine::tx_delay(mtu_wire_bytes, self.link_rate_bps);
        (rlb_engine::SimDuration::from_ps(self.link_delay_ps) + ser)
            .mul_u64(4)
            .as_ps()
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.n_leaves < 2 {
            return Err("need at least 2 leaves".into());
        }
        if self.n_spines < 1 || self.hosts_per_leaf < 1 {
            return Err("need at least 1 spine and 1 host per leaf".into());
        }
        if self.link_rate_bps == 0 || self.host_link_rate_bps == 0 {
            return Err("link rates must be positive".into());
        }
        for &(l, s) in &self.degraded_links {
            if l >= self.n_leaves || s >= self.n_spines {
                return Err(format!("degraded link ({l},{s}) out of range"));
            }
        }
        Ok(())
    }
}

/// ECN marking at egress queues (DCQCN's congestion point).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EcnConfig {
    pub kmin_bytes: u64,
    pub kmax_bytes: u64,
    pub pmax: f64,
}

impl Default for EcnConfig {
    fn default() -> Self {
        // DCQCN's 40 Gbps defaults (Zhu et al. 2015): marking starts early
        // but gently, so bursts outrun ECN and PFC still engages — the
        // regime the paper studies.
        EcnConfig {
            kmin_bytes: 5_000,
            kmax_bytes: 200_000,
            pmax: 0.01,
        }
    }
}

/// Shared-buffer PFC switch parameters (Fig. 1's architecture).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Shared memory pool. Paper: 9 MB.
    pub buffer_bytes: u64,
    /// Per-ingress-port PFC PAUSE threshold. Paper: 256 KB.
    pub pfc_threshold_bytes: u64,
    /// RESUME fires once the ingress counter falls below
    /// `pfc_threshold_bytes - pfc_hysteresis_bytes`.
    pub pfc_hysteresis_bytes: u64,
    /// Enable PFC at all (Fig. 3 contrasts with/without).
    pub pfc_enabled: bool,
    pub ecn: EcnConfig,
    /// Dynamic-threshold buffer management: a data packet is tail-dropped
    /// when its egress queue exceeds `dt_alpha × remaining free pool`.
    /// Prevents one hot egress from starving the whole shared memory — the
    /// standard Broadcom-style DT policy. Mostly relevant with PFC off.
    pub dt_alpha: f64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            buffer_bytes: 9_000_000,
            pfc_threshold_bytes: 256 * 1024,
            pfc_hysteresis_bytes: 2 * 1048,
            pfc_enabled: true,
            ecn: EcnConfig::default(),
            dt_alpha: 4.0,
        }
    }
}

/// Host / NIC transport parameters.
#[derive(Debug, Clone, Serialize)]
pub struct TransportConfig {
    pub dcqcn: DcqcnConfig,
    /// Reliable-delivery scheme at the NICs (go-back-N is the paper's
    /// lossless baseline; selective repeat models IRN from §5).
    pub mode: crate::host::TransportMode,
    /// Go-back-N retransmission timeout.
    pub rto_ps: u64,
    /// Data payload per packet.
    pub mtu_bytes: u32,
    /// Link-layer + transport header overhead per data packet.
    pub hdr_bytes: u32,
    /// Wire size of control packets (ACK/NAK/CNP/CNM).
    pub ctrl_bytes: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            dcqcn: DcqcnConfig::default(),
            mode: crate::host::TransportMode::GoBackN,
            rto_ps: 400_000_000, // 400 µs ≫ base RTT (~20 µs)
            mtu_bytes: 1000,
            hdr_bytes: 48,
            ctrl_bytes: 64,
        }
    }
}

/// Everything one simulation run needs.
#[derive(Debug, Clone, Serialize)]
pub struct SimConfig {
    pub topo: TopoConfig,
    pub switch: SwitchConfig,
    pub transport: TransportConfig,
    /// The load-balancing scheme deployed at the leaves.
    pub scheme: Scheme,
    /// `Some` = the scheme is RLB-enhanced (predictor + Algorithm 1).
    pub rlb: Option<RlbConfig>,
    pub seed: u64,
    /// Hard stop: the simulation ends at this time even with flows open.
    pub hard_stop: SimTime,
    /// Optional periodic fabric snapshots (see [`crate::monitor`]).
    pub monitor: Option<crate::monitor::MonitorConfig>,
    /// Flow ids to trace packet-by-packet (see [`crate::trace`]).
    pub trace_flows: Vec<u32>,
    /// Run the fabric invariant sweep every N processed events (0 = only at
    /// drain). Only consulted when the crate is built with the `audit`
    /// feature; the field always exists so configs stay feature-independent.
    pub audit_every_events: u64,
    /// Ordered fault timeline: each entry is scheduled as an ordinary wheel
    /// event at construction (see [`crate::fault`]). Empty = healthy fabric.
    pub faults: Vec<crate::fault::TimedFault>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            topo: TopoConfig::default(),
            switch: SwitchConfig::default(),
            transport: TransportConfig::default(),
            scheme: Scheme::Drill,
            rlb: None,
            seed: 1,
            hard_stop: SimTime::from_ms(200),
            monitor: None,
            trace_flows: Vec::new(),
            audit_every_events: 4096,
            faults: Vec::new(),
        }
    }
}

impl SimConfig {
    pub fn validate(&self) -> Result<(), String> {
        self.topo.validate()?;
        if let Some(rlb) = &self.rlb {
            rlb.validate()?;
        }
        if self.switch.pfc_threshold_bytes == 0 && self.switch.pfc_enabled {
            return Err("PFC enabled with zero threshold".into());
        }
        if self.switch.pfc_hysteresis_bytes >= self.switch.pfc_threshold_bytes {
            return Err("hysteresis must be below the PFC threshold".into());
        }
        if self.transport.mtu_bytes == 0 {
            return Err("mtu must be positive".into());
        }
        if self.switch.ecn.kmin_bytes > self.switch.ecn.kmax_bytes {
            return Err("ECN kmin above kmax".into());
        }
        crate::fault::validate_timeline(&self.faults, &self.topo)?;
        Ok(())
    }

    /// Wire size of a full data packet.
    pub fn mtu_wire_bytes(&self) -> u32 {
        self.transport.mtu_bytes + self.transport.hdr_bytes
    }

    pub fn link_delay(&self) -> SimDuration {
        SimDuration(self.topo.link_delay_ps)
    }

    /// Display label like "DRILL+RLB" / "DRILL".
    pub fn label(&self) -> String {
        match &self.rlb {
            Some(_) => format!("{}+RLB", self.scheme.name()),
            None => self.scheme.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimConfig::default().validate().unwrap();
        let c = SimConfig {
            rlb: Some(RlbConfig::default()),
            ..SimConfig::default()
        };
        c.validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_evaluation_section() {
        let t = TopoConfig::paper_scale();
        assert_eq!((t.n_leaves, t.n_spines, t.hosts_per_leaf), (12, 12, 24));
        assert_eq!(t.n_hosts(), 288);
        assert_eq!(t.link_rate_bps, 40_000_000_000);
        assert_eq!(t.link_delay_ps, 2_000_000);
    }

    #[test]
    fn degraded_links_change_rate_and_core_capacity() {
        let mut t = TopoConfig::default();
        let full = t.core_bits_per_sec();
        t.degraded_links.push((0, 0));
        assert_eq!(t.uplink_rate_bps(0, 0), 10_000_000_000);
        assert_eq!(t.uplink_rate_bps(0, 1), 40_000_000_000);
        assert!(t.core_bits_per_sec() < full);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let t = TopoConfig {
            n_leaves: 1,
            ..TopoConfig::default()
        };
        assert!(t.validate().is_err());
        let mut t = TopoConfig::default();
        t.degraded_links.push((99, 0));
        assert!(t.validate().is_err());
        let mut c = SimConfig::default();
        c.switch.pfc_hysteresis_bytes = c.switch.pfc_threshold_bytes;
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels() {
        let mut c = SimConfig::default();
        assert_eq!(c.label(), "DRILL");
        c.rlb = Some(RlbConfig::default());
        assert_eq!(c.label(), "DRILL+RLB");
    }

    #[test]
    fn base_one_way_delay() {
        let t = TopoConfig::default();
        // 4 hops × (2 µs + 1048B × 0.2 ns/B = 209.6 ns) ≈ 8.84 µs
        let d = t.base_one_way_ps(1048);
        assert_eq!(d, 4 * (2_000_000 + 209_600));
    }
}
