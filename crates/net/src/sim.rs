//! The simulation: event dispatch wiring hosts, switches, transport, load
//! balancing and RLB together.
//!
//! One `Simulation` owns the whole fabric. Every interaction is an explicit
//! event with real latency — PFC PAUSE frames take a propagation delay to
//! arrive, CNM warnings serialize onto reverse links hop-by-hop, packets
//! occupy shared buffer from ingress admission to egress completion.

#[cfg(feature = "audit")]
use crate::audit::FabricAuditor;
use crate::config::SimConfig;
use crate::fault::Fault;
use crate::host::{FlowState, Host, Reliability};
use crate::monitor::{FabricSample, FabricTimeSeries};
use crate::packet::{Packet, PacketKind, NO_PATH};
use crate::switch::{LbInstance, LeafState, PfcAction, Switch};
use crate::topology::{Node, Topology};
use crate::trace::{FlowTraces, TraceEvent};
use rlb_core::{conservative_qth, Decision, PfcPredictor, Prediction, Rlb};
use rlb_engine::{
    shard_key, substream, tx_delay, PacketArena, PacketHandle, ShardEventQueue, SimDuration,
    SimTime,
};
use rlb_lb::{Ctx, PathInfo};
use rlb_metrics::{FabricCounters, FctSummary, FlowRecord, LogHistogram};
use rlb_workloads::FlowSpec;

/// Simulation events.
///
/// Deliberately not `Clone`: every event is dispatched exactly once and
/// packets move by value through the fabric (`cargo xtask lint`'s
/// hot-clone rule guards the dispatch arms).
#[derive(Debug)]
pub(crate) enum Event {
    FlowStart(u32),
    /// NIC pacing wake-up.
    HostWake(u32),
    /// A frame finished propagating and arrives at (node, port).
    LinkArrive { node: Node, port: u16, pkt: Packet },
    /// A switch egress finished serializing; `release` = (ingress_port,
    /// bytes) to free from the shared buffer for data frames.
    EgressDone {
        node: Node,
        port: u16,
        release: Option<(u16, u32)>,
    },
    /// The host NIC finished serializing a frame.
    HostEgressDone(u32),
    /// PFC PAUSE (true) / RESUME (false) takes effect at (node, port).
    PauseFrame { node: Node, port: u16, pause: bool },
    /// RLB Δt sampling tick: one event per switch samples **all** of its
    /// active ingress ports (identical sampling times ⇒ identical
    /// predictions), instead of one event per (node, port).
    PredictorTick(Node),
    /// A recirculated packet re-enters the routing pipeline.
    Recirculate { node: Node, pkt: Packet },
    /// Global DCQCN alpha-update tick over every active flow.
    AlphaTick,
    /// Global DCQCN rate-increase tick over every active flow.
    IncreaseTick,
    /// Per-flow retransmission-timeout probe (kept per-flow: its period is
    /// long and coalescing would skew fresh flows toward spurious timeouts).
    RtoCheck(u32),
    /// Periodic fabric snapshot (only when monitoring is enabled).
    MonitorTick,
    /// Apply entry `i` of the fault timeline (`SimConfig::faults`). The
    /// payload is an index, not the fault itself, so the event stays `Copy`
    /// -cheap and the timeline remains readable in one place.
    Fault(u32),
}

/// Canonical entity ranks for the `(sched_ps, entity, count)` tie key.
///
/// Every event carries a `u128` key packing the simulated time the schedule
/// was *issued*, the rank of the scheduling entity, and that entity's own
/// running schedule counter (`shard_key`). Ranks are a fixed property of
/// the **topology**, never of the shard layout — hosts, leaves and spines
/// get consecutive ranks after the two reserved ones below — so the key a
/// given causal event chain produces is byte-identical whether the fabric
/// runs on one shard or many. (Keying by *shard id* instead would reorder
/// same-picosecond ties from different leaves whenever the leaf→shard map
/// changes, e.g. synchronized incast responders arriving at one spine.)
///
/// `RANK_CONSTRUCT` keys construction-time schedules (flow starts, the
/// fault timeline, the initial DCQCN ticks) under a single global index,
/// and sorts before every runtime rank so time-zero construction events
/// dispatch in insertion order, exactly like the sequential engine always
/// did. `RANK_GLOBAL` keys fabric-wide clocks (DCQCN tick re-arms, monitor
/// ticks) that are replicated on every shard and therefore advance each
/// replica's counter identically.
pub(crate) const RANK_CONSTRUCT: u16 = 0;
pub(crate) const RANK_GLOBAL: u16 = 1;

/// A timestamped cross-shard event: produced by [`Simulation::sched_wire`]
/// when the receiving entity lives on another shard, carried through the
/// bounded-window driver's mailboxes, and applied at the receiver via
/// `ShardEventQueue::insert_message`. The key is computed by the *sender*
/// with exactly the derivation a local schedule uses, so merge order at
/// the receiver is independent of delivery route and arrival order.
pub(crate) struct WireMsg {
    pub at: SimTime,
    pub key: u128,
    pub ev: Event,
}

/// An output-visible side effect of one dispatched event.
///
/// Sequential runs apply these immediately. Sharded runs journal them under
/// the dispatching event's canonical key, because the *final* window of a
/// run over-dispatches: shards keep executing until the barrier learns that
/// some shard completed the last flow, so effects keyed after the global
/// completion point `k_c` must be dropped to match the sequential engine's
/// mid-queue `break`. Which window is final is only known at its barrier,
/// so every window journals and folds (`Simulation::fold_journal`).
///
/// Physical fabric state (queues, PFC flags, reliability windows) is *not*
/// journaled — overshoot there is invisible because nothing after the fold
/// reads it into the result. Receiver-side OOO accounting needs no journal
/// either: past `k_c` every flow is complete, so late data arrivals are
/// duplicates below the cumulative ACK and bump no histogram.
#[derive(Debug, Clone, Copy)]
enum JEffect {
    Pause { id: (bool, u32), port: u16 },
    Resume,
    CnmGen(u64),
    CnmRelay,
    Recirc { flow: u32 },
    SwitchPkt,
    BufferDrop,
    EcnMark,
    PausedDwell(SimDuration),
    RlbStats { re: u64, fw: u64, fo: u64 },
    Fault,
}

/// Wall-clock performance telemetry for one run.
///
/// Measurement only: nothing in the simulation reads these values, so
/// determinism of the simulated results is unaffected by host speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfStats {
    /// Wall-clock time spent inside the `run()` event loop, milliseconds.
    pub wall_ms: f64,
    /// Events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// Source-leaf load-balancing decisions taken (one per data packet
    /// leaving a leaf via the fabric, including recirculation re-decides).
    pub decisions: u64,
    /// Decisions served from a byte-identical cached path snapshot.
    pub snapshot_reuses: u64,
    /// Decisions where only the dirty spines were rewritten in place;
    /// everything else in the snapshot was reused.
    pub snapshot_refreshes: u64,
    /// Decisions that rebuilt the path snapshot from scratch (first touch
    /// of a (leaf, dst_leaf) pair, or a fault-epoch change).
    pub snapshot_rebuilds: u64,
    /// Spines whose egress-queue generation was stale across all refresh
    /// decisions (the queue-side dirty-bit split of the refresh work).
    pub snapshot_dirty_queue_spines: u64,
    /// Spines whose warning/RTT/ECN signal generations were stale across
    /// all refresh decisions (the signal-side dirty-bit split).
    pub snapshot_dirty_sig_spines: u64,
    /// Peak number of packets simultaneously parked in the packet arena.
    pub arena_high_water: u64,
    /// Arena slots ever allocated (its backing-store footprint).
    pub arena_capacity: u64,
    /// Shards the run was partitioned into (1 = sequential engine).
    pub shards: u64,
    /// Bounded-window rounds the sharded driver advanced (0 = sequential).
    pub window_advances: u64,
    /// Cross-shard wire messages exchanged over the run.
    pub cross_shard_messages: u64,
    /// (shard, window) pairs that dispatched zero events — windows where a
    /// shard only waited at the barrier. Deterministic: a function of the
    /// event timeline, not of thread scheduling.
    pub barrier_stalls: u64,
    /// Sum over shards of per-shard dispatch throughput (events per second
    /// of that shard's own busy time). On a single-core host this is the
    /// honest aggregate-capacity figure: `events_per_sec` measures the
    /// time-sliced wall clock, this measures what the shards would sustain
    /// running truly in parallel.
    pub aggregate_events_per_sec: f64,
}

/// Outcome of one run.
pub struct RunResult {
    pub records: Vec<FlowRecord>,
    pub counters: FabricCounters,
    /// Distribution of out-of-order degrees over all OOO arrivals.
    pub ood_histogram: LogHistogram,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    pub events_processed: u64,
    /// Group tag per flow record (same order as `records`; incast harness).
    pub groups: Vec<u64>,
    /// Periodic fabric snapshots (empty unless monitoring was enabled).
    pub timeseries: FabricTimeSeries,
    /// Per-flow packet traces (empty unless `trace_flows` was set).
    pub traces: FlowTraces,
    /// PFC pause frames sent, keyed by ((is_spine, switch_idx), port).
    /// Deterministic iteration order (BTreeMap) so two runs of the same
    /// scenario can be compared entry-by-entry.
    pub pfc_pauses_by_port: std::collections::BTreeMap<((bool, u32), u16), u64>,
    /// Wall-clock speed of this run (excluded from determinism digests).
    pub perf: PerfStats,
}

impl RunResult {
    pub fn summary(&self) -> FctSummary {
        FctSummary::from_records(&self.records)
    }

    /// Completion time of each flow group (incast request): group id →
    /// (last finish − first start) in ms, only for fully completed groups.
    pub fn group_completion_ms(&self) -> Vec<(u64, f64)> {
        use std::collections::btree_map::Entry;
        use std::collections::BTreeMap;
        // Accumulator per group: (earliest start, latest finish — `None` as
        // soon as any member is unfinished). Seeded from the first record's
        // actual values, never from a sentinel: a `(u64::MAX, Some(0))`
        // seed would fabricate a finish time for groups that should merge
        // from their own data.
        let mut groups: BTreeMap<u64, (u64, Option<u64>)> = BTreeMap::new();
        for (r, g) in self.records.iter().zip(self.groups.iter()) {
            if *g == u64::MAX {
                continue;
            }
            match groups.entry(*g) {
                Entry::Vacant(v) => {
                    v.insert((r.start_ps, r.finish_ps));
                }
                Entry::Occupied(mut o) => {
                    let e = o.get_mut();
                    e.0 = e.0.min(r.start_ps);
                    e.1 = match (e.1, r.finish_ps) {
                        (Some(acc), Some(f)) => Some(acc.max(f)),
                        _ => None,
                    };
                }
            }
        }
        groups
            .into_iter()
            .filter_map(|(g, (start, finish))| {
                finish.map(|f| (g, (f.saturating_sub(start)) as f64 / 1e9))
            })
            .collect()
    }

    /// Fraction of transmitted data packets that arrived out of order.
    pub fn ooo_ratio(&self) -> f64 {
        self.summary().ooo_ratio
    }
}

pub struct Simulation {
    cfg: SimConfig,
    topo: Topology,
    q: ShardEventQueue<Event>,
    leaves: Vec<Switch>,
    spines: Vec<Switch>,
    hosts: Vec<Host>,
    /// Every packet parked in a queue anywhere in the fabric (switch egress
    /// classes, host NIC control queues) lives in this generational arena;
    /// the queues themselves hold 4-byte [`PacketHandle`]s.
    arena: PacketArena<Packet>,
    /// Control frames queued at each host NIC (ACK/NAK/CNP), strict
    /// priority over data and immune to PFC pausing.
    host_ctrl: Vec<std::collections::VecDeque<PacketHandle>>,
    flows: Vec<FlowState>,
    counters: FabricCounters,
    ood_histogram: LogHistogram,
    completed: usize,
    /// Per-(leaf, dst_leaf) cached path snapshots with per-spine generation
    /// stamps (see `assemble_paths`), indexed `leaf * n_leaves + dst_leaf`.
    path_snaps: Vec<PathSnap>,
    /// Bumped by every fault application; snapshots built under an older
    /// epoch rebuild from scratch (faults may change link state/rate).
    fault_epoch: u64,
    /// LB decisions taken at source leaves (perf telemetry).
    perf_decisions: u64,
    /// Snapshot-cache outcome counters (perf telemetry).
    snap_reuses: u64,
    snap_refreshes: u64,
    snap_rebuilds: u64,
    /// Dirty-spine counts accumulated over all refresh decisions
    /// (queue-generation side / signal-generation side).
    snap_dirty_q_spines: u64,
    snap_dirty_sig_spines: u64,
    /// Typed accumulator for PFC pause dwell time, folded into
    /// `counters.paused_port_time_ps` once at end of run.
    paused_port_time: SimDuration,
    /// Scratch: ingress ports that warned during one predictor tick.
    warn_scratch: Vec<u16>,
    /// Scratch: hosts to kick after a rate-increase tick (dedup per host).
    host_kick_scratch: Vec<bool>,
    /// This replica's shard id / total shard count (0 of 1 = sequential).
    shard_id: u16,
    n_shards: u16,
    /// Per-entity schedule counters backing the canonical tie key
    /// (indexed by rank; see `RANK_CONSTRUCT`).
    ent_cnt: Vec<u64>,
    /// Canonical key of the event currently being dispatched.
    cur_key: u128,
    /// `(time, key)` of the latest flow completion seen on this shard.
    last_completion: Option<(u64, u128)>,
    /// Journaled output effects (sharded mode; folded at each barrier).
    journal: Vec<(u64, u128, JEffect)>,
    /// Cross-shard messages produced by the current window, per destination
    /// shard (drained by the driver at the window barrier).
    outbox: Vec<Vec<WireMsg>>,
    /// CNM relay TTL.
    cnm_ttl: u8,
    /// Live host NIC rate scale in parts-per-thousand of the configured
    /// `host_link_rate_bps` (the `Fault::LoadScale` knob); 1000 = nominal.
    host_rate_scale_permille: u32,
    timeseries: FabricTimeSeries,
    traces: FlowTraces,
    pfc_pauses_by_port: std::collections::BTreeMap<((bool, u32), u16), u64>,
    #[cfg(feature = "audit")]
    auditor: FabricAuditor,
    /// Data/recirculating packets inside the single event popped past the
    /// hard-stop horizon and never dispatched — still "in flight" as far as
    /// the conservation ledger is concerned.
    #[cfg(feature = "audit")]
    audit_horizon_in_flight: (u64, u64),
}

/// One (leaf, dst_leaf) cached path snapshot plus the per-spine generation
/// stamps it was built from. A stored `PathInfo` entry stays byte-identical
/// while its spine's egress-queue generation (`EgressPort::q_gen`) and
/// signal generations (`LeafState::{path_sig_gen, uplink_sig_gen}`) hold
/// still, the fault epoch is unchanged, and no armed warning crosses its
/// expiry boundary (`valid_until_ps` — warnings decay by pure passage of
/// time, bumping no counter). Stale spines are rewritten individually, so a
/// single busy uplink no longer invalidates its seven idle siblings.
#[derive(Debug)]
struct PathSnap {
    paths: Vec<PathInfo>,
    /// Per-spine `EgressPort::q_gen` at last (re)build of that entry.
    q_gens: Vec<u64>,
    /// Per-spine `LeafState::path_sig_gen(spine, dst_leaf)` stamp.
    sig_gens: Vec<u64>,
    /// Per-spine `LeafState::uplink_sig_gen(spine)` stamp.
    uplink_gens: Vec<u64>,
    /// Per-spine warning deadline observed at the last signal probe
    /// (0 = no warning recorded then; may sit in the past once expired).
    warned_until_ps: Vec<u64>,
    /// Earliest instant at which any armed warning in `paths` lapses.
    valid_until_ps: u64,
    /// `Simulation::fault_epoch` the snapshot was built under.
    fault_epoch: u64,
    /// The snapshot has been built at least once.
    init: bool,
}

impl PathSnap {
    fn empty(n_spines: usize) -> PathSnap {
        PathSnap {
            paths: Vec::with_capacity(n_spines),
            q_gens: vec![0; n_spines],
            sig_gens: vec![0; n_spines],
            uplink_gens: vec![0; n_spines],
            warned_until_ps: vec![0; n_spines],
            valid_until_ps: 0,
            fault_epoch: 0,
            init: false,
        }
    }
}

/// Encode a switch identity into the CNM origin field.
fn encode_node(n: Node) -> u32 {
    match n {
        Node::Leaf(l) => l,
        Node::Spine(s) => 0x8000_0000 | s,
        Node::Host(_) => unreachable!("hosts never originate CNMs"),
    }
}

fn decode_node(v: u32) -> Node {
    if v & 0x8000_0000 != 0 {
        Node::Spine(v & 0x7FFF_FFFF)
    } else {
        Node::Leaf(v)
    }
}

impl Simulation {
    pub fn new(cfg: SimConfig, specs: Vec<FlowSpec>) -> Simulation {
        Simulation::new_shard(cfg, specs, 0, 1)
    }

    /// Build shard `shard_id` of an `n_shards`-way partitioned run.
    ///
    /// Every shard constructs the **entire** fabric identically — same
    /// switches, hosts, flow table and RNG substreams — and differs only in
    /// which construction events enter its queue: flow starts are scheduled
    /// on the shard owning the source host; the fault timeline and the
    /// global DCQCN ticks are replicated everywhere (faults mutate link
    /// state every shard may read, ticks drive per-shard flow clocks).
    /// Replication is what keeps per-entity RNG streams and tie keys
    /// automatically identical across shard counts: no state is derived
    /// from the shard layout.
    pub(crate) fn new_shard(
        cfg: SimConfig,
        specs: Vec<FlowSpec>,
        shard_id: u16,
        n_shards: u16,
    ) -> Simulation {
        cfg.validate().expect("invalid SimConfig");
        assert!(shard_id < n_shards.max(1), "shard id out of range");
        let topo = Topology::new(cfg.topo.clone());
        let n_leaves = cfg.topo.n_leaves;
        let n_spines = cfg.topo.n_spines;
        let hpl = cfg.topo.hosts_per_leaf;
        let d = cfg.topo.link_delay_ps;

        // Base RTT estimate seeding the per-path estimators: 8 link hops
        // (4 out, 4 back) of propagation + serialization.
        let mtu_wire = cfg.mtu_wire_bytes() as u64;
        let base_one_way = SimDuration::from_ps(cfg.topo.base_one_way_ps(mtu_wire));
        let base_rtt_ns = base_one_way.mul_u64(2).as_ns_f64();

        let contributor_window = cfg
            .rlb
            .as_ref()
            .map(|r| SimDuration::from_ps(r.warn_lifetime_ps).mul_u64(4).as_ps())
            .unwrap_or(10_000_000);

        let mut leaves = Vec::with_capacity(n_leaves as usize);
        for l in 0..n_leaves {
            let n_ports = (hpl + n_spines) as usize;
            let rates: Vec<u64> = (0..n_ports as u16)
                .map(|p| topo.port_rate_bps(Node::Leaf(l), p))
                .collect();
            let mut sw = Switch::new(
                n_ports,
                cfg.switch.clone(),
                rates,
                contributor_window,
                substream(cfg.seed, b"switch-leaf", l as u64),
            );
            // The deployed LB scheme, optionally wrapped in RLB.
            let inner = rlb_lb::build(
                cfg.scheme,
                cfg.transport.mtu_bytes as u64,
                substream(cfg.seed, b"lb-leaf", l as u64),
            );
            let lb = match &cfg.rlb {
                Some(rcfg) => LbInstance::Rlb(Rlb::new(inner, rcfg.clone())),
                None => LbInstance::Vanilla(inner),
            };
            sw.leaf = Some(LeafState::new(
                lb,
                n_spines as usize,
                n_leaves as usize,
                base_rtt_ns,
            ));
            if let Some(rcfg) = &cfg.rlb {
                sw.predictors = (0..n_ports)
                    .map(|_| {
                        Self::make_predictor(&cfg, rcfg, d)
                    })
                    .collect();
            }
            leaves.push(sw);
        }

        let mut spines = Vec::with_capacity(n_spines as usize);
        for s in 0..n_spines {
            let n_ports = n_leaves as usize;
            let rates: Vec<u64> = (0..n_ports as u16)
                .map(|p| topo.port_rate_bps(Node::Spine(s), p))
                .collect();
            let mut sw = Switch::new(
                n_ports,
                cfg.switch.clone(),
                rates,
                contributor_window,
                substream(cfg.seed, b"switch-spine", s as u64),
            );
            if let Some(rcfg) = &cfg.rlb {
                sw.predictors = (0..n_ports)
                    .map(|_| Self::make_predictor(&cfg, rcfg, d))
                    .collect();
            }
            spines.push(sw);
        }

        let n_hosts = topo.n_hosts();
        let mut hosts: Vec<Host> = (0..n_hosts).map(Host::new).collect();
        let host_ctrl = vec![std::collections::VecDeque::new(); n_hosts as usize];

        // IRN window: one bandwidth-delay product of full-size packets
        // (IRN's "BDP-FC"), with a small floor.
        let irn_window = (base_one_way.mul_u64(2).as_secs_f64()
            * cfg.topo.host_link_rate_bps as f64
            / (8.0 * mtu_wire as f64))
            .ceil()
            .max(4.0) as u32;

        // Entity ranks: 2 reserved + one per host, leaf and spine. The tie
        // key gives ranks 16 bits (`shard_key`), which bounds the fabric at
        // ~65k entities — far above the paper-scale 12×12×288 topology.
        let n_ranks = 2usize + n_hosts as usize + n_leaves as usize + n_spines as usize;
        assert!(n_ranks <= u16::MAX as usize, "topology exceeds rank space");

        let mut q = ShardEventQueue::new(shard_id);
        let mut flows = Vec::with_capacity(specs.len());
        for (i, spec) in specs.into_iter().enumerate() {
            assert!(spec.src_host < n_hosts && spec.dst_host < n_hosts);
            assert_ne!(spec.src_host, spec.dst_host, "flow to self");
            let dcqcn = rlb_transport::DcqcnConfig {
                line_rate_bps: cfg.topo.host_link_rate_bps as f64,
                ..cfg.transport.dcqcn.clone()
            };
            let fs = FlowState::with_mode(
                spec,
                cfg.transport.mtu_bytes,
                dcqcn,
                cfg.transport.mode,
                irn_window,
            );
            hosts[spec.src_host as usize].tx_flows.push(i as u32);
            // Construction events carry `(0, RANK_CONSTRUCT, global index)`
            // keys: every shard derives the same key for the same entry, so
            // ownership gaps in the index sequence are harmless.
            if Self::shard_for(&topo, n_leaves, n_shards, Node::Host(spec.src_host)) == shard_id {
                q.insert_message(
                    spec.start,
                    shard_key(0, RANK_CONSTRUCT, i as u64),
                    Event::FlowStart(i as u32),
                );
            }
            flows.push(fs);
        }
        let n_flows = flows.len() as u64;

        // The fault timeline rides the same wheel as everything else: one
        // event per entry, fired in deterministic (time, key) order, and
        // replicated on every shard (faults mutate fabric state that any
        // shard may read — link rates, the NIC load scale).
        for (i, tf) in cfg.faults.iter().enumerate() {
            q.insert_message(
                tf.at,
                shard_key(0, RANK_CONSTRUCT, n_flows + i as u64),
                Event::Fault(i as u32),
            );
        }

        // DCQCN's global alpha/rate-increase clocks are armed once here,
        // phase-locked to the earliest flow start, and re-arm
        // unconditionally until the run ends (completion or hard stop). A
        // fixed phase keeps the tick event sequence identical across shard
        // counts — demand-armed ticks would re-phase after idle gaps, which
        // is invisible sequentially but breaks the canonical-order contract
        // between replicas.
        if let Some(t0) = flows.iter().map(|f| f.spec.start).min() {
            let base = n_flows + cfg.faults.len() as u64;
            let t = &cfg.transport;
            q.insert_message(
                t0 + SimDuration(t.dcqcn.alpha_timer_ps),
                shard_key(0, RANK_CONSTRUCT, base),
                Event::AlphaTick,
            );
            q.insert_message(
                t0 + SimDuration(t.dcqcn.increase_timer_ps),
                shard_key(0, RANK_CONSTRUCT, base + 1),
                Event::IncreaseTick,
            );
        }

        let cfg_trace_flows = cfg.trace_flows.clone();
        Simulation {
            topo,
            q,
            leaves,
            spines,
            hosts,
            arena: PacketArena::with_capacity(1024),
            host_ctrl,
            flows,
            counters: FabricCounters::default(),
            ood_histogram: LogHistogram::new(),
            completed: 0,
            path_snaps: (0..(n_leaves as usize * n_leaves as usize))
                .map(|_| PathSnap::empty(n_spines as usize))
                .collect(),
            fault_epoch: 0,
            perf_decisions: 0,
            snap_reuses: 0,
            snap_refreshes: 0,
            snap_rebuilds: 0,
            snap_dirty_q_spines: 0,
            snap_dirty_sig_spines: 0,
            paused_port_time: SimDuration(0),
            warn_scratch: Vec::new(),
            host_kick_scratch: vec![false; n_hosts as usize],
            shard_id,
            n_shards: n_shards.max(1),
            ent_cnt: vec![0; n_ranks],
            cur_key: 0,
            last_completion: None,
            journal: Vec::new(),
            outbox: (0..n_shards.max(1)).map(|_| Vec::new()).collect(),
            cnm_ttl: 4,
            host_rate_scale_permille: 1000,
            timeseries: FabricTimeSeries::default(),
            traces: FlowTraces::new(&cfg_trace_flows),
            pfc_pauses_by_port: std::collections::BTreeMap::new(),
            #[cfg(feature = "audit")]
            auditor: FabricAuditor::default(),
            #[cfg(feature = "audit")]
            audit_horizon_in_flight: (0, 0),
            cfg,
        }
    }

    fn make_predictor(cfg: &SimConfig, rcfg: &rlb_core::RlbConfig, d_ps: u64) -> PfcPredictor {
        // Fan-in estimate for the conservative Qth range: the worst case at
        // any ingress is the larger of the spine and host port counts.
        let n = cfg.topo.n_spines.max(cfg.topo.hosts_per_leaf);
        let qth = conservative_qth(
            rcfg.qth_fraction,
            d_ps,
            cfg.topo.link_rate_bps,
            n,
            cfg.switch.pfc_threshold_bytes,
        );
        PfcPredictor::new(
            qth.min(cfg.switch.pfc_threshold_bytes),
            cfg.switch.pfc_threshold_bytes,
            rcfg.horizon_ps,
        )
    }

    #[inline]
    fn now(&self) -> SimTime {
        self.q.now()
    }

    #[inline]
    fn switch_mut(&mut self, node: Node) -> &mut Switch {
        match node {
            Node::Leaf(l) => &mut self.leaves[l as usize],
            Node::Spine(s) => &mut self.spines[s as usize],
            Node::Host(_) => panic!("not a switch"),
        }
    }

    /// Split-borrow a switch together with the packet arena (disjoint
    /// fields), for enqueue/dequeue paths that park or reclaim packets.
    #[inline]
    fn switch_and_arena(&mut self, node: Node) -> (&mut Switch, &mut PacketArena<Packet>) {
        let sw = match node {
            Node::Leaf(l) => &mut self.leaves[l as usize],
            Node::Spine(s) => &mut self.spines[s as usize],
            Node::Host(_) => panic!("not a switch"),
        };
        (sw, &mut self.arena)
    }

    // ------------------------------------------------------------------
    // Shard partition, canonical keys and the effect journal
    // ------------------------------------------------------------------

    /// The ownership partition: shard 0 owns every spine; leaves (with
    /// their hosts) spread evenly over shards `1..n`. Host↔leaf traffic is
    /// therefore always shard-local — only leaf↔spine wires (data frames
    /// and PFC) cross shards, and both carry at least one link propagation
    /// delay, which is exactly the window the driver synchronizes on.
    fn shard_for(topo: &Topology, n_leaves: u32, n_shards: u16, node: Node) -> u16 {
        if n_shards <= 1 {
            return 0;
        }
        let leaf_shards = (n_shards - 1) as u64;
        let of_leaf = |l: u32| 1 + (l as u64 * leaf_shards / n_leaves as u64) as u16;
        match node {
            Node::Spine(_) => 0,
            Node::Leaf(l) => of_leaf(l),
            Node::Host(h) => of_leaf(topo.leaf_of_host(h)),
        }
    }

    #[inline]
    fn shard_of(&self, node: Node) -> u16 {
        Self::shard_for(&self.topo, self.cfg.topo.n_leaves, self.n_shards, node)
    }

    #[inline]
    fn owns(&self, node: Node) -> bool {
        self.shard_of(node) == self.shard_id
    }

    #[inline]
    fn owns_flow(&self, i: usize) -> bool {
        self.owns(Node::Host(self.flows[i].spec.src_host))
    }

    /// Canonical rank of a host (see `RANK_CONSTRUCT` for the layout).
    #[inline]
    fn rank_host(&self, h: u32) -> u16 {
        2 + h as u16
    }

    /// Canonical rank of any fabric entity.
    #[inline]
    fn rank_node(&self, node: Node) -> u16 {
        let n_hosts = self.topo.n_hosts() as u16;
        match node {
            Node::Host(h) => 2 + h as u16,
            Node::Leaf(l) => 2 + n_hosts + l as u16,
            Node::Spine(s) => 2 + n_hosts + self.cfg.topo.n_leaves as u16 + s as u16,
        }
    }

    /// Schedule a shard-local event under `rank`'s canonical key.
    fn sched(&mut self, rank: u16, at: SimTime, ev: Event) {
        let cnt = self.ent_cnt[rank as usize];
        self.ent_cnt[rank as usize] = cnt + 1;
        let key = shard_key(self.q.now().as_ps(), rank, cnt);
        self.q.insert_message(at, key, ev);
    }

    /// Schedule an event that crosses a wire toward `peer`: inserted
    /// locally if this shard owns the peer, else queued in the outbox for
    /// barrier delivery. The key derivation is identical either way — the
    /// delivery route never affects the canonical merge order.
    fn sched_wire(&mut self, rank: u16, peer: Node, at: SimTime, ev: Event) {
        let cnt = self.ent_cnt[rank as usize];
        self.ent_cnt[rank as usize] = cnt + 1;
        let key = shard_key(self.q.now().as_ps(), rank, cnt);
        let dst = self.shard_of(peer);
        if dst == self.shard_id {
            self.q.insert_message(at, key, ev);
        } else {
            self.outbox[dst as usize].push(WireMsg { at, key, ev });
        }
    }

    /// Record an output-visible effect of the current event (see
    /// [`JEffect`] for why sharded runs defer these to the barrier fold).
    fn jot(&mut self, e: JEffect) {
        if self.n_shards > 1 {
            self.journal.push((self.q.now().as_ps(), self.cur_key, e));
        } else {
            self.apply_effect(e);
        }
    }

    fn apply_effect(&mut self, e: JEffect) {
        match e {
            JEffect::Pause { id, port } => {
                self.counters.pause_frames += 1;
                *self.pfc_pauses_by_port.entry((id, port)).or_insert(0) += 1;
            }
            JEffect::Resume => self.counters.resume_frames += 1,
            JEffect::CnmGen(n) => self.counters.cnm_generated += n,
            JEffect::CnmRelay => self.counters.cnm_relayed += 1,
            JEffect::Recirc { flow } => {
                self.counters.recirculations += 1;
                self.flows[flow as usize].recirculations += 1;
            }
            JEffect::SwitchPkt => self.counters.switch_packets += 1,
            JEffect::BufferDrop => self.counters.buffer_drops += 1,
            JEffect::EcnMark => self.counters.ecn_marks += 1,
            JEffect::PausedDwell(d) => self.paused_port_time += d,
            JEffect::RlbStats { re, fw, fo } => {
                self.counters.reroutes += re;
                self.counters.forwards_unwarned += fw;
                self.counters.recirculation_budget_exhausted += fo;
            }
            JEffect::Fault => self.counters.faults_applied += 1,
        }
    }

    /// Apply journaled effects up to `limit` (inclusive in the canonical
    /// `(time, key)` order) and discard the rest; `None` applies all.
    /// Non-final windows fold with `None` — every entry precedes the
    /// completion point by construction, since completion happens in the
    /// final window.
    pub(crate) fn fold_journal(&mut self, limit: Option<(u64, u128)>) {
        let journal = std::mem::take(&mut self.journal);
        for (t, key, e) in journal {
            if limit.is_none_or(|lim| (t, key) <= lim) {
                self.apply_effect(e);
            }
        }
    }

    /// Run to completion: stops when all flows finished, the event queue
    /// drains, or the hard-stop horizon passes.
    pub fn run(mut self) -> RunResult {
        if let Some(m) = &self.cfg.monitor {
            let at = SimTime(m.interval.as_ps());
            self.sched(RANK_GLOBAL, at, Event::MonitorTick);
        }
        let hard_stop = self.cfg.hard_stop;
        let mut events: u64 = 0;
        // Wall-clock is recorded for the perf telemetry only; nothing in
        // the simulation reads it, so replays stay bit-exact.
        let wall_start = std::time::Instant::now(); // lint:allow(wall-clock)
        while let Some((t, key, ev)) = self.q.pop() {
            if t > hard_stop {
                #[cfg(feature = "audit")]
                {
                    // This event is popped but never dispatched; its packets
                    // must stay on the conservation ledger.
                    let (f, r) = Self::audit_event_packets(&ev);
                    self.audit_horizon_in_flight.0 += f;
                    self.audit_horizon_in_flight.1 += r;
                }
                break;
            }
            self.cur_key = key;
            events += 1;
            self.dispatch(ev);
            #[cfg(feature = "audit")]
            if self.cfg.audit_every_events > 0 && events.is_multiple_of(self.cfg.audit_every_events)
            {
                self.audit_sweep(false);
            }
            if self.completed == self.flows.len() {
                break;
            }
        }
        #[cfg(feature = "audit")]
        self.audit_sweep(true);
        let wall = wall_start.elapsed();
        self.finalize_counters();
        let eps = if wall.as_secs_f64() > 0.0 {
            events as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let perf = PerfStats {
            wall_ms: wall.as_secs_f64() * 1e3,
            events_per_sec: eps,
            decisions: self.perf_decisions,
            snapshot_reuses: self.snap_reuses,
            snapshot_refreshes: self.snap_refreshes,
            snapshot_rebuilds: self.snap_rebuilds,
            snapshot_dirty_queue_spines: self.snap_dirty_q_spines,
            snapshot_dirty_sig_spines: self.snap_dirty_sig_spines,
            arena_high_water: self.arena.high_water() as u64,
            arena_capacity: self.arena.capacity() as u64,
            shards: 1,
            window_advances: 0,
            cross_shard_messages: 0,
            barrier_stalls: 0,
            aggregate_events_per_sec: eps,
        };
        let end_time = self.now();
        let groups: Vec<u64> = self.flows.iter().map(|f| f.spec.group).collect();
        let records = self.build_records();
        let counters = self.counters.clone();
        RunResult {
            records,
            counters,
            ood_histogram: self.ood_histogram,
            end_time,
            events_processed: events,
            groups,
            timeseries: self.timeseries,
            traces: self.traces,
            pfc_pauses_by_port: self.pfc_pauses_by_port,
            perf,
        }
    }

    fn build_records(&self) -> Vec<FlowRecord> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowRecord {
                flow_id: i as u64,
                src_host: f.spec.src_host,
                dst_host: f.spec.dst_host,
                size_bytes: f.spec.size_bytes,
                total_packets: f.total_packets,
                start_ps: f.spec.start.as_ps(),
                finish_ps: f.finish_ps,
                ooo_packets: f.reliability.ooo_packets(),
                max_ood: f.reliability.max_ood() as u64,
                packets_sent: f.reliability.packets_sent(),
                naks: f.reliability.naks(),
                recirculations: f.recirculations,
            })
            .collect()
    }

    /// Data packets carried by a pending event: `(in_flight, recirculating)`.
    #[cfg(feature = "audit")]
    fn audit_event_packets(ev: &Event) -> (u64, u64) {
        match ev {
            Event::LinkArrive { pkt, .. } if matches!(pkt.kind, PacketKind::Data) => (1, 0),
            Event::Recirculate { .. } => (0, 1),
            _ => (0, 0),
        }
    }

    /// Conservation + occupancy (+ PFC pairing at drain) sweep over the
    /// whole fabric. Runs between events, so every structure is quiescent.
    #[cfg(feature = "audit")]
    fn audit_sweep(&mut self, drain: bool) {
        let (mut in_flight, mut recirc) = self.audit_horizon_in_flight;
        for ev in self.q.iter_events() {
            let (f, r) = Self::audit_event_packets(ev);
            in_flight += f;
            recirc += r;
        }
        // Handle conservation: every live arena slot is referenced by
        // exactly one queue somewhere in the fabric, and vice versa. A
        // mismatch means a handle leaked (slot never freed) or a queue
        // holds a dangling handle.
        let queued: usize = self
            .leaves
            .iter()
            .chain(self.spines.iter())
            .flat_map(|sw| sw.egress.iter())
            .map(|ep| ep.data_q.len() + ep.ctrl_q.len())
            .sum::<usize>()
            + self.host_ctrl.iter().map(|q| q.len()).sum::<usize>();
        assert_eq!(
            queued,
            self.arena.len(),
            "packet arena out of balance: {} handles queued, {} slots live",
            queued,
            self.arena.len(),
        );
        let leaves = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, sw)| ((false, i as u32), sw));
        let spines = self
            .spines
            .iter()
            .enumerate()
            .map(|(i, sw)| ((true, i as u32), sw));
        self.auditor.check(
            self.q.now().as_ps(),
            leaves.chain(spines),
            &self.arena,
            in_flight,
            recirc,
            drain,
        );
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::FlowStart(f) => self.on_flow_start(f),
            Event::HostWake(h) => self.on_host_wake(h),
            Event::LinkArrive { node, port, pkt } => self.on_link_arrive(node, port, pkt),
            Event::EgressDone { node, port, release } => self.on_egress_done(node, port, release),
            Event::HostEgressDone(h) => self.on_host_egress_done(h),
            Event::PauseFrame { node, port, pause } => self.on_pause_frame(node, port, pause),
            Event::PredictorTick(node) => self.on_predictor_tick(node),
            Event::Recirculate { node, pkt } => self.on_recirculate(node, pkt),
            Event::AlphaTick => self.on_alpha_tick(),
            Event::IncreaseTick => self.on_increase_tick(),
            Event::RtoCheck(f) => self.on_rto_check(f),
            Event::MonitorTick => self.on_monitor_tick(),
            Event::Fault(i) => self.on_fault(i),
        }
    }

    fn on_monitor_tick(&mut self) {
        let now = self.now();
        let mut buffered = 0u64;
        let mut paused_ports = 0u32;
        let mut max_q = 0u64;
        for sw in self.leaves.iter().chain(self.spines.iter()) {
            buffered += sw.shared_used;
            for ep in &sw.egress {
                if ep.paused {
                    paused_ports += 1;
                }
                max_q = max_q.max(ep.data_q_bytes);
            }
        }
        let paused_hosts = self.hosts.iter().filter(|h| h.paused).count() as u32;
        let active_flows = self
            .flows
            .iter()
            .filter(|f| f.started && !f.is_complete())
            .count() as u32;
        self.timeseries.samples.push(FabricSample {
            t_ps: now.as_ps(),
            buffered_bytes: buffered,
            paused_ports,
            paused_hosts,
            active_flows,
            max_egress_queue_bytes: max_q,
        });
        if let Some(m) = &self.cfg.monitor {
            let at = now + m.interval;
            self.sched(RANK_GLOBAL, at, Event::MonitorTick);
        }
    }

    // ------------------------------------------------------------------
    // Host side
    // ------------------------------------------------------------------

    fn on_flow_start(&mut self, f: u32) {
        let now = self.now();
        let host = {
            let fs = &mut self.flows[f as usize];
            fs.started = true;
            fs.next_eligible_ps = now.as_ps();
            fs.spec.src_host
        };
        // The global DCQCN ticks are construction-armed (see `new_shard`);
        // only the per-flow RTO probe starts here.
        let rto = SimDuration(self.cfg.transport.rto_ps);
        let rank = self.rank_host(host);
        self.sched(rank, now + rto, Event::RtoCheck(f));
        self.host_try_send(host);
    }

    fn on_host_wake(&mut self, h: u32) {
        if self.hosts[h as usize].wake_at == Some(self.now().as_ps()) {
            self.hosts[h as usize].wake_at = None;
        }
        self.host_try_send(h);
    }

    fn on_host_egress_done(&mut self, h: u32) {
        self.hosts[h as usize].busy = false;
        self.host_try_send(h);
    }

    /// NIC arbitration: control first (pause-immune), then one data packet
    /// from the round-robin-eligible flow, else a pacing wake-up.
    fn host_try_send(&mut self, h: u32) {
        let now = self.now();
        if self.hosts[h as usize].busy {
            return;
        }
        // Control frames first — they ride the lossless control class.
        if let Some(hdl) = self.host_ctrl[h as usize].pop_front() {
            let pkt = self.arena.free(hdl);
            self.host_transmit(h, pkt);
            return;
        }
        if self.hosts[h as usize].paused {
            return; // data class paused by the leaf's PFC
        }
        let picked = {
            let host = &mut self.hosts[h as usize];
            host.pick_eligible(&self.flows, now.as_ps())
        };
        if let Some(f) = picked {
            let pkt = {
                let mtu = self.cfg.transport.mtu_bytes;
                let hdr = self.cfg.transport.hdr_bytes;
                let fs = &mut self.flows[f as usize];
                let psn = fs.reliability.take_next().expect("eligible flow has data");
                let wire = fs.payload_bytes(psn, mtu) + hdr;
                fs.dcqcn.on_bytes_sent(wire as u64);
                let gap = fs.dcqcn.pacing_delay_ps(wire as u64);
                fs.next_eligible_ps = fs.next_eligible_ps.max(now.as_ps()) + gap;
                Packet::data(f, psn, wire, fs.spec.src_host, fs.spec.dst_host, now.as_ps())
            };
            if self.traces.wants(f) {
                self.traces.record(f, now.as_ps(), pkt.psn, TraceEvent::Sent);
            }
            self.host_transmit(h, pkt);
            return;
        }
        // Nothing eligible now: wake at the earliest pacing deadline.
        let deadline = self.hosts[h as usize].earliest_deadline(&self.flows);
        if let Some(d) = deadline {
            let d = d.max(now.as_ps());
            let sooner = self.hosts[h as usize]
                .wake_at
                .is_none_or(|w| d < w || w < now.as_ps());
            if sooner {
                self.hosts[h as usize].wake_at = Some(d);
                let rank = self.rank_host(h);
                self.sched(rank, SimTime(d), Event::HostWake(h));
            }
        }
    }

    fn host_transmit(&mut self, h: u32, pkt: Packet) {
        let now = self.now();
        #[cfg(feature = "audit")]
        if matches!(pkt.kind, PacketKind::Data) {
            self.auditor.on_injected();
        }
        self.hosts[h as usize].busy = true;
        // NIC line rate scaled by any live `Fault::LoadScale` (1000 = nominal).
        let rate = (self.cfg.topo.host_link_rate_bps * self.host_rate_scale_permille as u64
            / 1000)
            .max(1);
        let ser = tx_delay(pkt.size_bytes as u64, rate);
        let prop = SimDuration(self.cfg.topo.link_delay_ps);
        let (peer, peer_port) = self.topo.peer(Node::Host(h), 0);
        let rank = self.rank_host(h);
        self.sched(rank, now + ser, Event::HostEgressDone(h));
        // A host's peer is always its own leaf — same shard — but the wire
        // path keeps the key bookkeeping uniform.
        self.sched_wire(
            rank,
            peer,
            now + ser + prop,
            Event::LinkArrive {
                node: peer,
                port: peer_port,
                pkt,
            },
        );
    }

    /// Park a control frame in the arena, queue its handle at a host NIC
    /// and kick the NIC.
    fn host_send_control(&mut self, h: u32, pkt: Packet) {
        debug_assert!(pkt.kind.is_control());
        // Same bypass as `enqueue_or_launch`: a quiet NIC would pop this
        // frame right back out (control is pause-immune), so the arena
        // round trip is pure overhead. ACKs take this path once per
        // delivered data packet.
        if !self.hosts[h as usize].busy && self.host_ctrl[h as usize].is_empty() {
            self.host_transmit(h, pkt);
            return;
        }
        let now_ps = self.now().as_ps();
        let hdl = self
            .arena
            .alloc(pkt.size_bytes, pkt.flow, true, now_ps, pkt);
        self.host_ctrl[h as usize].push_back(hdl);
        self.host_try_send(h);
    }

    fn on_host_rx(&mut self, h: u32, pkt: Packet) {
        let now = self.now();
        match pkt.kind {
            PacketKind::Data => {
                debug_assert_eq!(pkt.dst_host, h);
                #[cfg(feature = "audit")]
                self.auditor.on_arrived();
                let ctrl_bytes = self.cfg.transport.ctrl_bytes;
                let cnp_interval = self.cfg.transport.dcqcn.cnp_interval_ps;
                let fs = &mut self.flows[pkt.flow as usize];
                // DCQCN NP: CE-marked arrivals elicit CNPs (rate-limited),
                // regardless of PSN order.
                let mut responses: [Option<Packet>; 2] = [None, None];
                if pkt.ecn && fs.cnp_gen.on_marked_packet(now.as_ps(), cnp_interval) {
                    responses[0] = Some(Packet::response(
                        PacketKind::Cnp,
                        &pkt,
                        0,
                        ctrl_bytes));
                }
                #[allow(unused_assignments)]
                let mut trace_ev: Option<TraceEvent> = None;
                match &mut fs.reliability {
                    Reliability::Gbn { rx, .. } => match rx.on_packet(pkt.psn) {
                        rlb_transport::RxAction::Deliver { ack_psn } => {
                            trace_ev = Some(TraceEvent::Delivered);
                            responses[1] =
                                Some(Packet::response(PacketKind::Ack, &pkt, ack_psn, ctrl_bytes));
                        }
                        rlb_transport::RxAction::OutOfOrder { nak_psn, ood } => {
                            trace_ev = Some(TraceEvent::OutOfOrder { ood });
                            self.ood_histogram.record(ood as u64);
                            if let Some(nak) = nak_psn {
                                responses[1] =
                                    Some(Packet::response(PacketKind::Nak, &pkt, nak, ctrl_bytes));
                            }
                        }
                        rlb_transport::RxAction::Duplicate => {
                            trace_ev = Some(TraceEvent::Duplicate);
                        }
                    },
                    Reliability::Irn { rx, .. } => {
                        if pkt.psn > rx.cumulative() {
                            self.ood_histogram.record((pkt.psn - rx.cumulative()) as u64);
                        }
                        let ood = pkt.psn.saturating_sub(rx.cumulative());
                        match rx.on_packet(pkt.psn) {
                            Some(ack) => {
                                trace_ev = Some(if ack.nack {
                                    TraceEvent::OutOfOrder { ood }
                                } else {
                                    TraceEvent::Delivered
                                });
                                let mut resp =
                                    Packet::response(PacketKind::Ack, &pkt, ack.sack, ctrl_bytes);
                                resp.cum = ack.cumulative;
                                resp.nack = ack.nack;
                                responses[1] = Some(resp);
                            }
                            None => trace_ev = Some(TraceEvent::Duplicate),
                        }
                    }
                }
                if let Some(ev) = trace_ev {
                    if self.traces.wants(pkt.flow) {
                        self.traces.record(pkt.flow, now.as_ps(), pkt.psn, ev);
                    }
                }
                for r in responses.into_iter().flatten() {
                    self.host_send_control(h, r);
                }
            }
            PacketKind::Ack => {
                // RTT sample + CE echo → source-leaf estimators.
                if pkt.path != NO_PATH {
                    let src_leaf = self.topo.leaf_of_host(h);
                    let dst_leaf = self.topo.leaf_of_host(pkt.src_host);
                    let rtt_ns = (now.as_ps().saturating_sub(pkt.sent_ps)) as f64 / 1e3;
                    if let Some(leaf) = self.leaves[src_leaf as usize].leaf.as_mut() {
                        leaf.observe(pkt.path as usize, dst_leaf as usize, rtt_ns, pkt.ecn);
                    }
                }
                let fs = &mut self.flows[pkt.flow as usize];
                let mut irn_has_retx = false;
                match &mut fs.reliability {
                    Reliability::Gbn { tx, .. } => tx.on_ack(pkt.psn),
                    Reliability::Irn { tx, .. } => {
                        tx.on_ack(rlb_transport::IrnAck {
                            cumulative: pkt.cum,
                            sack: pkt.psn,
                            nack: pkt.nack,
                        });
                        irn_has_retx = tx.peek_next().is_some();
                    }
                }
                if fs.reliability.sender_complete() && fs.finish_ps.is_none() {
                    fs.finish_ps = Some(now.as_ps());
                    self.completed += 1;
                    // Completions arrive in canonical order, so the last
                    // write is this shard's maximum completion point.
                    self.last_completion = Some((now.as_ps(), self.cur_key));
                    let flow_id = pkt.flow as u64;
                    let src_leaf = self.topo.leaf_of_host(h) as usize;
                    if let Some(leaf) = self.leaves[src_leaf].leaf.as_mut() {
                        leaf.lb.on_flow_complete(flow_id);
                    }
                    self.hosts[h as usize].gc_flows(&self.flows);
                } else if irn_has_retx {
                    // A NACK opened retransmission work (or the window
                    // reopened): kick the NIC.
                    self.host_try_send(h);
                }
            }
            PacketKind::Nak => {
                if self.traces.wants(pkt.flow) {
                    self.traces
                        .record(pkt.flow, now.as_ps(), pkt.psn, TraceEvent::NakReceived);
                }
                if let Reliability::Gbn { tx, .. } =
                    &mut self.flows[pkt.flow as usize].reliability
                {
                    tx.on_nak(pkt.psn);
                }
                self.host_try_send(h);
            }
            PacketKind::Cnp => {
                self.flows[pkt.flow as usize].dcqcn.on_cnp();
            }
            PacketKind::Cnm { .. } => {
                // Hosts do not participate in rerouting; drop.
            }
        }
    }

    // ------------------------------------------------------------------
    // Switch side
    // ------------------------------------------------------------------

    fn on_link_arrive(&mut self, node: Node, port: u16, pkt: Packet) {
        match node {
            Node::Host(h) => self.on_host_rx(h, pkt),
            _ => self.switch_rx(node, port, pkt),
        }
    }

    fn switch_rx(&mut self, node: Node, in_port: u16, mut pkt: Packet) {
        if let PacketKind::Cnm { origin_node, origin_ingress_port, ttl } = pkt.kind {
            self.handle_cnm(node, in_port, origin_node, origin_ingress_port, ttl);
            return;
        }
        if pkt.kind.is_control() {
            let out = self.route_control(node, &pkt);
            self.enqueue_or_launch(node, out, pkt);
            return;
        }
        // Data plane: buffer admission + PFC accounting.
        let (admitted, action) = {
            let sw = self.switch_mut(node);
            match sw.admit_data(in_port, pkt.size_bytes) {
                Ok(a) => (true, a),
                Err(crate::switch::BufferOverflow) => (false, PfcAction::None),
            }
        };
        if !admitted {
            #[cfg(feature = "audit")]
            self.auditor.on_dropped();
            self.jot(JEffect::BufferDrop);
            return; // tail-dropped; go-back-N will recover end-to-end
        }
        self.apply_pfc_action(node, action);
        pkt.ingress_port = in_port;
        self.jot(JEffect::SwitchPkt);
        self.maybe_activate_sampler(node, in_port);
        self.route_data(node, in_port, pkt);
    }

    /// Egress port for a control frame. Control takes ECMP (hash) at the
    /// leaf — its ordering is irrelevant and it must not perturb the
    /// data-plane LB state.
    fn route_control(&self, node: Node, pkt: &Packet) -> u16 {
        match node {
            Node::Leaf(l) => {
                let dst_leaf = self.topo.leaf_of_host(pkt.dst_host);
                if dst_leaf == l {
                    self.topo.leaf_port_of_host(pkt.dst_host)
                } else {
                    let s = (crate::hash_u64(pkt.flow as u64 ^ 0xC0FFEE)
                        % self.cfg.topo.n_spines as u64) as u32;
                    self.topo.leaf_uplink_port(s)
                }
            }
            Node::Spine(_) => self.topo.leaf_of_host(pkt.dst_host) as u16,
            Node::Host(_) => unreachable!(),
        }
    }

    /// Route a data packet: deterministic except at the source leaf's
    /// uplink choice, where the LB scheme (and RLB) decide.
    fn route_data(&mut self, node: Node, in_port: u16, mut pkt: Packet) {
        let now = self.now();
        let out: u16 = match node {
            Node::Spine(_) => self.topo.leaf_of_host(pkt.dst_host) as u16,
            Node::Leaf(l) => {
                let dst_leaf = self.topo.leaf_of_host(pkt.dst_host);
                if dst_leaf == l {
                    self.topo.leaf_port_of_host(pkt.dst_host)
                } else {
                    // --- the load-balancing decision point ---
                    self.perf_decisions += 1;
                    let snap_idx = self.assemble_paths(l, dst_leaf);
                    let paths = std::mem::take(&mut self.path_snaps[snap_idx].paths);
                    // Path-restricted flows (Fig. 4a's experimental control)
                    // only see a prefix of the uplinks.
                    let visible = match self.flows[pkt.flow as usize].spec.path_limit {
                        Some(k) => &paths[..(k as usize).min(paths.len())],
                        None => &paths[..],
                    };
                    let ctx = Ctx {
                        now_ps: now.as_ps(),
                        flow_id: pkt.flow as u64,
                        dst_leaf,
                        seq: pkt.psn,
                        pkt_bytes: pkt.size_bytes,
                        paths: visible,
                    };
                    let mut rlb_delta = (0u64, 0u64, 0u64);
                    let decision = {
                        let leaf = self.leaves[l as usize].leaf.as_mut().expect("leaf state");
                        match &mut leaf.lb {
                            LbInstance::Vanilla(lb) => Decision::Forward(lb.select(&ctx)),
                            LbInstance::Rlb(rlb) => {
                                // Snapshot the decision counters around the
                                // call: the deltas go through the effect
                                // journal so the sharded final-window trim
                                // sees them (the `Rlb` accumulator itself
                                // is physical state).
                                let b = (
                                    rlb.stats.reroutes,
                                    rlb.stats.forwards_unwarned,
                                    rlb.stats.forced_out,
                                );
                                let d = rlb.decide(&ctx, pkt.recircs as u32);
                                rlb_delta = (
                                    rlb.stats.reroutes - b.0,
                                    rlb.stats.forwards_unwarned - b.1,
                                    rlb.stats.forced_out - b.2,
                                );
                                d
                            }
                        }
                    };
                    // Hand the snapshot back *without* clearing: it stays
                    // valid for later decisions until its stamps go stale.
                    self.path_snaps[snap_idx].paths = paths;
                    if rlb_delta != (0, 0, 0) {
                        self.jot(JEffect::RlbStats {
                            re: rlb_delta.0,
                            fw: rlb_delta.1,
                            fo: rlb_delta.2,
                        });
                    }
                    match decision {
                        Decision::Forward(s) => {
                            pkt.path = s as u8;
                            if self.traces.wants(pkt.flow) {
                                self.traces.record(
                                    pkt.flow,
                                    now.as_ps(),
                                    pkt.psn,
                                    TraceEvent::Routed { path: s as u8 },
                                );
                            }
                            self.topo.leaf_uplink_port(s as u32)
                        }
                        Decision::Recirculate => {
                            if self.traces.wants(pkt.flow) {
                                self.traces.record(
                                    pkt.flow,
                                    now.as_ps(),
                                    pkt.psn,
                                    TraceEvent::Recirculated,
                                );
                            }
                            self.jot(JEffect::Recirc { flow: pkt.flow });
                            pkt.recircs = pkt.recircs.saturating_add(1);
                            let t_rc = self
                                .cfg
                                .rlb
                                .as_ref()
                                .map(|r| r.t_rc_ps)
                                .expect("recirculation without RLB");
                            let rank = self.rank_node(node);
                            self.sched(
                                rank,
                                now + SimDuration(t_rc),
                                Event::Recirculate { node, pkt },
                            );
                            return;
                        }
                    }
                }
            }
            Node::Host(_) => unreachable!(),
        };
        // Dynamic-threshold egress admission, then ECN congestion-point
        // marking against the egress data queue.
        let mark = {
            let sw = self.switch_mut(node);
            if sw.dt_exceeded(out) {
                sw.drops += 1;
                let action = sw.release_data(pkt.ingress_port, pkt.size_bytes);
                #[cfg(feature = "audit")]
                self.auditor.on_dropped();
                self.jot(JEffect::BufferDrop);
                self.apply_pfc_action(node, action);
                return;
            }
            sw.contributors.record(out as usize, in_port as usize, now.as_ps());
            sw.ecn_mark(out)
        };
        pkt.ecn |= mark;
        if mark {
            self.jot(JEffect::EcnMark);
        }
        self.enqueue_or_launch(node, out, pkt);
    }

    fn on_recirculate(&mut self, node: Node, pkt: Packet) {
        // The packet kept its buffer share while looping; it re-enters the
        // routing pipeline with its original ingress accounting.
        let in_port = pkt.ingress_port;
        self.route_data(node, in_port, pkt);
    }

    /// Snapshot every uplink's state for the LB decision; returns the index
    /// of the (leaf, dst_leaf) snapshot in `path_snaps`.
    ///
    /// Incremental with per-spine dirty bits: the stored snapshot carries
    /// one generation stamp per spine for each independent input, and three
    /// tiers apply, cheapest first:
    ///
    /// 1. *Reuse* — every per-spine stamp current, fault epoch unchanged,
    ///    no armed warning expired: the snapshot is byte-identical to a
    ///    rebuild, return as-is.
    /// 2. *Refresh* — some spines went stale: rewrite exactly those entries
    ///    in place (`queue_bytes`/`paused` for a queue-generation bump,
    ///    `rtt_ns`/`ecn_fraction`/`warned` for a signal-generation bump),
    ///    leaving clean spines untouched.
    /// 3. *Rebuild* — first touch of the pair, or the fault epoch moved:
    ///    reconstruct from scratch.
    ///
    /// Every field source is covered by a stamp input — `data_q_bytes` and
    /// PFC `paused` by the per-port `EgressPort::q_gen`; `rtt_ns` /
    /// `ecn_fraction` and warning *insertions* by the per-(spine, dst_leaf)
    /// `path_sig_gen` plus the per-spine `uplink_sig_gen`; warning *expiry*
    /// (time-based, bumps nothing) by `valid_until_ps` against the stored
    /// per-spine deadlines; and `link_rate_bps` / `link_down` change only
    /// through fault events, which bump `fault_epoch` — so a reused or
    /// refreshed entry equals what a rebuild would produce and replays stay
    /// bit-exact (verified by the A/B `--stable-json` acceptance runs).
    fn assemble_paths(&mut self, leaf: u32, dst_leaf: u32) -> usize {
        let now_ps = self.now().as_ps();
        let n_spines = self.cfg.topo.n_spines as usize;
        let n_leaves = self.cfg.topo.n_leaves as usize;
        let hpl = self.cfg.topo.hosts_per_leaf as usize;
        let rlb_on = self.cfg.rlb.is_some();
        let sw = &self.leaves[leaf as usize];
        let ls = sw.leaf.as_ref().expect("leaf state");
        let dst = dst_leaf as usize;
        let snap_idx = leaf as usize * n_leaves + dst;
        let snap = &mut self.path_snaps[snap_idx];

        if !snap.init || snap.fault_epoch != self.fault_epoch || snap.paths.len() != n_spines {
            // Tier 3: full rebuild.
            snap.paths.clear();
            // First instant at which a currently-armed warning lapses; the
            // snapshot's warned bits go stale there. Unwarned paths can
            // only *become* warned through warn_* calls, which bump the
            // signal generations.
            let mut valid_until = u64::MAX;
            for s in 0..n_spines {
                let ep = &sw.egress[hpl + s];
                let until = if rlb_on {
                    ls.warnings.warned_until(s, dst)
                } else {
                    0
                };
                let warned = until > now_ps;
                if warned {
                    valid_until = valid_until.min(until);
                }
                snap.warned_until_ps[s] = until;
                snap.q_gens[s] = ep.q_gen;
                snap.sig_gens[s] = ls.path_sig_gen(s, dst);
                snap.uplink_gens[s] = ls.uplink_sig_gen(s);
                snap.paths.push(PathInfo {
                    queue_bytes: ep.data_q_bytes,
                    paused: ep.data_blocked(),
                    warned,
                    rtt_ns: ls.rtt(s, dst),
                    ecn_fraction: ls.ecn(s, dst),
                    link_rate_bps: ep.rate_bps as f64,
                });
            }
            snap.valid_until_ps = valid_until;
            snap.fault_epoch = self.fault_epoch;
            snap.init = true;
            self.snap_rebuilds += 1;
            return snap_idx;
        }

        // Tiers 1 and 2 in one pass: rewrite exactly the spines whose
        // generation went stale (or whose warned bit the expiry boundary
        // can have flipped), counting as we go. A clean, unexpired pass
        // rewrites nothing and classifies as a reuse.
        let expired = now_ps >= snap.valid_until_ps;
        let mut q_dirty = 0u64;
        let mut sig_dirty = 0u64;
        for s in 0..n_spines {
            let ep = &sw.egress[hpl + s];
            if snap.q_gens[s] != ep.q_gen {
                q_dirty += 1;
                let p = &mut snap.paths[s];
                p.queue_bytes = ep.data_q_bytes;
                p.paused = ep.data_blocked();
                snap.q_gens[s] = ep.q_gen;
            }
            let sg = ls.path_sig_gen(s, dst);
            let ug = ls.uplink_sig_gen(s);
            if snap.sig_gens[s] != sg || snap.uplink_gens[s] != ug {
                sig_dirty += 1;
                let until = if rlb_on {
                    ls.warnings.warned_until(s, dst)
                } else {
                    0
                };
                let p = &mut snap.paths[s];
                snap.warned_until_ps[s] = until;
                p.warned = until > now_ps;
                p.rtt_ns = ls.rtt(s, dst);
                p.ecn_fraction = ls.ecn(s, dst);
                snap.sig_gens[s] = sg;
                snap.uplink_gens[s] = ug;
            } else if expired {
                // No new signal, but time crossed the snapshot's earliest
                // warning deadline: recompute the bit from the stored one.
                snap.paths[s].warned = snap.warned_until_ps[s] > now_ps;
            }
        }
        if !expired && q_dirty == 0 && sig_dirty == 0 {
            // Tier 1: byte-identical reuse (nothing was rewritten above).
            self.snap_reuses += 1;
            return snap_idx;
        }
        if expired || sig_dirty > 0 {
            let mut valid_until = u64::MAX;
            for &until in &snap.warned_until_ps {
                if until > now_ps {
                    valid_until = valid_until.min(until);
                }
            }
            snap.valid_until_ps = valid_until;
        }
        self.snap_refreshes += 1;
        self.snap_dirty_q_spines += q_dirty;
        self.snap_dirty_sig_spines += sig_dirty;
        snap_idx
    }

    fn try_transmit(&mut self, node: Node, port: u16) {
        let (pkt, rate) = {
            let (sw, arena) = self.switch_and_arena(node);
            if sw.egress[port as usize].busy {
                return;
            }
            match sw.next_to_transmit(arena, port) {
                Some(p) => {
                    sw.egress[port as usize].busy = true;
                    (p, sw.egress[port as usize].rate_bps)
                }
                None => return,
            }
        };
        self.launch(node, port, pkt, rate);
    }

    /// Hand `pkt` to `node`'s egress `port`. When the port would transmit
    /// it immediately ([`Switch::pass_through`]) the packet launches
    /// directly, skipping the arena alloc/free round trip a queue visit
    /// would cost — the dominant case on quiet ports, and the bulk of the
    /// per-hop indirection overhead the arena introduced. Otherwise it
    /// parks on the class queue and the transmitter is kicked. Both paths
    /// produce identical simulation state and events: the bypass fires
    /// exactly when `enqueue` + `next_to_transmit` would hand the same
    /// packet straight back with every queue counter netting to zero.
    fn enqueue_or_launch(&mut self, node: Node, port: u16, pkt: Packet) {
        let now_ps = self.now().as_ps();
        let control = pkt.kind.is_control();
        let (sw, arena) = self.switch_and_arena(node);
        if sw.pass_through(port, control) {
            sw.egress[port as usize].busy = true;
            let rate = sw.egress[port as usize].rate_bps;
            self.launch(node, port, pkt, rate);
            return;
        }
        sw.enqueue(arena, port, pkt, now_ps);
        self.try_transmit(node, port);
    }

    /// Schedule serialization and wire arrival for `pkt` leaving `node` on
    /// a `port` the caller already marked busy.
    fn launch(&mut self, node: Node, port: u16, pkt: Packet, rate: u64) {
        let now = self.now();
        let ser = tx_delay(pkt.size_bytes as u64, rate);
        let prop = SimDuration(self.cfg.topo.link_delay_ps);
        let release = (!pkt.kind.is_control()).then_some((pkt.ingress_port, pkt.size_bytes));
        let (peer, peer_port) = self.topo.peer(node, port);
        let rank = self.rank_node(node);
        self.sched(rank, now + ser, Event::EgressDone { node, port, release });
        self.sched_wire(
            rank,
            peer,
            now + ser + prop,
            Event::LinkArrive {
                node: peer,
                port: peer_port,
                pkt,
            },
        );
    }

    fn on_egress_done(&mut self, node: Node, port: u16, release: Option<(u16, u32)>) {
        let action = {
            let sw = self.switch_mut(node);
            sw.egress[port as usize].busy = false;
            match release {
                Some((ingress, bytes)) => sw.release_data(ingress, bytes),
                None => PfcAction::None,
            }
        };
        self.apply_pfc_action(node, action);
        self.try_transmit(node, port);
    }

    fn apply_pfc_action(&mut self, node: Node, action: PfcAction) {
        let now = self.now();
        let prop = SimDuration(self.cfg.topo.link_delay_ps);
        let (port, pause) = match action {
            PfcAction::None => return,
            PfcAction::SendPause(p) => (p, true),
            PfcAction::SendResume(p) => (p, false),
        };
        let id = match node {
            Node::Leaf(l) => (false, l),
            Node::Spine(s) => (true, s),
            Node::Host(_) => unreachable!("hosts do not emit PFC"),
        };
        if pause {
            self.jot(JEffect::Pause { id, port });
        } else {
            self.jot(JEffect::Resume);
        }
        #[cfg(feature = "audit")]
        {
            // The auditor ledger tracks *physical* frames, paired against
            // live pause flags — it stays immediate even in sharded mode.
            if pause {
                self.auditor.on_pause_sent(id, port);
            } else {
                self.auditor.on_resume_sent(id, port);
            }
        }
        let (peer, peer_port) = self.topo.peer(node, port);
        let rank = self.rank_node(node);
        self.sched_wire(
            rank,
            peer,
            now + prop,
            Event::PauseFrame {
                node: peer,
                port: peer_port,
                pause,
            },
        );
    }

    fn on_pause_frame(&mut self, node: Node, port: u16, pause: bool) {
        let now_ps = self.now().as_ps();
        match node {
            Node::Host(h) => {
                let host = &mut self.hosts[h as usize];
                if pause && !host.paused {
                    host.paused = true;
                    host.paused_since_ps = now_ps;
                } else if !pause && host.paused {
                    host.paused = false;
                    let dwell =
                        SimTime(now_ps).saturating_since(SimTime(host.paused_since_ps));
                    self.jot(JEffect::PausedDwell(dwell));
                    self.host_try_send(h);
                }
            }
            _ => {
                let was_paused = {
                    let sw = self.switch_mut(node);
                    let ep = &mut sw.egress[port as usize];
                    let was = ep.paused;
                    if pause && !was {
                        ep.paused = true;
                        ep.paused_since_ps = now_ps;
                        ep.q_gen = ep.q_gen.wrapping_add(1);
                    } else if !pause && was {
                        ep.paused = false;
                        ep.q_gen = ep.q_gen.wrapping_add(1);
                    }
                    was
                };
                if !pause && was_paused {
                    let since = self.switch_mut(node).egress[port as usize].paused_since_ps;
                    let dwell = SimTime(now_ps).saturating_since(SimTime(since));
                    self.jot(JEffect::PausedDwell(dwell));
                    self.try_transmit(node, port);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Apply fault-timeline entry `i` (see [`crate::fault`]).
    ///
    /// Faults mutate link/NIC state and nothing else: no packet is dropped,
    /// no queue is cleared, so the audit ledger balances across every
    /// failure and recovery. Whatever a fault touched, the cached path
    /// snapshot is invalidated wholesale — `link_rate_bps` and link state
    /// are otherwise only read at rebuild time.
    fn on_fault(&mut self, i: u32) {
        match self.cfg.faults[i as usize].fault {
            Fault::LinkDown { leaf, spine } => self.fault_set_link_down(leaf, spine, true),
            Fault::LinkUp { leaf, spine } => self.fault_set_link_down(leaf, spine, false),
            Fault::LinkRate {
                leaf,
                spine,
                rate_bps,
            } => self.fault_set_link_rate(leaf, spine, rate_bps),
            Fault::SpineDown { spine } => {
                for leaf in 0..self.cfg.topo.n_leaves {
                    self.fault_set_link_down(leaf, spine, true);
                }
            }
            Fault::SpineUp { spine } => {
                for leaf in 0..self.cfg.topo.n_leaves {
                    self.fault_set_link_down(leaf, spine, false);
                }
            }
            Fault::LoadScale { permille } => {
                self.host_rate_scale_permille = permille;
            }
        }
        // Fault events are replicated on every shard; exactly one replica
        // (shard 0 — also the sequential engine) reports the application.
        if self.shard_id == 0 {
            self.jot(JEffect::Fault);
        }
        self.fault_epoch = self.fault_epoch.wrapping_add(1);
    }

    /// Fail or restore the bidirectional `leaf <-> spine` link. Idempotent.
    /// Queued packets freeze on a downed port (the fault never drops); both
    /// directions are kicked on recovery so frozen queues resume draining.
    fn fault_set_link_down(&mut self, leaf: u32, spine: u32, down: bool) {
        let up_port = self.topo.leaf_uplink_port(spine) as usize;
        // Link state is only read at snapshot-rebuild time; `on_fault`
        // bumps the fault epoch, which forces exactly that.
        let lsw = &mut self.leaves[leaf as usize];
        lsw.egress[up_port].link_down = down;
        let ssw = &mut self.spines[spine as usize];
        ssw.egress[leaf as usize].link_down = down;
        if !down {
            // The state flip above is replicated everywhere; the transmit
            // kicks schedule real events, so only the owner issues them.
            if self.owns(Node::Leaf(leaf)) {
                self.try_transmit(Node::Leaf(leaf), up_port as u16);
            }
            if self.owns(Node::Spine(spine)) {
                self.try_transmit(Node::Spine(spine), leaf as u16);
            }
        }
    }

    /// Re-rate the bidirectional `leaf <-> spine` link (mid-run asymmetric
    /// degradation). Frames already serializing finish at the old rate.
    fn fault_set_link_rate(&mut self, leaf: u32, spine: u32, rate_bps: u64) {
        let up_port = self.topo.leaf_uplink_port(spine) as usize;
        let lsw = &mut self.leaves[leaf as usize];
        lsw.egress[up_port].rate_bps = rate_bps;
        let ssw = &mut self.spines[spine as usize];
        ssw.egress[leaf as usize].rate_bps = rate_bps;
    }

    // ------------------------------------------------------------------
    // RLB: prediction and CNM plumbing
    // ------------------------------------------------------------------

    /// Start Δt sampling for an ingress port once it shows congestion
    /// (half the warning threshold), per §3.2.1's "only performs
    /// prediction when there is congestion". The sampling clock itself is
    /// one `PredictorTick` per switch; activating a port joins it to the
    /// switch's tick (arming the tick if it isn't running).
    fn maybe_activate_sampler(&mut self, node: Node, in_port: u16) {
        let dt = match self.cfg.rlb.as_ref() {
            Some(rcfg) => rcfg.dt_ps,
            None => return,
        };
        let now = self.now();
        let arm = {
            let sw = self.switch_mut(node);
            if sw.predictors.is_empty() || sw.sampler_active[in_port as usize] {
                return;
            }
            let activation = sw.predictors[in_port as usize].qth_bytes() / 2;
            if sw.ingress_bytes[in_port as usize] < activation.max(1) {
                return;
            }
            sw.sampler_active[in_port as usize] = true;
            sw.predictors[in_port as usize].reset();
            let arm = !sw.sampler_tick_armed;
            sw.sampler_tick_armed = true;
            arm
        };
        if arm {
            let rank = self.rank_node(node);
            self.sched(rank, now + SimDuration(dt), Event::PredictorTick(node));
        }
    }

    /// One Δt tick for a switch: sample every active ingress port in
    /// ascending port order (deterministic CNM emission), deactivate ports
    /// that went quiet, and keep ticking while any port stays active.
    fn on_predictor_tick(&mut self, node: Node) {
        let dt = match self.cfg.rlb.as_ref() {
            Some(rcfg) => rcfg.dt_ps,
            None => return,
        };
        let now = self.now();
        let mut warns = std::mem::take(&mut self.warn_scratch);
        warns.clear();
        let keep_ticking = {
            let sw = self.switch_mut(node);
            let mut any_active = false;
            for port in 0..sw.n_ports() {
                if !sw.sampler_active[port] {
                    continue;
                }
                let qlen = sw.ingress_bytes[port];
                let pred = sw.predictors[port].on_sample(now.as_ps(), qlen);
                if pred == Prediction::Warn {
                    warns.push(port as u16);
                }
                // Keep sampling while the port stays congested.
                let activation = sw.predictors[port].qth_bytes() / 2;
                if qlen >= activation.max(1) || pred == Prediction::Warn {
                    any_active = true;
                } else {
                    sw.sampler_active[port] = false;
                    sw.predictors[port].reset();
                }
            }
            sw.sampler_tick_armed = any_active;
            any_active
        };
        if !warns.is_empty() {
            self.jot(JEffect::CnmGen(warns.len() as u64));
        }
        for &port in &warns {
            self.send_cnm_upstream(node, port, encode_node(node), port, self.cnm_ttl);
        }
        self.warn_scratch = warns;
        if keep_ticking {
            let rank = self.rank_node(node);
            self.sched(rank, now + SimDuration(dt), Event::PredictorTick(node));
        }
    }

    /// Emit a CNM out of `out_port`'s reverse link (toward the upstream
    /// neighbour feeding that ingress). Skips host neighbours — servers
    /// cannot reroute.
    fn send_cnm_upstream(
        &mut self,
        node: Node,
        out_port: u16,
        origin_node: u32,
        origin_port: u16,
        ttl: u8,
    ) {
        let (peer, _) = self.topo.peer(node, out_port);
        if matches!(peer, Node::Host(_)) {
            return;
        }
        let pkt = Packet {
            kind: PacketKind::Cnm {
                origin_node,
                origin_ingress_port: origin_port,
                ttl,
            },
            flow: u32::MAX,
            psn: 0,
            size_bytes: self.cfg.transport.ctrl_bytes,
            src_host: u32::MAX,
            dst_host: u32::MAX,
            ecn: false,
            sent_ps: self.now().as_ps(),
            path: NO_PATH,
            recircs: 0,
            ingress_port: 0,
            cum: 0,
            nack: false,
        };
        self.enqueue_or_launch(node, out_port, pkt);
    }

    /// CNM arrived at `node` on `in_port`.
    ///
    /// * At a **leaf**, arriving from a spine: record the warning —
    ///   path-granular if the origin is a (destination) leaf's uplink
    ///   ingress, uplink-granular if the origin is the spine's own ingress
    ///   from *this* leaf.
    /// * At a **spine**: relay toward the leaves that recently contributed
    ///   traffic to the endangered direction (the paper's flow-table
    ///   driven hop-by-hop propagation).
    fn handle_cnm(&mut self, node: Node, in_port: u16, origin_node: u32, origin_port: u16, ttl: u8) {
        let now = self.now();
        // Copy the one field we need instead of cloning the whole RlbConfig
        // on every CNM (this runs per control frame under congestion).
        let warn_lifetime_ps = match self.cfg.rlb.as_ref() {
            Some(rcfg) => rcfg.warn_lifetime_ps,
            None => return, // CNMs in a fabric without RLB: ignore
        };
        match node {
            Node::Leaf(l) => {
                let Some(via_spine) = self.topo.spine_of_leaf_port(in_port) else {
                    return; // CNM from a host port: not meaningful
                };
                let until = (now + SimDuration(warn_lifetime_ps)).as_ps();
                let origin = decode_node(origin_node);
                let sw = &mut self.leaves[l as usize];
                let ls = sw.leaf.as_mut().expect("leaf state");
                match origin {
                    Node::Leaf(dst_leaf) => {
                        // Congestion predicted at dst_leaf's ingress from
                        // some spine: that (spine, dst_leaf) path is hot.
                        if let Some(s) = self.topo.spine_of_leaf_port(origin_port) {
                            if dst_leaf != l {
                                ls.warnings.warn_path(s as usize, dst_leaf as usize, until);
                                ls.note_path_warn(s as usize, dst_leaf as usize);
                            }
                        }
                    }
                    Node::Spine(s) => {
                        // Congestion at spine s's ingress from leaf
                        // `origin_port`: only relevant if that leaf is us —
                        // then every path through s from here is endangered.
                        if origin_port as u32 == l {
                            ls.warnings.warn_uplink(s as usize, until);
                            ls.note_uplink_warn(s as usize);
                        } else if s == via_spine {
                            // Another leaf overloads this spine's ingress;
                            // its egress toward our destinations may still
                            // pause. Treat as a mild uplink warning too.
                            ls.warnings.warn_uplink(s as usize, until);
                            ls.note_uplink_warn(s as usize);
                        }
                    }
                    Node::Host(_) => {}
                }
            }
            Node::Spine(_) => {
                if ttl == 0 {
                    return;
                }
                // Relay to recent contributors of the egress pointing back
                // at the CNM's arrival direction (the endangered path).
                let targets: Vec<usize> = {
                    let sw = self.switch_mut(node);
                    sw.contributors
                        .contributors(in_port as usize, now.as_ps())
                        .filter(|&p| p != in_port as usize)
                        .collect()
                };
                for p in targets {
                    self.jot(JEffect::CnmRelay);
                    self.send_cnm_upstream(node, p as u16, origin_node, origin_port, ttl - 1);
                }
            }
            Node::Host(_) => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Transport timers
    // ------------------------------------------------------------------

    /// Global alpha-update tick: one *replicated* event per shard services
    /// every active flow this shard owns (all of them, sequentially), then
    /// re-arms unconditionally — the fixed tick phase is part of the
    /// canonical-order contract between shard replicas (see `new_shard`).
    /// The run still terminates: completion and the hard stop end the
    /// event loop, not queue drain.
    fn on_alpha_tick(&mut self) {
        for i in 0..self.flows.len() {
            if !self.owns_flow(i) {
                continue;
            }
            let fs = &mut self.flows[i];
            if fs.started && !fs.is_complete() {
                fs.dcqcn.on_alpha_timer();
            }
        }
        let dt = SimDuration(self.cfg.transport.dcqcn.alpha_timer_ps);
        let at = self.now() + dt;
        self.sched(RANK_GLOBAL, at, Event::AlphaTick);
    }

    /// Global rate-increase tick. Hosts are kicked at most once per tick
    /// (ascending host id — deterministic), however many of their flows
    /// just got a rate increase. Owned flows only; re-arms like
    /// `on_alpha_tick`.
    fn on_increase_tick(&mut self) {
        self.host_kick_scratch.fill(false);
        for i in 0..self.flows.len() {
            if !self.owns_flow(i) {
                continue;
            }
            let fs = &mut self.flows[i];
            if fs.started && !fs.is_complete() {
                fs.dcqcn.on_increase_timer();
                // Rate may have increased — the flow could be eligible sooner.
                self.host_kick_scratch[fs.spec.src_host as usize] = true;
            }
        }
        let dt = SimDuration(self.cfg.transport.dcqcn.increase_timer_ps);
        let at = self.now() + dt;
        self.sched(RANK_GLOBAL, at, Event::IncreaseTick);
        for h in 0..self.host_kick_scratch.len() {
            if self.host_kick_scratch[h] {
                self.host_try_send(h as u32);
            }
        }
    }

    fn on_rto_check(&mut self, f: u32) {
        if self.flows[f as usize].is_complete() {
            return;
        }
        let (stuck, host) = {
            let fs = &mut self.flows[f as usize];
            let mark = fs.reliability.progress_mark();
            let stuck = mark == fs.last_una_at_rto && fs.reliability.has_outstanding();
            fs.last_una_at_rto = mark;
            (stuck, fs.spec.src_host)
        };
        if stuck && self.flows[f as usize].reliability.on_timeout() {
            if self.traces.wants(f) {
                let mark = self.flows[f as usize].reliability.progress_mark();
                self.traces
                    .record(f, self.now().as_ps(), mark, TraceEvent::TimeoutRewind);
            }
            self.host_try_send(host);
        }
        let dt = SimDuration(self.cfg.transport.rto_ps);
        let at = self.now() + dt;
        let rank = self.rank_host(host);
        self.sched(rank, at, Event::RtoCheck(f));
    }

    // ------------------------------------------------------------------
    // Sharded-driver surface (see `crate::shard`)
    // ------------------------------------------------------------------

    /// Dispatch every pending event strictly before `end`; returns the
    /// number dispatched. The bounded-window driver's inner loop: safe
    /// because every cross-shard effect carries at least one link
    /// propagation delay, so nothing produced elsewhere during this window
    /// can land before `end`.
    pub(crate) fn dispatch_window(&mut self, end: SimTime) -> u64 {
        let mut dispatched = 0;
        while let Some((_t, key, ev)) = self.q.pop_before(end) {
            self.cur_key = key;
            dispatched += 1;
            self.dispatch(ev);
        }
        dispatched
    }

    pub(crate) fn take_outbox(&mut self, dst: u16) -> Vec<WireMsg> {
        std::mem::take(&mut self.outbox[dst as usize])
    }

    pub(crate) fn deliver(&mut self, msgs: Vec<WireMsg>) {
        for m in msgs {
            self.q.insert_message(m.at, m.key, m.ev);
        }
    }

    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    pub(crate) fn local_now(&self) -> SimTime {
        self.q.now()
    }

    pub(crate) fn completed_flows(&self) -> usize {
        self.completed
    }

    pub(crate) fn last_completion(&self) -> Option<(u64, u128)> {
        self.last_completion
    }

    /// `(src shard, dst shard)` owning flow `i`'s endpoints — the record
    /// merge takes sender-side fields from the former, receiver-side OOO
    /// fields from the latter.
    pub(crate) fn flow_endpoint_shards(&self, i: usize) -> (u16, u16) {
        (
            self.shard_of(Node::Host(self.flows[i].spec.src_host)),
            self.shard_of(Node::Host(self.flows[i].spec.dst_host)),
        )
    }

    pub(crate) fn finalize_counters(&mut self) {
        self.counters.paused_port_time_ps = self.paused_port_time.as_ps();
    }

    /// Tear one shard replica down into the pieces the driver merges.
    pub(crate) fn into_parts(mut self) -> ShardParts {
        self.finalize_counters();
        let records = self.build_records();
        ShardParts {
            records,
            counters: self.counters,
            ood_histogram: self.ood_histogram,
            groups: self.flows.iter().map(|f| f.spec.group).collect(),
            pfc_pauses_by_port: self.pfc_pauses_by_port,
            perf_decisions: self.perf_decisions,
            snap_reuses: self.snap_reuses,
            snap_refreshes: self.snap_refreshes,
            snap_rebuilds: self.snap_rebuilds,
            snap_dirty_q_spines: self.snap_dirty_q_spines,
            snap_dirty_sig_spines: self.snap_dirty_sig_spines,
            arena_high_water: self.arena.high_water() as u64,
            arena_capacity: self.arena.capacity() as u64,
        }
    }

    /// Shard-local slice of the audit sweep: arena/queue balance, buffer
    /// occupancy (and PFC pairing when `drain`) for this shard's switches,
    /// plus this shard's edge counters. Returns
    /// `(injected, arrived, dropped, in_fabric)` where `in_fabric` counts
    /// buffered + in-flight + recirculating data packets held here; the
    /// driver sums partials across shards and asserts the global
    /// conservation balance every window (a shard alone sees only its side
    /// of each flow, so the per-shard books never balance).
    #[cfg(feature = "audit")]
    pub(crate) fn audit_partial(&mut self, drain: bool) -> (u64, u64, u64, u64) {
        let (mut in_flight, mut recirc) = self.audit_horizon_in_flight;
        for ev in self.q.iter_events() {
            let (f, r) = Self::audit_event_packets(ev);
            in_flight += f;
            recirc += r;
        }
        let queued: usize = self
            .leaves
            .iter()
            .chain(self.spines.iter())
            .flat_map(|sw| sw.egress.iter())
            .map(|ep| ep.data_q.len() + ep.ctrl_q.len())
            .sum::<usize>()
            + self.host_ctrl.iter().map(|q| q.len()).sum::<usize>();
        assert_eq!(
            queued,
            self.arena.len(),
            "packet arena out of balance on shard {}: {} handles queued, {} slots live",
            self.shard_id,
            queued,
            self.arena.len(),
        );
        let leaves = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, sw)| ((false, i as u32), sw));
        let spines = self
            .spines
            .iter()
            .enumerate()
            .map(|(i, sw)| ((true, i as u32), sw));
        let buffered = self.auditor.check_partial(
            self.q.now().as_ps(),
            leaves.chain(spines),
            &self.arena,
            drain,
        );
        (
            self.auditor.injected,
            self.auditor.arrived,
            self.auditor.dropped,
            buffered + in_flight + recirc,
        )
    }
}

/// Everything the sharded driver needs from one consumed shard replica to
/// assemble the merged [`RunResult`].
pub(crate) struct ShardParts {
    pub records: Vec<FlowRecord>,
    pub counters: FabricCounters,
    pub ood_histogram: LogHistogram,
    pub groups: Vec<u64>,
    pub pfc_pauses_by_port: std::collections::BTreeMap<((bool, u32), u16), u64>,
    pub perf_decisions: u64,
    pub snap_reuses: u64,
    pub snap_refreshes: u64,
    pub snap_rebuilds: u64,
    pub snap_dirty_q_spines: u64,
    pub snap_dirty_sig_spines: u64,
    pub arena_high_water: u64,
    pub arena_capacity: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnm_origin_encoding_round_trips() {
        for node in [Node::Leaf(0), Node::Leaf(11), Node::Spine(0), Node::Spine(39)] {
            assert_eq!(decode_node(encode_node(node)), node);
        }
        // Leaves and spines never collide.
        assert_ne!(encode_node(Node::Leaf(3)), encode_node(Node::Spine(3)));
    }

    #[test]
    #[should_panic]
    fn host_origin_is_rejected() {
        encode_node(Node::Host(0));
    }

    fn rec(start: u64, finish: Option<u64>) -> rlb_metrics::FlowRecord {
        rlb_metrics::FlowRecord {
            flow_id: 0,
            src_host: 0,
            dst_host: 1,
            size_bytes: 1,
            total_packets: 1,
            start_ps: start,
            finish_ps: finish,
            ooo_packets: 0,
            max_ood: 0,
            packets_sent: 1,
            naks: 0,
            recirculations: 0,
        }
    }

    fn result_with(records: Vec<rlb_metrics::FlowRecord>, groups: Vec<u64>) -> RunResult {
        RunResult {
            records,
            counters: FabricCounters::default(),
            ood_histogram: LogHistogram::new(),
            end_time: SimTime::from_ms(10),
            events_processed: 0,
            groups,
            timeseries: Default::default(),
            traces: Default::default(),
            pfc_pauses_by_port: Default::default(),
            perf: PerfStats::default(),
        }
    }

    #[test]
    fn run_result_group_completion() {
        // Build a RunResult by hand to exercise the group reduction.
        let res = result_with(
            vec![
                rec(0, Some(2_000_000_000)),             // group 1
                rec(1_000_000_000, Some(5_000_000_000)), // group 1 (last)
                rec(0, None),                            // group 2, incomplete
                rec(0, Some(1_000_000_000)),             // untagged
            ],
            vec![1, 1, 2, u64::MAX],
        );
        let groups = res.group_completion_ms();
        // Group 1 completes at 5 ms from start 0 → 5.0 ms; group 2 has an
        // unfinished flow → excluded; untagged ignored.
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, 1);
        assert!((groups[0].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn group_with_incomplete_first_record_is_excluded() {
        // The unfinished flow is the group's FIRST record: the accumulator
        // must seed from it (None), not from a Some(0) sentinel that a
        // later finished record would "max" over.
        let res = result_with(
            vec![
                rec(0, None),                            // group 7, incomplete, first
                rec(1_000_000_000, Some(4_000_000_000)), // group 7, finished
            ],
            vec![7, 7],
        );
        assert!(res.group_completion_ms().is_empty());
    }

    #[test]
    fn fully_complete_group_uses_its_own_extremes() {
        // All-complete group: completion = max finish − min start, even
        // when the earliest-starting record is not the first listed.
        let res = result_with(
            vec![
                rec(3_000_000_000, Some(4_000_000_000)), // group 9
                rec(2_000_000_000, Some(9_000_000_000)), // group 9, min start + max finish
                rec(5_000_000_000, Some(6_000_000_000)), // group 9
            ],
            vec![9, 9, 9],
        );
        let groups = res.group_completion_ms();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, 9);
        // 9 ms − 2 ms = 7 ms.
        assert!((groups[0].1 - 7.0).abs() < 1e-9);
    }
}
