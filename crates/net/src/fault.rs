//! Declarative fault timeline: scheduled failures injected into a run.
//!
//! A scenario carries an ordered list of [`TimedFault`]s in
//! [`crate::SimConfig::faults`]. At construction the simulator schedules one
//! wheel event per entry, so faults fire in the same deterministic
//! `(time, seq)` order as every other event and bit-identical replay is
//! preserved — a faulted run is just a run with a few more events.
//!
//! The model is deliberately mechanical: a fault mutates link state (up/down,
//! rate) or host NIC capacity, and *everything else is emergent*. A downed
//! link freezes its egress queues in place — packets are never dropped by the
//! fault itself, so the `audit` feature's packet-conservation sweep holds
//! across failure and recovery. Frozen queues keep their buffer shares, which
//! drives PFC PAUSE upstream, which feeds the predictor/CNM chain — exactly
//! the regime where RLB's warnings pay off and warning-blind schemes keep
//! spraying into a stalled path.
//!
//! Leaf-switch failures are intentionally absent: in a two-tier leaf–spine
//! fabric a dead leaf strands its hosts entirely, which measures nothing
//! about load balancing. Spine failures ([`Fault::SpineDown`]) are the
//! interesting whole-switch case and are modelled as all of the spine's
//! links going down at once.

use crate::config::TopoConfig;
use rlb_engine::{SimDuration, SimTime};
use serde::Serialize;

/// One fault kind. All variants are idempotent: downing a downed link or
/// restoring a healthy one is a no-op (beyond counting as applied), so
/// overlapping timelines (e.g. a spine failure spanning a link flap) need no
/// reference counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Fault {
    /// Take the bidirectional `leaf <-> spine` link down. In-flight packets
    /// still deliver (they are already on the wire); queued packets freeze.
    LinkDown { leaf: u32, spine: u32 },
    /// Restore the link. Frozen queues drain from where they stopped.
    LinkUp { leaf: u32, spine: u32 },
    /// Set the link's rate in both directions — mid-run asymmetric
    /// degradation (the static variant lives in `TopoConfig::degraded_links`).
    LinkRate {
        leaf: u32,
        spine: u32,
        rate_bps: u64,
    },
    /// Take every link of one spine switch down (whole-switch failure).
    SpineDown { spine: u32 },
    /// Restore every link of the spine to up, at its configured rate.
    SpineUp { spine: u32 },
    /// Scale every host NIC line rate to `permille`/1000 of its configured
    /// value — time-varying load scaling (1000 restores nominal rate).
    LoadScale { permille: u32 },
}

/// A fault bound to the instant it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TimedFault {
    pub at: SimTime,
    pub fault: Fault,
}

impl TimedFault {
    pub const fn new(at: SimTime, fault: Fault) -> TimedFault {
        TimedFault { at, fault }
    }
}

/// Expand a link flap into its down/up pairs: `cycles` repetitions of
/// "down for `down_for`, then up for `up_for`", the first outage starting at
/// `start`. Returned entries are time-ordered.
pub fn flap(
    leaf: u32,
    spine: u32,
    start: SimTime,
    down_for: SimDuration,
    up_for: SimDuration,
    cycles: u32,
) -> Vec<TimedFault> {
    let mut out = Vec::with_capacity(cycles as usize * 2);
    let mut t = start;
    for _ in 0..cycles {
        out.push(TimedFault::new(t, Fault::LinkDown { leaf, spine }));
        t += down_for;
        out.push(TimedFault::new(t, Fault::LinkUp { leaf, spine }));
        t += up_for;
    }
    out
}

/// Validate a timeline against a topology: every index in range, every rate
/// and scale non-zero, entries sorted by firing time (so the schedule reads
/// top-to-bottom and replay order is obvious from the spec).
pub fn validate_timeline(faults: &[TimedFault], topo: &TopoConfig) -> Result<(), String> {
    let mut prev = SimTime::ZERO;
    for (i, tf) in faults.iter().enumerate() {
        if tf.at < prev {
            return Err(format!(
                "fault timeline entry {i} fires at {} ps, before entry {} at {} ps \
                 (timeline must be sorted by time)",
                tf.at.as_ps(),
                i - 1,
                prev.as_ps()
            ));
        }
        prev = tf.at;
        let check_link = |leaf: u32, spine: u32| -> Result<(), String> {
            if leaf >= topo.n_leaves {
                return Err(format!(
                    "fault timeline entry {i}: leaf {leaf} out of range (topology has {} leaves)",
                    topo.n_leaves
                ));
            }
            if spine >= topo.n_spines {
                return Err(format!(
                    "fault timeline entry {i}: spine {spine} out of range (topology has {} spines)",
                    topo.n_spines
                ));
            }
            Ok(())
        };
        match tf.fault {
            Fault::LinkDown { leaf, spine } | Fault::LinkUp { leaf, spine } => {
                check_link(leaf, spine)?;
            }
            Fault::LinkRate {
                leaf,
                spine,
                rate_bps,
            } => {
                check_link(leaf, spine)?;
                if rate_bps == 0 {
                    return Err(format!(
                        "fault timeline entry {i}: link rate must be non-zero"
                    ));
                }
            }
            Fault::SpineDown { spine } | Fault::SpineUp { spine } => {
                if spine >= topo.n_spines {
                    return Err(format!(
                        "fault timeline entry {i}: spine {spine} out of range \
                         (topology has {} spines)",
                        topo.n_spines
                    ));
                }
            }
            Fault::LoadScale { permille } => {
                if permille == 0 {
                    return Err(format!(
                        "fault timeline entry {i}: load scale must be non-zero \
                         (hosts cannot inject at rate 0)"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> TopoConfig {
        TopoConfig::default() // 4 leaves x 4 spines
    }

    #[test]
    fn flap_expands_to_sorted_pairs() {
        let tl = flap(
            1,
            2,
            SimTime::from_us(100),
            SimDuration::from_us(50),
            SimDuration::from_us(25),
            3,
        );
        assert_eq!(tl.len(), 6);
        assert!(tl.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(tl[0].fault, Fault::LinkDown { leaf: 1, spine: 2 });
        assert_eq!(tl[1].at, SimTime::from_us(150));
        assert_eq!(tl[1].fault, Fault::LinkUp { leaf: 1, spine: 2 });
        assert_eq!(tl[4].at, SimTime::from_us(250));
        validate_timeline(&tl, &topo()).expect("flap timeline is valid");
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let t = topo();
        let bad_leaf = [TimedFault::new(
            SimTime::ZERO,
            Fault::LinkDown { leaf: 99, spine: 0 },
        )];
        assert!(validate_timeline(&bad_leaf, &t)
            .unwrap_err()
            .contains("leaf 99 out of range"));
        let bad_spine = [TimedFault::new(SimTime::ZERO, Fault::SpineUp { spine: 7 })];
        assert!(validate_timeline(&bad_spine, &t)
            .unwrap_err()
            .contains("spine 7 out of range"));
    }

    #[test]
    fn unsorted_timeline_is_rejected() {
        let tl = [
            TimedFault::new(SimTime::from_us(10), Fault::SpineDown { spine: 0 }),
            TimedFault::new(SimTime::from_us(5), Fault::SpineUp { spine: 0 }),
        ];
        assert!(validate_timeline(&tl, &topo())
            .unwrap_err()
            .contains("must be sorted"));
    }

    #[test]
    fn zero_rate_and_zero_scale_are_rejected() {
        let t = topo();
        let z = [TimedFault::new(
            SimTime::ZERO,
            Fault::LinkRate {
                leaf: 0,
                spine: 0,
                rate_bps: 0,
            },
        )];
        assert!(validate_timeline(&z, &t).is_err());
        let s = [TimedFault::new(SimTime::ZERO, Fault::LoadScale { permille: 0 })];
        assert!(validate_timeline(&s, &t).is_err());
    }
}
