//! The shared-memory PFC switch (Fig. 1).
//!
//! Each switch owns a shared buffer pool; every buffered data packet is
//! charged against the counter of the ingress port it arrived on. When a
//! counter crosses the PFC threshold the MMU emits PAUSE to that port's
//! upstream peer; when it drains below threshold−hysteresis it emits
//! RESUME. Egress is per-port FIFO with a strict-priority control queue on
//! top (control frames are never paused, marked or counted — the standard
//! lossless-fabric arrangement that keeps ACK/CNP/CNM flowing).
//!
//! This module holds the switch *state* and its local rules; the event
//! orchestration (scheduling arrivals, transmissions, predictor samples)
//! lives in [`crate::sim`].

use crate::config::SwitchConfig;
use crate::packet::Packet;
use rand::Rng;
use rlb_core::{ContributorTable, PfcPredictor, Rlb, WarningTable};
use rlb_engine::{PacketArena, PacketHandle, SimRng};
use std::collections::VecDeque;

/// One egress port: data FIFO + strict-priority control FIFO.
///
/// The FIFOs hold [`PacketHandle`]s into the simulation's [`PacketArena`];
/// the packets themselves sit still in the arena from enqueue to dequeue.
/// Byte accounting reads the arena's SoA size column, never the cold
/// payload.
#[derive(Debug, Default)]
pub struct EgressPort {
    pub data_q: VecDeque<PacketHandle>,
    pub ctrl_q: VecDeque<PacketHandle>,
    pub data_q_bytes: u64,
    /// Queue generation: bumped whenever a data packet enters or leaves
    /// this port's FIFO or its pause state toggles — exactly the
    /// port-local changes a cached `PathInfo` snapshot depends on. The
    /// path-snapshot cache compares these per spine, so activity on one
    /// uplink no longer invalidates its siblings (see
    /// `Simulation::assemble_paths`).
    pub q_gen: u64,
    /// A frame is currently serializing out of this port.
    pub busy: bool,
    /// Data class paused by a downstream PFC PAUSE.
    pub paused: bool,
    /// When the current pause began (for paused-time accounting).
    pub paused_since_ps: u64,
    /// Rate of the attached channel, bits/sec.
    pub rate_bps: u64,
    /// The attached link is failed (fault injection). Unlike `paused`, this
    /// blocks *both* traffic classes — a dead wire carries no PFC frames
    /// either. Queued packets freeze in place until recovery.
    pub link_down: bool,
}

impl EgressPort {
    /// True when the data class cannot leave this port right now, whether
    /// throttled (PFC) or physically dead (fault). This is the signal
    /// surfaced as `PathInfo::paused` in path snapshots.
    pub fn data_blocked(&self) -> bool {
        self.paused || self.link_down
    }
}

/// Per-leaf load-balancing state: the deployed scheme (optionally wrapped
/// in RLB), the warning table fed by CNMs, and the per-path RTT/ECN
/// estimators the schemes and Algorithm 1 read.
pub struct LeafState {
    pub lb: LbInstance,
    pub warnings: WarningTable,
    /// EWMA RTT estimate, ns, indexed `[spine * n_leaves + dst_leaf]`.
    pub rtt_ns: Vec<f64>,
    /// EWMA ECN-mark fraction, same indexing.
    pub ecn_frac: Vec<f64>,
    /// Per-(spine, dst_leaf) signal generation: bumped whenever an
    /// estimator sample or a path-granular warning could change that one
    /// path's warned/rtt/ecn fields. Indexed `[spine * n_leaves +
    /// dst_leaf]`. Read by the simulator's path-snapshot cache, which
    /// compares these per spine so an ACK for one destination no longer
    /// invalidates snapshots toward every other.
    path_sig_gens: Vec<u64>,
    /// Per-spine generation for uplink-granularity warnings (those
    /// endanger every destination through the spine, so they get their own
    /// axis instead of fanning out over all `path_sig_gens`).
    uplink_sig_gens: Vec<u64>,
    n_leaves: usize,
}

/// A leaf either runs a vanilla scheme or the RLB-wrapped version.
pub enum LbInstance {
    Vanilla(Box<dyn rlb_lb::LoadBalancer>),
    Rlb(Rlb<dyn rlb_lb::LoadBalancer>),
}

impl LbInstance {
    pub fn on_flow_complete(&mut self, flow_id: u64) {
        match self {
            LbInstance::Vanilla(lb) => lb.on_flow_complete(flow_id),
            LbInstance::Rlb(rlb) => rlb.on_flow_complete(flow_id),
        }
    }
}

impl LeafState {
    pub fn new(lb: LbInstance, n_spines: usize, n_leaves: usize, base_rtt_ns: f64) -> LeafState {
        LeafState {
            lb,
            warnings: WarningTable::new(n_spines, n_leaves),
            rtt_ns: vec![base_rtt_ns; n_spines * n_leaves],
            ecn_frac: vec![0.0; n_spines * n_leaves],
            path_sig_gens: vec![0; n_spines * n_leaves],
            uplink_sig_gens: vec![0; n_spines],
            n_leaves,
        }
    }

    #[inline]
    fn idx(&self, spine: usize, dst_leaf: usize) -> usize {
        spine * self.n_leaves + dst_leaf
    }

    /// Fold a returning ACK's RTT sample and CE echo into the estimators.
    ///
    /// The gain is deliberately small: Algorithm 1 compares path delays
    /// against the recirculation cost, so the estimate must track the
    /// *persistent* queueing difference between paths, not per-packet
    /// jitter.
    pub fn observe(&mut self, spine: usize, dst_leaf: usize, rtt_ns: f64, ecn: bool) {
        const A: f64 = 0.1; // EWMA gain
        let i = self.idx(spine, dst_leaf);
        self.rtt_ns[i] = (1.0 - A) * self.rtt_ns[i] + A * rtt_ns;
        self.ecn_frac[i] = (1.0 - A) * self.ecn_frac[i] + A * if ecn { 1.0 } else { 0.0 };
        self.path_sig_gens[i] = self.path_sig_gens[i].wrapping_add(1);
    }

    /// Note a path-granularity warning insertion for (spine, dst_leaf) —
    /// call after `warnings.warn_path` so cached snapshots of that one
    /// path re-probe the warning table.
    pub fn note_path_warn(&mut self, spine: usize, dst_leaf: usize) {
        let i = self.idx(spine, dst_leaf);
        self.path_sig_gens[i] = self.path_sig_gens[i].wrapping_add(1);
    }

    /// Note an uplink-granularity warning insertion for `spine` — call
    /// after `warnings.warn_uplink`; it endangers every destination
    /// through that spine.
    pub fn note_uplink_warn(&mut self, spine: usize) {
        self.uplink_sig_gens[spine] = self.uplink_sig_gens[spine].wrapping_add(1);
    }

    /// Current path-granular signal generation for (spine, dst_leaf).
    #[inline]
    pub fn path_sig_gen(&self, spine: usize, dst_leaf: usize) -> u64 {
        self.path_sig_gens[self.idx(spine, dst_leaf)]
    }

    /// Current uplink-granular signal generation for `spine`.
    #[inline]
    pub fn uplink_sig_gen(&self, spine: usize) -> u64 {
        self.uplink_sig_gens[spine]
    }

    pub fn rtt(&self, spine: usize, dst_leaf: usize) -> f64 {
        self.rtt_ns[self.idx(spine, dst_leaf)]
    }

    pub fn ecn(&self, spine: usize, dst_leaf: usize) -> f64 {
        self.ecn_frac[self.idx(spine, dst_leaf)]
    }
}

/// Shared-buffer admission failure: the pool is full, the packet is
/// tail-dropped (the drop is already counted on the switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferOverflow;

impl std::fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shared buffer overflow: packet tail-dropped")
    }
}

impl std::error::Error for BufferOverflow {}

/// Instructions a switch-local operation hands back to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfcAction {
    None,
    /// Counter crossed the threshold upward: PAUSE the upstream of `port`.
    SendPause(u16),
    /// Counter drained: RESUME the upstream of `port`.
    SendResume(u16),
}

/// One switch (leaf or spine).
pub struct Switch {
    pub egress: Vec<EgressPort>,
    /// PFC byte counter per ingress port (data class only).
    pub ingress_bytes: Vec<u64>,
    /// We have PAUSEd the upstream of this ingress port.
    pub paused_upstream: Vec<bool>,
    pub shared_used: u64,
    /// RLB predictor per ingress port (present iff RLB runs in this fabric).
    pub predictors: Vec<PfcPredictor>,
    /// This ingress port participates in the Δt sampling tick.
    pub sampler_active: Vec<bool>,
    /// A per-switch `PredictorTick` event is currently scheduled; it
    /// samples every `sampler_active` port in one dispatch.
    pub sampler_tick_armed: bool,
    /// Who recently fed each egress port (CNM relay targeting).
    pub contributors: ContributorTable,
    /// Leaf-only state.
    pub leaf: Option<LeafState>,
    cfg: SwitchConfig,
    rng: SimRng,
    pub drops: u64,
    pub ecn_marks: u64,
}

impl Switch {
    pub fn new(
        n_ports: usize,
        cfg: SwitchConfig,
        port_rates: Vec<u64>,
        contributor_window_ps: u64,
        rng: SimRng,
    ) -> Switch {
        assert_eq!(port_rates.len(), n_ports);
        Switch {
            egress: port_rates
                .into_iter()
                .map(|rate_bps| EgressPort {
                    rate_bps,
                    ..EgressPort::default()
                })
                .collect(),
            ingress_bytes: vec![0; n_ports],
            paused_upstream: vec![false; n_ports],
            shared_used: 0,
            predictors: Vec::new(),
            sampler_active: vec![false; n_ports],
            sampler_tick_armed: false,
            contributors: ContributorTable::new(n_ports, contributor_window_ps),
            leaf: None,
            cfg,
            rng,
            drops: 0,
            ecn_marks: 0,
        }
    }

    pub fn n_ports(&self) -> usize {
        self.egress.len()
    }

    /// Admit an arriving data packet into the shared buffer, charging its
    /// ingress port. Returns [`BufferOverflow`] on a tail drop, otherwise
    /// the PFC action the MMU demands.
    pub fn admit_data(&mut self, in_port: u16, bytes: u32) -> Result<PfcAction, BufferOverflow> {
        if self.shared_used + bytes as u64 > self.cfg.buffer_bytes {
            self.drops += 1;
            return Err(BufferOverflow);
        }
        self.shared_used += bytes as u64;
        let c = &mut self.ingress_bytes[in_port as usize];
        *c += bytes as u64;
        if self.cfg.pfc_enabled
            && !self.paused_upstream[in_port as usize]
            && *c >= self.cfg.pfc_threshold_bytes
        {
            self.paused_upstream[in_port as usize] = true;
            return Ok(PfcAction::SendPause(in_port));
        }
        Ok(PfcAction::None)
    }

    /// Release a departing data packet's buffer share; may trigger RESUME.
    pub fn release_data(&mut self, ingress_port: u16, bytes: u32) -> PfcAction {
        let c = &mut self.ingress_bytes[ingress_port as usize];
        debug_assert!(*c >= bytes as u64, "ingress counter underflow");
        *c = c.saturating_sub(bytes as u64);
        debug_assert!(self.shared_used >= bytes as u64);
        self.shared_used = self.shared_used.saturating_sub(bytes as u64);
        let resume_at = self
            .cfg
            .pfc_threshold_bytes
            .saturating_sub(self.cfg.pfc_hysteresis_bytes);
        if self.paused_upstream[ingress_port as usize] && *c < resume_at {
            self.paused_upstream[ingress_port as usize] = false;
            PfcAction::SendResume(ingress_port)
        } else {
            PfcAction::None
        }
    }

    /// Dynamic-threshold egress admission: drop when this egress queue
    /// already holds more than `dt_alpha ×` the remaining free pool.
    pub fn dt_exceeded(&self, port: u16) -> bool {
        let free = self.cfg.buffer_bytes.saturating_sub(self.shared_used) as f64;
        self.egress[port as usize].data_q_bytes as f64 > self.cfg.dt_alpha * free
    }

    /// RED/ECN mark decision for a data packet entering `port`'s queue.
    pub fn ecn_mark(&mut self, port: u16) -> bool {
        let q = self.egress[port as usize].data_q_bytes;
        let e = &self.cfg.ecn;
        let p = if q <= e.kmin_bytes {
            0.0
        } else if q >= e.kmax_bytes {
            1.0
        } else {
            e.pmax * (q - e.kmin_bytes) as f64 / (e.kmax_bytes - e.kmin_bytes) as f64
        };
        let mark = p > 0.0 && self.rng.gen_bool(p.min(1.0));
        if mark {
            self.ecn_marks += 1;
        }
        mark
    }

    /// Park the packet in the arena and enqueue its handle on the proper
    /// class queue. `now_ps` stamps the arena's enqueue-time hot column.
    pub fn enqueue(&mut self, arena: &mut PacketArena<Packet>, port: u16, pkt: Packet, now_ps: u64) {
        let ep = &mut self.egress[port as usize];
        let control = pkt.kind.is_control();
        let size = pkt.size_bytes;
        let h = arena.alloc(size, pkt.flow, control, now_ps, pkt);
        if control {
            ep.ctrl_q.push_back(h);
        } else {
            ep.data_q_bytes += size as u64;
            ep.data_q.push_back(h);
            ep.q_gen = ep.q_gen.wrapping_add(1);
        }
    }

    /// Pick the next frame eligible for transmission on `port`, honouring
    /// strict control priority and data-class pausing, and take it out of
    /// the arena. Returns `None` when the port should go idle.
    pub fn next_to_transmit(
        &mut self,
        arena: &mut PacketArena<Packet>,
        port: u16,
    ) -> Option<Packet> {
        let ep = &mut self.egress[port as usize];
        debug_assert!(!ep.busy);
        if ep.link_down {
            return None;
        }
        if let Some(h) = ep.ctrl_q.pop_front() {
            return Some(arena.free(h));
        }
        if ep.paused {
            return None;
        }
        let h = ep.data_q.pop_front()?;
        let (pkt, size) = arena.free_sized(h);
        ep.data_q_bytes -= size as u64;
        ep.q_gen = ep.q_gen.wrapping_add(1);
        Some(pkt)
    }

    /// Whether a packet of the given class arriving at `port` *right now*
    /// would be handed straight back by [`enqueue`](Self::enqueue) followed
    /// by [`next_to_transmit`](Self::next_to_transmit): port idle, link up,
    /// no control frame queued ahead of it, and — for data — the class not
    /// paused and the data FIFO empty. The simulator's hot path uses this
    /// to skip the arena alloc/free round trip entirely on quiet ports,
    /// which is the dominant case at moderate load.
    #[inline]
    pub fn pass_through(&self, port: u16, control: bool) -> bool {
        let ep = &self.egress[port as usize];
        !ep.busy
            && !ep.link_down
            && ep.ctrl_q.is_empty()
            && (control || (!ep.paused && ep.data_q.is_empty()))
    }

    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use rlb_engine::substream;

    fn sw() -> Switch {
        let cfg = SwitchConfig {
            buffer_bytes: 10_000,
            pfc_threshold_bytes: 4_000,
            pfc_hysteresis_bytes: 1_000,
            pfc_enabled: true,
            ..SwitchConfig::default()
        };
        Switch::new(4, cfg, vec![40_000_000_000; 4], 10_000_000, substream(1, b"sw", 0))
    }

    fn data(bytes: u32) -> Packet {
        Packet::data(0, 0, bytes, 0, 1, 0)
    }

    #[test]
    fn pause_fires_once_at_threshold_and_resume_below_hysteresis() {
        let mut s = sw();
        assert_eq!(s.admit_data(2, 3_000).unwrap(), PfcAction::None);
        assert_eq!(s.admit_data(2, 1_000).unwrap(), PfcAction::SendPause(2));
        // Further arrivals do not re-pause.
        assert_eq!(s.admit_data(2, 1_000).unwrap(), PfcAction::None);
        // Drain: resume only below threshold − hysteresis = 3 000.
        assert_eq!(s.release_data(2, 1_000), PfcAction::None); // 4 000 left
        assert_eq!(s.release_data(2, 1_000), PfcAction::None); // 3 000 left (not < 3 000)
        assert_eq!(s.release_data(2, 1_000), PfcAction::SendResume(2)); // 2 000
        assert!(!s.paused_upstream[2]);
    }

    #[test]
    fn counters_are_per_ingress_port() {
        let mut s = sw();
        s.admit_data(0, 3_900).unwrap();
        assert_eq!(s.admit_data(1, 3_900).unwrap(), PfcAction::None);
        assert_eq!(s.admit_data(0, 200).unwrap(), PfcAction::SendPause(0));
        assert_eq!(s.ingress_bytes[0], 4_100);
        assert_eq!(s.ingress_bytes[1], 3_900);
    }

    #[test]
    fn pfc_disabled_never_pauses() {
        let mut s = sw();
        s.cfg.pfc_enabled = false;
        for _ in 0..3 {
            assert_eq!(s.admit_data(0, 3_000).unwrap(), PfcAction::None);
        }
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut s = sw();
        s.cfg.pfc_enabled = false;
        assert!(s.admit_data(0, 9_000).is_ok());
        assert!(s.admit_data(1, 2_000).is_err());
        assert_eq!(s.drops, 1);
        assert_eq!(s.shared_used, 9_000, "dropped packet not charged");
    }

    #[test]
    fn control_has_strict_priority_and_ignores_pause() {
        let mut s = sw();
        let mut arena: PacketArena<Packet> = PacketArena::new();
        s.enqueue(&mut arena, 0, data(1_000), 0);
        let mut cnp = Packet::data(0, 0, 64, 1, 0, 0);
        cnp.kind = PacketKind::Cnp;
        s.enqueue(&mut arena, 0, cnp, 0);
        assert_eq!(arena.len(), 2, "both frames parked in the arena");
        // Paused port: control still flows, data does not.
        s.egress[0].paused = true;
        let first = s.next_to_transmit(&mut arena, 0).unwrap();
        assert_eq!(first.kind, PacketKind::Cnp);
        assert!(
            s.next_to_transmit(&mut arena, 0).is_none(),
            "data must wait out the pause"
        );
        s.egress[0].paused = false;
        assert_eq!(
            s.next_to_transmit(&mut arena, 0).unwrap().kind,
            PacketKind::Data
        );
        assert_eq!(s.egress[0].data_q_bytes, 0);
        assert!(arena.is_empty(), "dequeued frames leave the arena");
    }

    #[test]
    fn queue_generation_tracks_data_plane_only() {
        let mut s = sw();
        let mut arena: PacketArena<Packet> = PacketArena::new();
        let g0 = s.egress[0].q_gen;
        let mut cnp = Packet::data(0, 0, 64, 1, 0, 0);
        cnp.kind = PacketKind::Cnp;
        s.enqueue(&mut arena, 0, cnp, 0);
        assert_eq!(s.egress[0].q_gen, g0, "control traffic is invisible to snapshots");
        s.enqueue(&mut arena, 0, data(1_000), 0);
        assert_eq!(s.egress[0].q_gen, g0 + 1);
        s.enqueue(&mut arena, 1, data(1_000), 0);
        assert_eq!(s.egress[0].q_gen, g0 + 1, "sibling port activity stays per-port");
        let _ = s.next_to_transmit(&mut arena, 0); // pops the CNP (control)
        assert_eq!(s.egress[0].q_gen, g0 + 1);
        let _ = s.next_to_transmit(&mut arena, 0); // pops the data frame
        assert_eq!(s.egress[0].q_gen, g0 + 2);
    }

    #[test]
    fn ecn_marking_ramps_with_queue_depth() {
        let mut s = sw();
        // Below kmin: never marks.
        assert!(!s.ecn_mark(0));
        // Far above kmax: always marks.
        s.egress[0].data_q_bytes = s.cfg.ecn.kmax_bytes + 1;
        assert!(s.ecn_mark(0));
        // Between: marks sometimes (DCQCN defaults: pmax=1% → ~0.5% at the
        // midpoint of [kmin, kmax]).
        s.egress[0].data_q_bytes = (s.cfg.ecn.kmin_bytes + s.cfg.ecn.kmax_bytes) / 2;
        let marks: usize = (0..100_000).filter(|_| s.ecn_mark(0)).count();
        assert!(marks > 200 && marks < 1_200, "marks={marks}");
    }

    #[test]
    fn leaf_state_estimators_converge() {
        let lb = LbInstance::Vanilla(rlb_lb::build(
            rlb_lb::Scheme::Ecmp,
            1000,
            substream(0, b"t", 0),
        ));
        let mut ls = LeafState::new(lb, 4, 4, 10_000.0);
        assert_eq!(ls.rtt(2, 3), 10_000.0);
        for _ in 0..200 {
            ls.observe(2, 3, 50_000.0, true);
        }
        assert!((ls.rtt(2, 3) - 50_000.0).abs() < 100.0);
        assert!(ls.ecn(2, 3) > 0.95);
        // Other paths untouched.
        assert_eq!(ls.rtt(1, 3), 10_000.0);
        assert_eq!(ls.ecn(2, 2), 0.0);
    }

    /// Differential: the arena-backed egress plane vs inline-packet queues,
    /// with the real `Packet` type and the real `Switch` transmit rules.
    /// Runs under `--features audit` alongside the other differential
    /// reference tests.
    #[cfg(feature = "audit")]
    mod arena_differential {
        use super::*;
        use proptest::prelude::*;
        use rlb_engine::PacketArena;
        use std::collections::VecDeque;

        /// Observable identity of a packet (it doesn't derive `PartialEq`).
        fn sig(p: &Packet) -> (PacketKind, u32, u32, u32, u64) {
            (p.kind, p.flow, p.psn, p.size_bytes, p.sent_ps)
        }

        proptest! {
            /// Random interleavings of data/control enqueues, pause
            /// toggles, and transmissions on a 4-port switch must match a
            /// per-port `VecDeque<Packet>` model: same pop order and
            /// payloads, same `data_q_bytes`, same arena occupancy.
            #[test]
            fn switch_egress_matches_vecdeque_reference(
                ops in proptest::collection::vec((0u8..8, 0u16..4, 1u32..9_000), 1..300)
            ) {
                let mut s = sw();
                let mut arena: PacketArena<Packet> = PacketArena::new();
                let mut data: Vec<VecDeque<Packet>> = vec![VecDeque::new(); 4];
                let mut ctrl: Vec<VecDeque<Packet>> = vec![VecDeque::new(); 4];
                let mut paused = [false; 4];
                let mut seq = 0u32;
                for (kind, port, size) in ops {
                    let p = port as usize;
                    match kind {
                        0..=2 => {
                            let pkt = Packet::data(seq, seq, size, 0, 1, seq as u64 * 13);
                            seq += 1;
                            s.enqueue(&mut arena, port, pkt, pkt.sent_ps);
                            data[p].push_back(pkt);
                        }
                        3 => {
                            let d = Packet::data(seq, seq, size, 0, 1, seq as u64 * 13);
                            let pkt = Packet::response(PacketKind::Ack, &d, seq, 64);
                            seq += 1;
                            s.enqueue(&mut arena, port, pkt, 0);
                            ctrl[p].push_back(pkt);
                        }
                        4 => {
                            paused[p] = !paused[p];
                            s.egress[p].paused = paused[p];
                        }
                        _ => {
                            let want = if let Some(c) = ctrl[p].pop_front() {
                                Some(c)
                            } else if paused[p] {
                                None
                            } else {
                                data[p].pop_front()
                            };
                            let got = s.next_to_transmit(&mut arena, port);
                            prop_assert_eq!(got.as_ref().map(sig), want.as_ref().map(sig));
                        }
                    }
                    for (q, model_q) in data.iter().enumerate() {
                        let model_bytes: u64 =
                            model_q.iter().map(|x| x.size_bytes as u64).sum();
                        prop_assert_eq!(s.egress[q].data_q_bytes, model_bytes);
                    }
                    let queued: usize =
                        data.iter().chain(ctrl.iter()).map(|q| q.len()).sum();
                    prop_assert_eq!(arena.len(), queued);
                }
                // Unpause everything and drain: the full remaining order
                // must match port by port.
                for q in 0..4 {
                    s.egress[q].paused = false;
                    loop {
                        let want = ctrl[q].pop_front().or_else(|| data[q].pop_front());
                        let got = s.next_to_transmit(&mut arena, q as u16);
                        prop_assert_eq!(got.as_ref().map(sig), want.as_ref().map(sig));
                        if got.is_none() {
                            break;
                        }
                    }
                }
                prop_assert!(arena.is_empty());
            }
        }
    }
}
