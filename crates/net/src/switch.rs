//! The shared-memory PFC switch (Fig. 1).
//!
//! Each switch owns a shared buffer pool; every buffered data packet is
//! charged against the counter of the ingress port it arrived on. When a
//! counter crosses the PFC threshold the MMU emits PAUSE to that port's
//! upstream peer; when it drains below threshold−hysteresis it emits
//! RESUME. Egress is per-port FIFO with a strict-priority control queue on
//! top (control frames are never paused, marked or counted — the standard
//! lossless-fabric arrangement that keeps ACK/CNP/CNM flowing).
//!
//! This module holds the switch *state* and its local rules; the event
//! orchestration (scheduling arrivals, transmissions, predictor samples)
//! lives in [`crate::sim`].

use crate::config::SwitchConfig;
use crate::packet::Packet;
use rand::Rng;
use rlb_core::{ContributorTable, PfcPredictor, Rlb, WarningTable};
use rlb_engine::SimRng;
use std::collections::VecDeque;

/// One egress port: data FIFO + strict-priority control FIFO.
#[derive(Debug, Default)]
pub struct EgressPort {
    pub data_q: VecDeque<Packet>,
    pub ctrl_q: VecDeque<Packet>,
    pub data_q_bytes: u64,
    /// A frame is currently serializing out of this port.
    pub busy: bool,
    /// Data class paused by a downstream PFC PAUSE.
    pub paused: bool,
    /// When the current pause began (for paused-time accounting).
    pub paused_since_ps: u64,
    /// Rate of the attached channel, bits/sec.
    pub rate_bps: u64,
    /// The attached link is failed (fault injection). Unlike `paused`, this
    /// blocks *both* traffic classes — a dead wire carries no PFC frames
    /// either. Queued packets freeze in place until recovery.
    pub link_down: bool,
}

impl EgressPort {
    /// True when the data class cannot leave this port right now, whether
    /// throttled (PFC) or physically dead (fault). This is the signal
    /// surfaced as `PathInfo::paused` in path snapshots.
    pub fn data_blocked(&self) -> bool {
        self.paused || self.link_down
    }
}

/// Per-leaf load-balancing state: the deployed scheme (optionally wrapped
/// in RLB), the warning table fed by CNMs, and the per-path RTT/ECN
/// estimators the schemes and Algorithm 1 read.
pub struct LeafState {
    pub lb: LbInstance,
    pub warnings: WarningTable,
    /// EWMA RTT estimate, ns, indexed `[spine * n_leaves + dst_leaf]`.
    pub rtt_ns: Vec<f64>,
    /// EWMA ECN-mark fraction, same indexing.
    pub ecn_frac: Vec<f64>,
    /// Signal generation: bumped whenever an estimator sample or a warning
    /// insertion could change a `PathInfo`'s warned/rtt/ecn fields. Read by
    /// the simulator's path-snapshot cache (see `Simulation::assemble_paths`).
    pub sig_gen: u64,
    n_leaves: usize,
}

/// A leaf either runs a vanilla scheme or the RLB-wrapped version.
pub enum LbInstance {
    Vanilla(Box<dyn rlb_lb::LoadBalancer>),
    Rlb(Rlb<dyn rlb_lb::LoadBalancer>),
}

impl LbInstance {
    pub fn on_flow_complete(&mut self, flow_id: u64) {
        match self {
            LbInstance::Vanilla(lb) => lb.on_flow_complete(flow_id),
            LbInstance::Rlb(rlb) => rlb.on_flow_complete(flow_id),
        }
    }
}

impl LeafState {
    pub fn new(lb: LbInstance, n_spines: usize, n_leaves: usize, base_rtt_ns: f64) -> LeafState {
        LeafState {
            lb,
            warnings: WarningTable::new(n_spines, n_leaves),
            rtt_ns: vec![base_rtt_ns; n_spines * n_leaves],
            ecn_frac: vec![0.0; n_spines * n_leaves],
            sig_gen: 0,
            n_leaves,
        }
    }

    #[inline]
    fn idx(&self, spine: usize, dst_leaf: usize) -> usize {
        spine * self.n_leaves + dst_leaf
    }

    /// Fold a returning ACK's RTT sample and CE echo into the estimators.
    ///
    /// The gain is deliberately small: Algorithm 1 compares path delays
    /// against the recirculation cost, so the estimate must track the
    /// *persistent* queueing difference between paths, not per-packet
    /// jitter.
    pub fn observe(&mut self, spine: usize, dst_leaf: usize, rtt_ns: f64, ecn: bool) {
        const A: f64 = 0.1; // EWMA gain
        let i = self.idx(spine, dst_leaf);
        self.rtt_ns[i] = (1.0 - A) * self.rtt_ns[i] + A * rtt_ns;
        self.ecn_frac[i] = (1.0 - A) * self.ecn_frac[i] + A * if ecn { 1.0 } else { 0.0 };
        self.sig_gen = self.sig_gen.wrapping_add(1);
    }

    pub fn rtt(&self, spine: usize, dst_leaf: usize) -> f64 {
        self.rtt_ns[self.idx(spine, dst_leaf)]
    }

    pub fn ecn(&self, spine: usize, dst_leaf: usize) -> f64 {
        self.ecn_frac[self.idx(spine, dst_leaf)]
    }
}

/// Shared-buffer admission failure: the pool is full, the packet is
/// tail-dropped (the drop is already counted on the switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferOverflow;

impl std::fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shared buffer overflow: packet tail-dropped")
    }
}

impl std::error::Error for BufferOverflow {}

/// Instructions a switch-local operation hands back to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfcAction {
    None,
    /// Counter crossed the threshold upward: PAUSE the upstream of `port`.
    SendPause(u16),
    /// Counter drained: RESUME the upstream of `port`.
    SendResume(u16),
}

/// One switch (leaf or spine).
pub struct Switch {
    pub egress: Vec<EgressPort>,
    /// PFC byte counter per ingress port (data class only).
    pub ingress_bytes: Vec<u64>,
    /// We have PAUSEd the upstream of this ingress port.
    pub paused_upstream: Vec<bool>,
    pub shared_used: u64,
    /// RLB predictor per ingress port (present iff RLB runs in this fabric).
    pub predictors: Vec<PfcPredictor>,
    /// This ingress port participates in the Δt sampling tick.
    pub sampler_active: Vec<bool>,
    /// A per-switch `PredictorTick` event is currently scheduled; it
    /// samples every `sampler_active` port in one dispatch.
    pub sampler_tick_armed: bool,
    /// Who recently fed each egress port (CNM relay targeting).
    pub contributors: ContributorTable,
    /// Leaf-only state.
    pub leaf: Option<LeafState>,
    /// Egress-queue generation: bumped whenever a data packet enters or
    /// leaves an egress FIFO, or an egress port's pause state toggles —
    /// exactly the switch-local changes a `PathInfo` snapshot depends on.
    pub snap_gen: u64,
    cfg: SwitchConfig,
    rng: SimRng,
    pub drops: u64,
    pub ecn_marks: u64,
}

impl Switch {
    pub fn new(
        n_ports: usize,
        cfg: SwitchConfig,
        port_rates: Vec<u64>,
        contributor_window_ps: u64,
        rng: SimRng,
    ) -> Switch {
        assert_eq!(port_rates.len(), n_ports);
        Switch {
            egress: port_rates
                .into_iter()
                .map(|rate_bps| EgressPort {
                    rate_bps,
                    ..EgressPort::default()
                })
                .collect(),
            ingress_bytes: vec![0; n_ports],
            paused_upstream: vec![false; n_ports],
            shared_used: 0,
            predictors: Vec::new(),
            sampler_active: vec![false; n_ports],
            sampler_tick_armed: false,
            contributors: ContributorTable::new(n_ports, contributor_window_ps),
            leaf: None,
            snap_gen: 0,
            cfg,
            rng,
            drops: 0,
            ecn_marks: 0,
        }
    }

    pub fn n_ports(&self) -> usize {
        self.egress.len()
    }

    /// Admit an arriving data packet into the shared buffer, charging its
    /// ingress port. Returns [`BufferOverflow`] on a tail drop, otherwise
    /// the PFC action the MMU demands.
    pub fn admit_data(&mut self, in_port: u16, bytes: u32) -> Result<PfcAction, BufferOverflow> {
        if self.shared_used + bytes as u64 > self.cfg.buffer_bytes {
            self.drops += 1;
            return Err(BufferOverflow);
        }
        self.shared_used += bytes as u64;
        let c = &mut self.ingress_bytes[in_port as usize];
        *c += bytes as u64;
        if self.cfg.pfc_enabled
            && !self.paused_upstream[in_port as usize]
            && *c >= self.cfg.pfc_threshold_bytes
        {
            self.paused_upstream[in_port as usize] = true;
            return Ok(PfcAction::SendPause(in_port));
        }
        Ok(PfcAction::None)
    }

    /// Release a departing data packet's buffer share; may trigger RESUME.
    pub fn release_data(&mut self, ingress_port: u16, bytes: u32) -> PfcAction {
        let c = &mut self.ingress_bytes[ingress_port as usize];
        debug_assert!(*c >= bytes as u64, "ingress counter underflow");
        *c = c.saturating_sub(bytes as u64);
        debug_assert!(self.shared_used >= bytes as u64);
        self.shared_used = self.shared_used.saturating_sub(bytes as u64);
        let resume_at = self
            .cfg
            .pfc_threshold_bytes
            .saturating_sub(self.cfg.pfc_hysteresis_bytes);
        if self.paused_upstream[ingress_port as usize] && *c < resume_at {
            self.paused_upstream[ingress_port as usize] = false;
            PfcAction::SendResume(ingress_port)
        } else {
            PfcAction::None
        }
    }

    /// Dynamic-threshold egress admission: drop when this egress queue
    /// already holds more than `dt_alpha ×` the remaining free pool.
    pub fn dt_exceeded(&self, port: u16) -> bool {
        let free = self.cfg.buffer_bytes.saturating_sub(self.shared_used) as f64;
        self.egress[port as usize].data_q_bytes as f64 > self.cfg.dt_alpha * free
    }

    /// RED/ECN mark decision for a data packet entering `port`'s queue.
    pub fn ecn_mark(&mut self, port: u16) -> bool {
        let q = self.egress[port as usize].data_q_bytes;
        let e = &self.cfg.ecn;
        let p = if q <= e.kmin_bytes {
            0.0
        } else if q >= e.kmax_bytes {
            1.0
        } else {
            e.pmax * (q - e.kmin_bytes) as f64 / (e.kmax_bytes - e.kmin_bytes) as f64
        };
        let mark = p > 0.0 && self.rng.gen_bool(p.min(1.0));
        if mark {
            self.ecn_marks += 1;
        }
        mark
    }

    /// Enqueue to the proper class queue.
    pub fn enqueue(&mut self, port: u16, pkt: Packet) {
        let ep = &mut self.egress[port as usize];
        if pkt.kind.is_control() {
            ep.ctrl_q.push_back(pkt);
        } else {
            ep.data_q_bytes += pkt.size_bytes as u64;
            ep.data_q.push_back(pkt);
            self.snap_gen = self.snap_gen.wrapping_add(1);
        }
    }

    /// Pick the next frame eligible for transmission on `port`, honouring
    /// strict control priority and data-class pausing. Returns `None` when
    /// the port should go idle.
    pub fn next_to_transmit(&mut self, port: u16) -> Option<Packet> {
        let ep = &mut self.egress[port as usize];
        debug_assert!(!ep.busy);
        if ep.link_down {
            return None;
        }
        if let Some(pkt) = ep.ctrl_q.pop_front() {
            return Some(pkt);
        }
        if ep.paused {
            return None;
        }
        let pkt = ep.data_q.pop_front()?;
        ep.data_q_bytes -= pkt.size_bytes as u64;
        self.snap_gen = self.snap_gen.wrapping_add(1);
        Some(pkt)
    }

    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use rlb_engine::substream;

    fn sw() -> Switch {
        let cfg = SwitchConfig {
            buffer_bytes: 10_000,
            pfc_threshold_bytes: 4_000,
            pfc_hysteresis_bytes: 1_000,
            pfc_enabled: true,
            ..SwitchConfig::default()
        };
        Switch::new(4, cfg, vec![40_000_000_000; 4], 10_000_000, substream(1, b"sw", 0))
    }

    fn data(bytes: u32) -> Packet {
        Packet::data(0, 0, bytes, 0, 1, 0)
    }

    #[test]
    fn pause_fires_once_at_threshold_and_resume_below_hysteresis() {
        let mut s = sw();
        assert_eq!(s.admit_data(2, 3_000).unwrap(), PfcAction::None);
        assert_eq!(s.admit_data(2, 1_000).unwrap(), PfcAction::SendPause(2));
        // Further arrivals do not re-pause.
        assert_eq!(s.admit_data(2, 1_000).unwrap(), PfcAction::None);
        // Drain: resume only below threshold − hysteresis = 3 000.
        assert_eq!(s.release_data(2, 1_000), PfcAction::None); // 4 000 left
        assert_eq!(s.release_data(2, 1_000), PfcAction::None); // 3 000 left (not < 3 000)
        assert_eq!(s.release_data(2, 1_000), PfcAction::SendResume(2)); // 2 000
        assert!(!s.paused_upstream[2]);
    }

    #[test]
    fn counters_are_per_ingress_port() {
        let mut s = sw();
        s.admit_data(0, 3_900).unwrap();
        assert_eq!(s.admit_data(1, 3_900).unwrap(), PfcAction::None);
        assert_eq!(s.admit_data(0, 200).unwrap(), PfcAction::SendPause(0));
        assert_eq!(s.ingress_bytes[0], 4_100);
        assert_eq!(s.ingress_bytes[1], 3_900);
    }

    #[test]
    fn pfc_disabled_never_pauses() {
        let mut s = sw();
        s.cfg.pfc_enabled = false;
        for _ in 0..3 {
            assert_eq!(s.admit_data(0, 3_000).unwrap(), PfcAction::None);
        }
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut s = sw();
        s.cfg.pfc_enabled = false;
        assert!(s.admit_data(0, 9_000).is_ok());
        assert!(s.admit_data(1, 2_000).is_err());
        assert_eq!(s.drops, 1);
        assert_eq!(s.shared_used, 9_000, "dropped packet not charged");
    }

    #[test]
    fn control_has_strict_priority_and_ignores_pause() {
        let mut s = sw();
        s.enqueue(0, data(1_000));
        let mut cnp = Packet::data(0, 0, 64, 1, 0, 0);
        cnp.kind = PacketKind::Cnp;
        s.enqueue(0, cnp);
        // Paused port: control still flows, data does not.
        s.egress[0].paused = true;
        let first = s.next_to_transmit(0).unwrap();
        assert_eq!(first.kind, PacketKind::Cnp);
        assert!(s.next_to_transmit(0).is_none(), "data must wait out the pause");
        s.egress[0].paused = false;
        assert_eq!(s.next_to_transmit(0).unwrap().kind, PacketKind::Data);
        assert_eq!(s.egress[0].data_q_bytes, 0);
    }

    #[test]
    fn ecn_marking_ramps_with_queue_depth() {
        let mut s = sw();
        // Below kmin: never marks.
        assert!(!s.ecn_mark(0));
        // Far above kmax: always marks.
        s.egress[0].data_q_bytes = s.cfg.ecn.kmax_bytes + 1;
        assert!(s.ecn_mark(0));
        // Between: marks sometimes (DCQCN defaults: pmax=1% → ~0.5% at the
        // midpoint of [kmin, kmax]).
        s.egress[0].data_q_bytes = (s.cfg.ecn.kmin_bytes + s.cfg.ecn.kmax_bytes) / 2;
        let marks: usize = (0..100_000).filter(|_| s.ecn_mark(0)).count();
        assert!(marks > 200 && marks < 1_200, "marks={marks}");
    }

    #[test]
    fn leaf_state_estimators_converge() {
        let lb = LbInstance::Vanilla(rlb_lb::build(
            rlb_lb::Scheme::Ecmp,
            1000,
            substream(0, b"t", 0),
        ));
        let mut ls = LeafState::new(lb, 4, 4, 10_000.0);
        assert_eq!(ls.rtt(2, 3), 10_000.0);
        for _ in 0..200 {
            ls.observe(2, 3, 50_000.0, true);
        }
        assert!((ls.rtt(2, 3) - 50_000.0).abs() < 100.0);
        assert!(ls.ecn(2, 3) > 0.95);
        // Other paths untouched.
        assert_eq!(ls.rtt(1, 3), 10_000.0);
        assert_eq!(ls.ecn(2, 2), 0.0);
    }
}
