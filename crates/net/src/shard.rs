//! Bounded-window parallel driver for sharded simulations.
//!
//! The topology is partitioned into shards — shard 0 owns every spine,
//! each remaining shard owns a contiguous band of leaves plus their hosts
//! (see `Simulation::shard_for`) — and each shard runs its own
//! [`Simulation`] replica over the events of the entities it owns.
//! Synchronization is a conservative bounded-window protocol: with every
//! cross-shard interaction (leaf↔spine `LinkArrive`, `PauseFrame`)
//! carrying at least one link propagation delay, a window of width
//! `W = link_delay` starting at the global minimum pending time `g` can be
//! dispatched by every shard independently — nothing produced inside
//! `[g, g+W)` can affect another shard before `g+W`.
//!
//! One round per window:
//!
//! 1. every thread redundantly reads all shard statuses and computes the
//!    same decision (continue / complete / drained / hard-stop) — no
//!    coordinator thread, no communication beyond the statuses;
//! 2. each shard dispatches its local events in `[g, min(g+W, stop))` and
//!    publishes its cross-shard sends into per-(dst, src) mailboxes;
//! 3. barrier; each shard drains its mailboxes into its event queue and
//!    publishes a fresh status (next pending time, completions, audit
//!    cut);
//! 4. barrier; next round.
//!
//! Determinism is inherited, not synchronized-for: events are keyed by
//! `(sched_ps, entity rank, per-entity counter)` — identical regardless of
//! which shard executes the entity or how messages are routed — so each
//! shard's dispatch order equals the restriction of the sequential order
//! to its entities, and the merged result is byte-identical to
//! `--shards 1`, which is byte-identical to the sequential engine by
//! construction (it uses the same keys). Output-visible side effects that
//! a shard applies to *shared* aggregates (fabric counters, per-flow
//! recirculations) are journaled with their canonical key and folded at
//! the round barrier; on the completion round the fold is trimmed to the
//! globally-last completion key so counter totals match the sequential
//! prefix exactly.
//!
//! `events_processed` is the one value that legitimately differs from a
//! sequential run: global ticks are replicated per shard and the final
//! window may dispatch events past the last completion, so the figure
//! pipeline keeps it out of stable output.

use crate::config::SimConfig;
use crate::monitor::FabricTimeSeries;
use crate::sim::{PerfStats, RunResult, ShardParts, Simulation, WireMsg};
use crate::trace::FlowTraces;
use rlb_engine::SimTime;
use rlb_metrics::{FabricCounters, LogHistogram};
use rlb_workloads::FlowSpec;
use std::sync::{Barrier, Mutex};

/// Per-shard state published at each round barrier; every thread reads all
/// of them to compute the (identical) window decision.
#[derive(Debug, Default, Clone, Copy)]
struct Status {
    /// Earliest pending local event, `None` if the shard's queue drained.
    next: Option<SimTime>,
    /// Local clock (time of the last dispatched event).
    now: SimTime,
    /// Flows completed so far (completion is detected on the src shard).
    completed: usize,
    /// `(t_ps, key)` of this shard's canonically-last flow completion.
    last_completion: Option<(u64, u128)>,
    /// Cumulative `(injected, arrived, dropped, in_fabric)` audit cut.
    #[cfg(feature = "audit")]
    cut: (u64, u64, u64, u64),
}

/// What each worker thread hands back for the merge.
#[derive(Debug, Clone, Copy)]
struct ShardOutcome {
    dispatched: u64,
    busy_secs: f64,
    cross_msgs: u64,
    stalls: u64,
    windows: u64,
    decision: Decision,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Decision {
    /// Dispatch the window `[g, end)`.
    Advance { end: SimTime },
    /// All flows finished; `k` is the globally-last completion `(t, key)`.
    Complete { k: (u64, u128) },
    /// Every shard's queue is empty; `end` is the last event time.
    Drained { end: SimTime },
    /// The earliest pending event lies past the horizon; `end` is its
    /// time, matching the sequential engine (which pops it, advancing the
    /// clock, before breaking).
    HardStop { end: SimTime },
}

/// Pure function of the published statuses — every thread evaluates it on
/// the same snapshot and must reach the same decision.
fn decide(st: &[Status], n_flows: usize, hard_stop: SimTime, w_ps: u64) -> Decision {
    let completed: usize = st.iter().map(|s| s.completed).sum();
    if n_flows > 0 && completed == n_flows {
        let k = st
            .iter()
            .filter_map(|s| s.last_completion)
            .max()
            .expect("completed flows imply a completion record");
        return Decision::Complete { k };
    }
    match st.iter().filter_map(|s| s.next).min() {
        None => Decision::Drained {
            end: st.iter().map(|s| s.now).max().unwrap_or(SimTime(0)),
        },
        Some(g) if g > hard_stop => Decision::HardStop { end: g },
        Some(g) => Decision::Advance {
            // +1 so `pop_before`'s strict bound still dispatches events at
            // exactly `hard_stop`, like the sequential engine does.
            end: SimTime(
                g.as_ps()
                    .saturating_add(w_ps)
                    .min(hard_stop.as_ps().saturating_add(1)),
            ),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    sim: &mut Simulation,
    me: usize,
    n_flows: usize,
    hard_stop: SimTime,
    w_ps: u64,
    statuses: &[Mutex<Status>],
    mailbox: &[Vec<Mutex<Vec<WireMsg>>>],
    barrier: &Barrier,
) -> ShardOutcome {
    let publish = |sim: &mut Simulation| {
        let mut st = statuses[me].lock().expect("status lock");
        st.next = sim.next_event_time();
        st.now = sim.local_now();
        st.completed = sim.completed_flows();
        st.last_completion = sim.last_completion();
        #[cfg(feature = "audit")]
        {
            st.cut = sim.audit_partial(false);
        }
    };
    publish(sim);
    barrier.wait();

    let mut out = ShardOutcome {
        dispatched: 0,
        busy_secs: 0.0,
        cross_msgs: 0,
        stalls: 0,
        windows: 0,
        decision: Decision::Drained { end: SimTime(0) },
    };
    loop {
        let decision = {
            let snap: Vec<Status> =
                statuses.iter().map(|m| *m.lock().expect("status lock")).collect();
            // A single shard only sees its side of each flow, so packet
            // conservation is asserted here, over the summed cuts, once
            // per round.
            #[cfg(feature = "audit")]
            {
                let injected: u64 = snap.iter().map(|s| s.cut.0).sum();
                let accounted: u64 = snap.iter().map(|s| s.cut.1 + s.cut.2 + s.cut.3).sum();
                assert_eq!(
                    injected, accounted,
                    "sharded audit violation [packet-conservation]: \
                     {injected} injected vs {accounted} accounted"
                );
            }
            decide(&snap, n_flows, hard_stop, w_ps)
        };
        // The journal now holds exactly the previous window's effects. On
        // every non-terminal round (and on drain/hard-stop, whose
        // dispatched sets equal the sequential engine's) they are all part
        // of the sequential prefix; on completion, trim to the
        // globally-last completion key.
        match decision {
            Decision::Advance { end } => {
                sim.fold_journal(None);
                let t0 = std::time::Instant::now(); // lint:allow(wall-clock)
                let d = sim.dispatch_window(end);
                out.busy_secs += t0.elapsed().as_secs_f64();
                out.dispatched += d;
                out.windows += 1;
                if d == 0 {
                    out.stalls += 1;
                }
                for (dst, dst_boxes) in mailbox.iter().enumerate() {
                    if dst == me {
                        continue;
                    }
                    let msgs = sim.take_outbox(dst as u16);
                    if !msgs.is_empty() {
                        out.cross_msgs += msgs.len() as u64;
                        dst_boxes[me].lock().expect("mailbox lock").extend(msgs);
                    }
                }
                barrier.wait();
                for src_box in &mailbox[me] {
                    let msgs = std::mem::take(&mut *src_box.lock().expect("mailbox lock"));
                    sim.deliver(msgs);
                }
                publish(sim);
                barrier.wait();
            }
            Decision::Complete { k } => {
                sim.fold_journal(Some(k));
                out.decision = decision;
                break;
            }
            Decision::Drained { .. } | Decision::HardStop { .. } => {
                sim.fold_journal(None);
                out.decision = decision;
                break;
            }
        }
    }

    // Terminal sweep: per-shard drain checks (PFC pairing, buffer books)
    // plus one last global conservation balance over the final cuts.
    #[cfg(feature = "audit")]
    {
        barrier.wait(); // everyone is past the terminal decision reads
        statuses[me].lock().expect("status lock").cut = sim.audit_partial(true);
        barrier.wait();
        let (mut injected, mut accounted) = (0u64, 0u64);
        for m in statuses {
            let s = m.lock().expect("status lock");
            injected += s.cut.0;
            accounted += s.cut.1 + s.cut.2 + s.cut.3;
        }
        assert_eq!(
            injected, accounted,
            "sharded audit violation [packet-conservation] at drain: \
             {injected} injected vs {accounted} accounted"
        );
    }
    out
}

/// Run `specs` under `cfg` on `shards` shards and merge the results.
///
/// Falls back to the sequential engine when sharding cannot help or is not
/// supported: `shards <= 1`, fabric monitoring (timeseries sampling reads
/// global state mid-run), or per-flow packet traces. The shard count is
/// clamped to `1 + n_leaves` (spine shard + one shard per leaf).
pub(crate) fn run_sharded(cfg: SimConfig, specs: Vec<FlowSpec>, shards: u16) -> RunResult {
    let n_shards = shards.min(1 + cfg.topo.n_leaves as u16);
    if n_shards <= 1 || cfg.monitor.is_some() || !cfg.trace_flows.is_empty() {
        return Simulation::new(cfg, specs).run();
    }
    let n = n_shards as usize;
    let n_flows = specs.len();
    let hard_stop = cfg.hard_stop;
    let w_ps = cfg.link_delay().as_ps();
    assert!(w_ps > 0, "bounded-window sharding needs a nonzero link delay");

    let mut sims: Vec<Simulation> = (0..n_shards)
        .map(|s| Simulation::new_shard(cfg.clone(), specs.clone(), s, n_shards))
        .collect();
    let statuses: Vec<Mutex<Status>> = (0..n).map(|_| Mutex::new(Status::default())).collect();
    let mailbox: Vec<Vec<Mutex<Vec<WireMsg>>>> = (0..n)
        .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = Barrier::new(n);

    let wall_start = std::time::Instant::now(); // lint:allow(wall-clock)
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let (statuses, mailbox, barrier) = (&statuses, &mailbox, &barrier);
        let handles: Vec<_> = sims
            .iter_mut()
            .enumerate()
            .map(|(me, sim)| {
                scope.spawn(move || {
                    worker(
                        sim, me, n_flows, hard_stop, w_ps, statuses, mailbox, barrier,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let wall = wall_start.elapsed();

    let (end_time, events_processed) = {
        let total: u64 = outcomes.iter().map(|o| o.dispatched).sum();
        let end = match outcomes[0].decision {
            Decision::Complete { k } => SimTime(k.0),
            Decision::Advance { .. } => unreachable!("terminal decision"),
            Decision::Drained { end } | Decision::HardStop { end } => end,
        };
        (end, total)
    };

    let endpoints: Vec<(u16, u16)> = (0..n_flows)
        .map(|i| sims[0].flow_endpoint_shards(i))
        .collect();
    let parts: Vec<ShardParts> = sims.into_iter().map(Simulation::into_parts).collect();

    // Per-flow records: sender-side fields live on the src shard, OOO
    // reception on the dst shard, and recirculations accumulate on
    // whichever shards own the recirculating switches.
    let mut records = Vec::with_capacity(n_flows);
    for (i, &(src_s, dst_s)) in endpoints.iter().enumerate() {
        let mut rec = parts[src_s as usize].records[i].clone();
        let dst = &parts[dst_s as usize].records[i];
        rec.ooo_packets = dst.ooo_packets;
        rec.max_ood = dst.max_ood;
        rec.recirculations = parts.iter().map(|p| p.records[i].recirculations).sum();
        records.push(rec);
    }

    let mut counters = FabricCounters::default();
    let mut ood_histogram = LogHistogram::default();
    let mut pfc_pauses_by_port = std::collections::BTreeMap::new();
    for p in &parts {
        counters.merge(&p.counters);
        ood_histogram.merge(&p.ood_histogram);
        for (&k, &v) in &p.pfc_pauses_by_port {
            *pfc_pauses_by_port.entry(k).or_insert(0) += v;
        }
    }

    let eps = if wall.as_secs_f64() > 0.0 {
        events_processed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    let perf = PerfStats {
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: eps,
        decisions: parts.iter().map(|p| p.perf_decisions).sum(),
        snapshot_reuses: parts.iter().map(|p| p.snap_reuses).sum(),
        snapshot_refreshes: parts.iter().map(|p| p.snap_refreshes).sum(),
        snapshot_rebuilds: parts.iter().map(|p| p.snap_rebuilds).sum(),
        snapshot_dirty_queue_spines: parts.iter().map(|p| p.snap_dirty_q_spines).sum(),
        snapshot_dirty_sig_spines: parts.iter().map(|p| p.snap_dirty_sig_spines).sum(),
        arena_high_water: parts.iter().map(|p| p.arena_high_water).max().unwrap_or(0),
        arena_capacity: parts.iter().map(|p| p.arena_capacity).max().unwrap_or(0),
        shards: n as u64,
        window_advances: outcomes[0].windows,
        cross_shard_messages: outcomes.iter().map(|o| o.cross_msgs).sum(),
        barrier_stalls: outcomes.iter().map(|o| o.stalls).sum(),
        // Sum of per-shard dispatch throughputs over time actually spent
        // dispatching (barrier waits excluded) — the scaling headline.
        aggregate_events_per_sec: outcomes
            .iter()
            .map(|o| {
                if o.busy_secs > 0.0 {
                    o.dispatched as f64 / o.busy_secs
                } else {
                    0.0
                }
            })
            .sum(),
    };

    RunResult {
        records,
        counters,
        ood_histogram,
        end_time,
        events_processed,
        groups: parts[0].groups.clone(),
        timeseries: FabricTimeSeries::default(),
        traces: FlowTraces::default(),
        pfc_pauses_by_port,
        perf,
    }
}
