//! ECMP: flow-level hashing, the coarse baseline (§5, "flow-level coarse
//! granularity to avoid out-of-order delivery at the cost of low link
//! utilization"). Never reorders, never rebalances.

use crate::api::{Ctx, LoadBalancer, PathIdx};

#[derive(Debug, Default)]
pub struct Ecmp;

/// SplitMix-style hash — stable across runs for a given flow id.
#[inline]
pub(crate) fn hash64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LoadBalancer for Ecmp {
    fn name(&self) -> &'static str {
        "ECMP"
    }

    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        (hash64(ctx.flow_id) % ctx.paths.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PathInfo;

    fn ctx(paths: &[PathInfo], flow_id: u64, seq: u32) -> Ctx<'_> {
        Ctx {
            now_ps: 0,
            flow_id,
            dst_leaf: 1,
            seq,
            pkt_bytes: 1000,
            paths,
        }
    }

    #[test]
    fn same_flow_always_same_path() {
        let paths = vec![PathInfo::default(); 8];
        let mut lb = Ecmp;
        let p0 = lb.select(&ctx(&paths, 42, 0));
        for seq in 1..100 {
            assert_eq!(lb.select(&ctx(&paths, 42, seq)), p0);
        }
    }

    #[test]
    fn different_flows_spread_over_paths() {
        let paths = vec![PathInfo::default(); 8];
        let mut lb = Ecmp;
        let mut used = std::collections::HashSet::new();
        for f in 0..200u64 {
            used.insert(lb.select(&ctx(&paths, f, 0)));
        }
        assert!(used.len() >= 7, "hash should cover nearly all paths: {used:?}");
    }

    #[test]
    fn path_index_always_valid() {
        let mut lb = Ecmp;
        for n in 1..10 {
            let paths = vec![PathInfo::default(); n];
            for f in 0..50u64 {
                assert!(lb.select(&ctx(&paths, f, 0)) < n);
            }
        }
    }
}
