//! LetFlow (Vanini et al., NSDI 2017): flowlet switching with *random*
//! path choice.
//!
//! A flowlet is a burst of packets of one flow separated from the next
//! burst by an idle gap exceeding the flowlet timeout. Each new flowlet is
//! assigned a uniformly random path; elastic flowlet sizes then balance
//! load automatically. If the gap exceeds the maximum path-delay skew the
//! switch never reorders — which is exactly the property PFC pausing breaks
//! (a paused path inflates its delay far beyond the gap used to size the
//! timeout, §2.2.1).

use crate::api::{Ctx, LoadBalancer, PathIdx};
use rand::Rng;
use rlb_engine::{FlowTable, SimRng};

/// Default flowlet inactivity timeout. The LetFlow paper explores tens to
/// hundreds of microseconds; 50 µs suits a 2 µs-link 40 Gbps fabric whose
/// base RTT is ~18 µs (and makes DCQCN-paced gaps of throttled flows
/// fragment into flowlets, as they do in the paper's congested runs).
pub const DEFAULT_FLOWLET_TIMEOUT_PS: u64 = 50_000_000;

#[derive(Debug, Clone, Copy)]
struct FlowletEntry {
    path: PathIdx,
    last_seen_ps: u64,
}

pub struct LetFlow {
    timeout_ps: u64,
    table: FlowTable<FlowletEntry>,
    rng: SimRng,
    /// Flowlet switches performed (diagnostic).
    pub flowlet_switches: u64,
}

impl LetFlow {
    pub fn new(rng: SimRng) -> LetFlow {
        LetFlow::with_timeout(rng, DEFAULT_FLOWLET_TIMEOUT_PS)
    }

    pub fn with_timeout(rng: SimRng, timeout_ps: u64) -> LetFlow {
        assert!(timeout_ps > 0);
        LetFlow {
            timeout_ps,
            table: FlowTable::new(),
            rng,
            flowlet_switches: 0,
        }
    }
}

impl LoadBalancer for LetFlow {
    fn name(&self) -> &'static str {
        "LetFlow"
    }

    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let n = ctx.paths.len();
        match self.table.get_mut(ctx.flow_id) {
            Some(entry) if ctx.now_ps.saturating_sub(entry.last_seen_ps) < self.timeout_ps => {
                entry.last_seen_ps = ctx.now_ps;
                entry.path
            }
            existing => {
                let path = self.rng.gen_range(0..n);
                if existing.is_some() {
                    self.flowlet_switches += 1;
                }
                self.table.insert(
                    ctx.flow_id,
                    FlowletEntry {
                        path,
                        last_seen_ps: ctx.now_ps,
                    },
                );
                path
            }
        }
    }

    fn on_flow_complete(&mut self, flow_id: u64) {
        self.table.remove(flow_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PathInfo;
    use rlb_engine::substream;

    fn ctx(paths: &[PathInfo], flow_id: u64, now_ps: u64) -> Ctx<'_> {
        Ctx {
            now_ps,
            flow_id,
            dst_leaf: 0,
            seq: 0,
            pkt_bytes: 1000,
            paths,
        }
    }

    fn lb() -> LetFlow {
        LetFlow::with_timeout(substream(1, b"letflow-test", 0), 1_000_000) // 1 µs timeout
    }

    #[test]
    fn packets_within_gap_stay_on_path() {
        let paths = vec![PathInfo::default(); 8];
        let mut lb = lb();
        let p = lb.select(&ctx(&paths, 5, 0));
        for t in (0..50).map(|i| i * 900_000) {
            // gaps of 0.9 µs < 1 µs timeout: same flowlet
            assert_eq!(lb.select(&ctx(&paths, 5, t)), p);
        }
        assert_eq!(lb.flowlet_switches, 0);
    }

    #[test]
    fn gap_beyond_timeout_may_switch_path() {
        let paths = vec![PathInfo::default(); 16];
        let mut lb = lb();
        lb.select(&ctx(&paths, 5, 0));
        // Many flowlets: with 16 paths, at least one reroll lands elsewhere.
        let mut distinct = std::collections::HashSet::new();
        for k in 1..40u64 {
            distinct.insert(lb.select(&ctx(&paths, 5, k * 2_000_000)));
        }
        assert!(distinct.len() > 1, "random rerolls never moved");
        assert_eq!(lb.flowlet_switches, 39);
    }

    #[test]
    fn flows_are_independent() {
        let paths = vec![PathInfo::default(); 16];
        let mut lb = lb();
        let mut used = std::collections::HashSet::new();
        for f in 0..64 {
            used.insert(lb.select(&ctx(&paths, f, 0)));
        }
        assert!(used.len() > 4, "random initial picks should spread");
    }

    #[test]
    fn timeout_boundary_is_exclusive_below() {
        let paths = vec![PathInfo::default(); 4];
        let mut lb = LetFlow::with_timeout(substream(2, b"letflow-test", 1), 1_000);
        let p = lb.select(&ctx(&paths, 1, 0));
        // exactly at timeout: new flowlet (gap >= timeout)
        let _ = lb.select(&ctx(&paths, 1, 1_000));
        assert_eq!(lb.flowlet_switches, 1);
        // strictly below: same flowlet
        let q = lb.select(&ctx(&paths, 1, 1_999));
        assert_eq!(lb.flowlet_switches, 1);
        let _ = (p, q);
    }

    #[test]
    fn completion_clears_table() {
        let paths = vec![PathInfo::default(); 4];
        let mut lb = lb();
        lb.select(&ctx(&paths, 1, 0));
        lb.on_flow_complete(1);
        assert!(lb.table.is_empty());
    }
}
