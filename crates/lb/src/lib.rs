//! # rlb-lb — datacenter load-balancing schemes
//!
//! The four schemes the paper integrates RLB with (§2.1.3), plus an ECMP
//! baseline, all implementing [`LoadBalancer`] over an abstract per-uplink
//! snapshot ([`PathInfo`]):
//!
//! | Scheme | Granularity | Signal |
//! |---|---|---|
//! | [`Ecmp`] | flow | hash only |
//! | [`Presto`] | 64 KB flowcell | round-robin |
//! | [`LetFlow`] | flowlet | randomness + flowlet gaps |
//! | [`Hermes`] | flow w/ cautious rerouting | end-to-end ECN + RTT |
//! | [`Drill`] | packet | local queue lengths (power of two choices) |
//!
//! None of them can see hop-by-hop PFC state — that blindness is what
//! `rlb-core` repairs.

// Library code must justify every panic site: bare unwrap() is denied here
// (tests are exempt). Enforced alongside `cargo xtask lint`'s lib-unwrap rule.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod api;
pub mod conga;
pub mod drill;
pub mod ecmp;
pub mod hermes;
pub mod letflow;
pub mod presto;

pub use api::{Ctx, LoadBalancer, PathIdx, PathInfo, Scheme};
pub use conga::Conga;
pub use drill::Drill;
pub use ecmp::Ecmp;
pub use hermes::{Hermes, HermesConfig};
pub use letflow::LetFlow;
pub use presto::Presto;

/// One-line import for scheme implementors and simulators:
/// `use rlb_lb::prelude::*;` brings in the trait, the decision context,
/// every concrete scheme, and the [`build`] constructor.
pub mod prelude {
    pub use crate::api::{Ctx, LoadBalancer, PathIdx, PathInfo, Scheme};
    pub use crate::{build, Conga, Drill, Ecmp, Hermes, HermesConfig, LetFlow, Presto};
}

use rlb_engine::SimRng;

/// Construct a scheme by id with its paper-default parameters.
pub fn build(scheme: Scheme, mtu_bytes: u64, rng: SimRng) -> Box<dyn LoadBalancer> {
    match scheme {
        Scheme::Ecmp => Box::new(Ecmp),
        Scheme::Presto => Box::new(Presto::new(mtu_bytes)),
        Scheme::LetFlow => Box::new(LetFlow::new(rng)),
        Scheme::Hermes => Box::new(Hermes::new(rng)),
        Scheme::Drill => Box::new(Drill::new(rng)),
        Scheme::Conga => Box::new(Conga::new(rng)),
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rlb_engine::substream;

    fn arbitrary_paths(n: usize, seed: u64) -> Vec<PathInfo> {
        use rand::Rng;
        let mut rng = substream(seed, b"paths", 0);
        (0..n)
            .map(|_| PathInfo {
                queue_bytes: rng.gen_range(0..1_000_000),
                paused: rng.gen_bool(0.2),
                warned: rng.gen_bool(0.2),
                rtt_ns: rng.gen_range(5_000.0..200_000.0),
                ecn_fraction: rng.gen_range(0.0..1.0),
                link_rate_bps: 40e9,
            })
            .collect()
    }

    proptest! {
        /// Every scheme returns an in-range path for arbitrary snapshots,
        /// flows and sequence numbers.
        #[test]
        fn selection_always_in_range(
            n in 1usize..40,
            seed in any::<u64>(),
            flow in any::<u64>(),
            seq in 0u32..100_000,
        ) {
            let paths = arbitrary_paths(n, seed);
            let ctx = Ctx {
                now_ps: seq as u64 * 1_000_000,
                flow_id: flow,
                dst_leaf: 0,
                seq,
                pkt_bytes: 1000,
                paths: &paths,
            };
            for scheme in [Scheme::Ecmp, Scheme::Presto, Scheme::LetFlow, Scheme::Hermes, Scheme::Drill, Scheme::Conga] {
                let mut lb = build(scheme, 1000, substream(seed, b"lb", scheme as u64));
                let p = lb.select(&ctx);
                prop_assert!(p < n, "{} returned {p} of {n}", lb.name());
            }
        }

        /// Presto path is a pure function of (flow, seq): same inputs, same
        /// path, regardless of interleaving with other flows.
        #[test]
        fn presto_is_deterministic_per_cell(
            flow in any::<u64>(),
            seq in 0u32..10_000,
            noise in proptest::collection::vec((any::<u64>(), 0u32..10_000), 0..30),
        ) {
            let paths = vec![PathInfo::default(); 12];
            let mk_ctx = |f: u64, s: u32| Ctx {
                now_ps: 0, flow_id: f, dst_leaf: 0, seq: s, pkt_bytes: 1000, paths: &paths,
            };
            let mut lb = Presto::new(1000);
            let first = lb.select(&mk_ctx(flow, seq));
            for (f, s) in noise {
                lb.select(&mk_ctx(f, s));
            }
            prop_assert_eq!(lb.select(&mk_ctx(flow, seq)), first);
        }

        /// LetFlow within-gap stability: consecutive packets of one flow
        /// with sub-timeout gaps never change path.
        #[test]
        fn letflow_no_switch_within_gap(
            seed in any::<u64>(),
            gaps in proptest::collection::vec(0u64..49_999_999, 1..50),
        ) {
            let paths = vec![PathInfo::default(); 16];
            let mut lb = LetFlow::new(substream(seed, b"lf", 0));
            let mut now = 0u64;
            let mk_ctx = |t: u64| Ctx {
                now_ps: t, flow_id: 5, dst_leaf: 0, seq: 0, pkt_bytes: 1000, paths: &paths,
            };
            let first = lb.select(&mk_ctx(now));
            for g in gaps {
                now += g; // all gaps below the 50 µs default timeout
                prop_assert_eq!(lb.select(&mk_ctx(now)), first);
            }
        }
    }
}
