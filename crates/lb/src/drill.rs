//! DRILL (Ghorbani et al., SIGCOMM 2017): per-packet micro load balancing.
//!
//! For every packet, sample `d` random uplinks, compare them together with
//! the `m` best ports remembered from previous decisions, and send the
//! packet to the least-loaded (shortest local egress queue). The classic
//! configuration — and ours — is DRILL(d=2, m=1).
//!
//! DRILL only reads *local* queue lengths; it cannot see PFC pauses at the
//! remote downstream switch — which is why the paper finds it suffers the
//! worst reordering once PFC kicks in (§2.2.1: "the local queue length used
//! by DRILL cannot timely sense the PFC pausing on the remote downstream
//! switches").

use crate::api::{Ctx, LoadBalancer, PathIdx};
use rand::Rng;
use rlb_engine::SimRng;

pub struct Drill {
    /// Random samples per decision.
    d: usize,
    /// Remembered least-loaded port from the previous decision (m = 1).
    memory: Option<PathIdx>,
    rng: SimRng,
}

impl Drill {
    pub fn new(rng: SimRng) -> Drill {
        Drill::with_samples(rng, 2)
    }

    pub fn with_samples(rng: SimRng, d: usize) -> Drill {
        assert!(d >= 1);
        Drill {
            d,
            memory: None,
            rng,
        }
    }
}

impl LoadBalancer for Drill {
    fn name(&self) -> &'static str {
        "DRILL"
    }

    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let n = ctx.paths.len();
        let mut best: Option<PathIdx> = None;
        let consider = |idx: PathIdx, best: &mut Option<PathIdx>| {
            let better = match *best {
                None => true,
                Some(b) => ctx.paths[idx].queue_bytes < ctx.paths[b].queue_bytes,
            };
            if better {
                *best = Some(idx);
            }
        };
        for _ in 0..self.d.min(n) {
            let idx = self.rng.gen_range(0..n);
            consider(idx, &mut best);
        }
        if let Some(m) = self.memory {
            if m < n {
                consider(m, &mut best);
            }
        }
        let chosen = best.expect("at least one candidate");
        self.memory = Some(chosen);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PathInfo;
    use rlb_engine::substream;

    fn ctx(paths: &[PathInfo]) -> Ctx<'_> {
        Ctx {
            now_ps: 0,
            flow_id: 1,
            dst_leaf: 0,
            seq: 0,
            pkt_bytes: 1000,
            paths,
        }
    }

    fn lb() -> Drill {
        Drill::new(substream(7, b"drill-test", 0))
    }

    #[test]
    fn prefers_shorter_queue_among_candidates() {
        // With one empty queue among loaded ones, repeated decisions must
        // overwhelmingly land on the empty one (memory locks onto it).
        let mut paths = vec![
            PathInfo {
                queue_bytes: 1_000_000,
                ..PathInfo::default()
            };
            8
        ];
        paths[3].queue_bytes = 0;
        let mut d = lb();
        let mut hits = 0;
        for _ in 0..200 {
            if d.select(&ctx(&paths)) == 3 {
                hits += 1;
            }
        }
        assert!(hits > 150, "expected memory to lock onto port 3, hits={hits}");
    }

    #[test]
    fn memory_carries_best_port_forward() {
        let mut paths = vec![PathInfo::default(); 4];
        for (i, p) in paths.iter_mut().enumerate() {
            p.queue_bytes = (i as u64 + 1) * 1000;
        }
        paths[0].queue_bytes = 0;
        let mut d = lb();
        // Force memory onto 0 by repeated sampling…
        for _ in 0..50 {
            d.select(&ctx(&paths));
        }
        assert_eq!(d.memory, Some(0));
        // …then make 0 the worst: DRILL should move away once sampling
        // finds anything better.
        paths[0].queue_bytes = 1_000_000;
        let mut moved = false;
        for _ in 0..20 {
            if d.select(&ctx(&paths)) != 0 {
                moved = true;
                break;
            }
        }
        assert!(moved, "DRILL stuck on stale memory");
    }

    #[test]
    fn stale_memory_index_is_ignored_when_out_of_range() {
        let big = vec![PathInfo::default(); 8];
        let small = vec![PathInfo::default(); 2];
        let mut d = lb();
        for _ in 0..20 {
            d.select(&ctx(&big));
        }
        // Now decide over a smaller path set; must not panic.
        let p = d.select(&ctx(&small));
        assert!(p < 2);
    }

    #[test]
    fn single_path_degenerates_gracefully() {
        let one = vec![PathInfo::default()];
        let mut d = lb();
        assert_eq!(d.select(&ctx(&one)), 0);
    }

    #[test]
    fn per_packet_decisions_spread_under_equal_load() {
        let paths = vec![PathInfo::default(); 8];
        let mut d = lb();
        let mut used = std::collections::HashSet::new();
        for _ in 0..300 {
            used.insert(d.select(&ctx(&paths)));
        }
        // Ties keep memory sticky, but random sampling still explores.
        assert!(used.len() >= 2);
    }
}
