//! The load-balancer interface.
//!
//! In a two-tier leaf–spine fabric the only real path decision is which
//! uplink (spine) the **source leaf** forwards a packet to — the spine's
//! downlink and the destination leaf's host port are determined by the
//! destination. Each scheme therefore implements one function: given a
//! snapshot of every candidate uplink's state, pick one.
//!
//! Vanilla schemes must only read the signals their papers use (local queue
//! lengths for DRILL, flowlet gaps for LetFlow, ...). The `warned` flag is
//! populated by the RLB predictor and is exclusively consumed by
//! `rlb-core`'s rerouting module — that separation is the paper's whole
//! point (§2.2: existing schemes cannot perceive PFC pausing).

use serde::Serialize;

/// Per-candidate-path state snapshot presented to a scheme.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PathInfo {
    /// Bytes queued in the local egress queue of this uplink.
    pub queue_bytes: u64,
    /// The uplink egress is currently paused by a *real* PFC PAUSE.
    pub paused: bool,
    /// RLB PFC-warning active for this (uplink, destination-leaf) path.
    /// Only `rlb-core` may act on this.
    pub warned: bool,
    /// Estimated RTT of the path to the destination leaf, nanoseconds.
    pub rtt_ns: f64,
    /// EWMA fraction of ECN-marked feedback on this path (Hermes signal).
    pub ecn_fraction: f64,
    /// Uplink capacity — differs across paths in asymmetric topologies.
    pub link_rate_bps: f64,
}

/// A neutral path: empty queue, 10 µs RTT, clean 40G link. The starting
/// point simulators refine with live switch state, and the baseline tests
/// perturb one field at a time from.
impl Default for PathInfo {
    fn default() -> PathInfo {
        PathInfo {
            queue_bytes: 0,
            paused: false,
            warned: false,
            rtt_ns: 10_000.0,
            ecn_fraction: 0.0,
            link_rate_bps: 40e9,
        }
    }
}

impl PathInfo {
    /// A neutral default for tests: empty queue, 10 µs RTT, clean path.
    #[deprecated(since = "0.1.0", note = "use `PathInfo::default()`")]
    pub fn idle() -> PathInfo {
        PathInfo::default()
    }
}

/// Context for one forwarding decision.
#[derive(Debug, Clone, Copy)]
pub struct Ctx<'a> {
    pub now_ps: u64,
    pub flow_id: u64,
    /// Destination leaf (all paths in `paths` lead to it).
    pub dst_leaf: u32,
    /// Packet sequence number within the flow (PSN).
    pub seq: u32,
    /// Packet payload bytes.
    pub pkt_bytes: u32,
    /// Candidate uplinks; index is the path id handed back by `select`.
    pub paths: &'a [PathInfo],
}

/// A path decision: index into `Ctx::paths`.
pub type PathIdx = usize;

/// A load-balancing scheme deployed at the source leaf.
pub trait LoadBalancer: Send {
    fn name(&self) -> &'static str;

    /// Choose the uplink for this packet. Must return a valid index into
    /// `ctx.paths`.
    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx;

    /// Feedback from returning ACKs traversing this leaf (per-path RTT
    /// sample and ECN-echo), consumed by congestion-aware schemes (Hermes).
    fn observe_ack(&mut self, _dst_leaf: u32, _path: PathIdx, _rtt_ns: f64, _ecn: bool) {}

    /// A flow finished; schemes may garbage-collect per-flow state.
    fn on_flow_complete(&mut self, _flow_id: u64) {}
}

/// Identifier for constructing schemes from experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Scheme {
    Ecmp,
    Presto,
    LetFlow,
    Hermes,
    Drill,
    /// CONGA — not one of the paper's four integrations; an extra baseline.
    Conga,
}

impl Scheme {
    pub const PAPER_SET: [Scheme; 4] = [Scheme::Presto, Scheme::LetFlow, Scheme::Hermes, Scheme::Drill];

    pub fn name(self) -> &'static str {
        match self {
            Scheme::Ecmp => "ECMP",
            Scheme::Presto => "Presto",
            Scheme::LetFlow => "LetFlow",
            Scheme::Hermes => "Hermes",
            Scheme::Drill => "DRILL",
            Scheme::Conga => "CONGA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Presto.name(), "Presto");
        assert_eq!(Scheme::PAPER_SET.len(), 4);
        assert!(!Scheme::PAPER_SET.contains(&Scheme::Ecmp));
    }

    #[test]
    fn default_path_is_clean() {
        let p = PathInfo::default();
        assert!(!p.paused && !p.warned);
        assert_eq!(p.queue_bytes, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn idle_alias_matches_default() {
        let a = PathInfo::idle();
        let d = PathInfo::default();
        assert_eq!(a.queue_bytes, d.queue_bytes);
        assert_eq!((a.paused, a.warned), (d.paused, d.warned));
        assert_eq!(a.rtt_ns.to_bits(), d.rtt_ns.to_bits());
        assert_eq!(a.link_rate_bps.to_bits(), d.link_rate_bps.to_bits());
    }
}
