//! CONGA (Alizadeh et al., SIGCOMM 2014): distributed congestion-aware
//! flowlet load balancing.
//!
//! CONGA detects flowlets like LetFlow but replaces the random path pick
//! with an argmin over a leaf-to-leaf congestion table, fed by congestion
//! metrics piggybacked on traffic (a discounting rate estimator per link).
//! In this simulator's abstraction the per-path snapshot already carries
//! the two feedback signals a CONGA leaf would have — the local uplink
//! queue and the remote congestion estimate (ECN fraction EWMA) — so the
//! path metric is `max(local utilisation, remote congestion)`, matching
//! CONGA's max-of-links path metric in a two-tier fabric.
//!
//! CONGA is not one of the paper's four integrations; it is included as an
//! additional baseline (the paper discusses it in §2.1.3/§5) and for the
//! ablation harness.

use crate::api::{Ctx, LoadBalancer, PathIdx};
use rand::Rng;
use rlb_engine::{FlowTable, SimRng};

/// Flowlet timeout — CONGA uses ~100–500 µs; match LetFlow's default.
pub const DEFAULT_FLOWLET_TIMEOUT_PS: u64 = crate::letflow::DEFAULT_FLOWLET_TIMEOUT_PS;

/// Local-queue depth that counts as "fully congested" when normalizing the
/// local half of the path metric.
const LOCAL_SATURATION_BYTES: f64 = 256.0 * 1024.0;

#[derive(Debug, Clone, Copy)]
struct FlowletEntry {
    path: PathIdx,
    last_seen_ps: u64,
}

pub struct Conga {
    timeout_ps: u64,
    table: FlowTable<FlowletEntry>,
    rng: SimRng,
    pub flowlet_switches: u64,
}

impl Conga {
    pub fn new(rng: SimRng) -> Conga {
        Conga::with_timeout(rng, DEFAULT_FLOWLET_TIMEOUT_PS)
    }

    pub fn with_timeout(rng: SimRng, timeout_ps: u64) -> Conga {
        assert!(timeout_ps > 0);
        Conga {
            timeout_ps,
            table: FlowTable::new(),
            rng,
            flowlet_switches: 0,
        }
    }

    /// CONGA's path congestion metric: the max of the local (uplink) and
    /// remote (fabric feedback) congestion estimates, each in [0, 1+].
    fn metric(p: &crate::api::PathInfo) -> f64 {
        let local = p.queue_bytes as f64 / LOCAL_SATURATION_BYTES;
        let remote = p.ecn_fraction;
        local.max(remote)
    }

    fn best_path(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let mut best_metric = f64::INFINITY;
        for p in ctx.paths {
            let m = Self::metric(p);
            if m < best_metric {
                best_metric = m;
            }
        }
        // Random tie-break among near-equal minima so flowlets spread.
        let ties: Vec<PathIdx> = ctx
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| Self::metric(p) <= best_metric + 1e-9)
            .map(|(i, _)| i)
            .collect();
        ties[self.rng.gen_range(0..ties.len())]
    }
}

impl LoadBalancer for Conga {
    fn name(&self) -> &'static str {
        "CONGA"
    }

    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let n = ctx.paths.len();
        if let Some(entry) = self.table.get_mut(ctx.flow_id) {
            if ctx.now_ps.saturating_sub(entry.last_seen_ps) < self.timeout_ps && entry.path < n {
                entry.last_seen_ps = ctx.now_ps;
                return entry.path;
            }
        }
        let path = self.best_path(ctx);
        if self.table.contains_key(ctx.flow_id) {
            self.flowlet_switches += 1;
        }
        self.table.insert(
            ctx.flow_id,
            FlowletEntry {
                path,
                last_seen_ps: ctx.now_ps,
            },
        );
        path
    }

    fn on_flow_complete(&mut self, flow_id: u64) {
        self.table.remove(flow_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PathInfo;
    use rlb_engine::substream;

    fn ctx(paths: &[PathInfo], flow_id: u64, now_ps: u64) -> Ctx<'_> {
        Ctx {
            now_ps,
            flow_id,
            dst_leaf: 0,
            seq: 0,
            pkt_bytes: 1000,
            paths,
        }
    }

    fn lb() -> Conga {
        Conga::with_timeout(substream(5, b"conga-test", 0), 1_000_000)
    }

    #[test]
    fn new_flowlet_picks_least_congested_path() {
        let mut paths = vec![
            PathInfo {
                queue_bytes: 200_000,
                ecn_fraction: 0.0,
                ..PathInfo::default()
            };
            4
        ];
        paths[2].queue_bytes = 1_000;
        let mut c = lb();
        assert_eq!(c.select(&ctx(&paths, 1, 0)), 2);
    }

    #[test]
    fn remote_congestion_dominates_clean_local_queue() {
        // Path 0: empty local queue but heavy remote ECN feedback.
        // Path 1: moderate local queue, clean remote. CONGA's max-metric
        // must prefer path 1.
        let paths = vec![
            PathInfo {
                queue_bytes: 0,
                ecn_fraction: 0.9,
                ..PathInfo::default()
            },
            PathInfo {
                queue_bytes: 50_000,
                ecn_fraction: 0.0,
                ..PathInfo::default()
            },
        ];
        let mut c = lb();
        assert_eq!(c.select(&ctx(&paths, 1, 0)), 1);
    }

    #[test]
    fn flowlet_stickiness_within_timeout() {
        let paths = vec![PathInfo::default(); 8];
        let mut c = lb();
        let p = c.select(&ctx(&paths, 3, 0));
        for t in (0..20).map(|i| i * 900_000) {
            assert_eq!(c.select(&ctx(&paths, 3, t)), p);
        }
        assert_eq!(c.flowlet_switches, 0);
    }

    #[test]
    fn flowlet_gap_reroutes_toward_new_minimum() {
        let mut paths = vec![PathInfo::default(); 4];
        let mut c = lb();
        let p = c.select(&ctx(&paths, 3, 0));
        // Congest the current path; after a gap CONGA must leave it.
        paths[p].queue_bytes = 500_000;
        let q = c.select(&ctx(&paths, 3, 2_000_000));
        assert_ne!(q, p);
        assert_eq!(c.flowlet_switches, 1);
    }

    #[test]
    fn ties_spread_over_paths() {
        let paths = vec![PathInfo::default(); 8];
        let mut c = lb();
        let mut used = std::collections::HashSet::new();
        for f in 0..64 {
            used.insert(c.select(&ctx(&paths, f, 0)));
        }
        assert!(used.len() >= 4, "tie-break should spread: {used:?}");
    }
}
