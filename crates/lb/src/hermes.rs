//! Hermes (Zhang et al., SIGCOMM 2017): resilient, *deliberate* rerouting.
//!
//! Hermes senses each path with end-to-end signals (ECN fraction and RTT),
//! classifies paths as good / grey / bad, and reroutes a flow only when
//! that visibly pays off: the current path has turned bad, a clearly better
//! path exists, and the flow has sent enough bytes since its last reroute
//! that switching cannot thrash. This caution limits reordering in lossy
//! fabrics — but the signals are end-to-end and therefore *lag* hop-by-hop
//! PFC pausing (§2.2.1: "the ECN and RTT signals employed in Hermes are
//! difficult to feedback hop-by-hop PFC pausing in time").
//!
//! The classification thresholds follow the Hermes paper's structure,
//! parameterized on the fabric's base RTT.

use crate::api::{Ctx, LoadBalancer, PathIdx, PathInfo};
use rand::Rng;
use rlb_engine::{FlowTable, SimRng};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct HermesConfig {
    /// Uncongested fabric round-trip, ns.
    pub base_rtt_ns: f64,
    /// Path is "good" if ECN fraction below this and RTT below
    /// `rtt_good_factor * base_rtt`.
    pub ecn_good: f64,
    /// Path is "bad" if ECN fraction above this or RTT above
    /// `rtt_bad_factor * base_rtt`.
    pub ecn_bad: f64,
    pub rtt_good_factor: f64,
    pub rtt_bad_factor: f64,
    /// Minimum RTT advantage (ns) a candidate must show before a reroute.
    pub delta_rtt_ns: f64,
    /// A flow must have sent this many bytes since its last (re)route
    /// before Hermes will consider moving it again.
    pub min_bytes_between_reroutes: u64,
}

impl Default for HermesConfig {
    fn default() -> Self {
        let base = 10_000.0; // 10 µs
        HermesConfig {
            base_rtt_ns: base,
            ecn_good: 0.1,
            ecn_bad: 0.4,
            rtt_good_factor: 2.0,
            rtt_bad_factor: 4.0,
            delta_rtt_ns: base * 0.5,
            min_bytes_between_reroutes: 32 * 1024,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathClass {
    Good,
    Grey,
    Bad,
}

#[derive(Debug, Clone, Copy)]
struct FlowState {
    path: PathIdx,
    bytes_since_reroute: u64,
}

pub struct Hermes {
    cfg: HermesConfig,
    flows: FlowTable<FlowState>,
    rng: SimRng,
    pub reroutes: u64,
}

impl Hermes {
    pub fn new(rng: SimRng) -> Hermes {
        Hermes::with_config(rng, HermesConfig::default())
    }

    pub fn with_config(rng: SimRng, cfg: HermesConfig) -> Hermes {
        Hermes {
            cfg,
            flows: FlowTable::new(),
            rng,
            reroutes: 0,
        }
    }

    fn classify(&self, p: &PathInfo) -> PathClass {
        if p.ecn_fraction > self.cfg.ecn_bad
            || p.rtt_ns > self.cfg.rtt_bad_factor * self.cfg.base_rtt_ns
        {
            PathClass::Bad
        } else if p.ecn_fraction < self.cfg.ecn_good
            && p.rtt_ns < self.cfg.rtt_good_factor * self.cfg.base_rtt_ns
        {
            PathClass::Good
        } else {
            PathClass::Grey
        }
    }

    /// Best candidate: good paths first, then grey; within a class the
    /// lowest RTT wins, queue length breaking ties.
    fn best_path(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let mut best: Option<(PathClass, f64, u64, PathIdx)> = None;
        for (i, p) in ctx.paths.iter().enumerate() {
            let class = self.classify(p);
            let key = (class, p.rtt_ns, p.queue_bytes, i);
            let better = match &best {
                None => true,
                Some((bc, brtt, bq, _)) => {
                    let rank = |c: PathClass| match c {
                        PathClass::Good => 0,
                        PathClass::Grey => 1,
                        PathClass::Bad => 2,
                    };
                    (rank(class), p.rtt_ns, p.queue_bytes) < (rank(*bc), *brtt, *bq)
                }
            };
            if better {
                best = Some(key);
            }
        }
        let (best_class, best_rtt, _, best_idx) = best.expect("non-empty path set");
        // Random tie-break among equivalent best paths so new flows spread.
        let ties: Vec<PathIdx> = ctx
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| self.classify(p) == best_class && (p.rtt_ns - best_rtt).abs() < 1e-9)
            .map(|(i, _)| i)
            .collect();
        if ties.len() > 1 {
            ties[self.rng.gen_range(0..ties.len())]
        } else {
            best_idx
        }
    }
}

impl LoadBalancer for Hermes {
    fn name(&self) -> &'static str {
        "Hermes"
    }

    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let n = ctx.paths.len();
        match self.flows.get(ctx.flow_id).copied() {
            None => {
                let path = self.best_path(ctx);
                self.flows.insert(
                    ctx.flow_id,
                    FlowState {
                        path,
                        bytes_since_reroute: ctx.pkt_bytes as u64,
                    },
                );
                path
            }
            Some(mut st) => {
                if st.path >= n {
                    st.path %= n;
                }
                let current = &ctx.paths[st.path];
                let mut chosen = st.path;
                if self.classify(current) == PathClass::Bad
                    && st.bytes_since_reroute >= self.cfg.min_bytes_between_reroutes
                {
                    let cand = self.best_path(ctx);
                    let cp = &ctx.paths[cand];
                    // Deliberate switch: only to a good path with a clear
                    // RTT advantage (Hermes: reroute only if it gains).
                    if cand != st.path
                        && self.classify(cp) == PathClass::Good
                        && current.rtt_ns - cp.rtt_ns > self.cfg.delta_rtt_ns
                    {
                        chosen = cand;
                        self.reroutes += 1;
                        st.bytes_since_reroute = 0;
                    }
                }
                st.path = chosen;
                st.bytes_since_reroute += ctx.pkt_bytes as u64;
                self.flows.insert(ctx.flow_id, st);
                chosen
            }
        }
    }

    fn on_flow_complete(&mut self, flow_id: u64) {
        self.flows.remove(flow_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlb_engine::substream;

    fn ctx(paths: &[PathInfo], flow_id: u64) -> Ctx<'_> {
        Ctx {
            now_ps: 0,
            flow_id,
            dst_leaf: 0,
            seq: 0,
            pkt_bytes: 1000,
            paths,
        }
    }

    fn lb() -> Hermes {
        Hermes::new(substream(3, b"hermes-test", 0))
    }

    fn congested(rtt_ns: f64, ecn: f64) -> PathInfo {
        PathInfo {
            rtt_ns,
            ecn_fraction: ecn,
            ..PathInfo::default()
        }
    }

    #[test]
    fn new_flow_picks_a_good_low_rtt_path() {
        let mut paths = vec![congested(100_000.0, 0.9); 4]; // all bad
        paths[2] = congested(12_000.0, 0.0); // good
        let mut h = lb();
        assert_eq!(h.select(&ctx(&paths, 1)), 2);
    }

    #[test]
    fn flow_sticks_to_its_path_while_it_stays_healthy() {
        let paths = vec![PathInfo::default(); 4];
        let mut h = lb();
        let p = h.select(&ctx(&paths, 1));
        for _ in 0..200 {
            assert_eq!(h.select(&ctx(&paths, 1)), p);
        }
        assert_eq!(h.reroutes, 0);
    }

    #[test]
    fn reroutes_away_from_bad_path_after_enough_bytes() {
        let mut paths = vec![PathInfo::default(); 4];
        let mut h = lb();
        let p = h.select(&ctx(&paths, 1));
        // Turn the chosen path bad; others stay good.
        paths[p].rtt_ns = 100_000.0;
        paths[p].ecn_fraction = 0.9;
        // Below the byte threshold Hermes must not thrash.
        let early = h.select(&ctx(&paths, 1));
        assert_eq!(early, p, "rerouted before sending enough bytes");
        // Push enough bytes through.
        for _ in 0..40 {
            h.select(&ctx(&paths, 1));
        }
        let late = h.select(&ctx(&paths, 1));
        assert_ne!(late, p, "never escaped the bad path");
        assert!(h.reroutes >= 1);
    }

    #[test]
    fn no_reroute_without_clear_gain() {
        // Current path is bad, but every alternative is bad too.
        let paths = vec![congested(100_000.0, 0.9); 4];
        let mut h = lb();
        let p = h.select(&ctx(&paths, 1));
        for _ in 0..100 {
            assert_eq!(h.select(&ctx(&paths, 1)), p);
        }
        assert_eq!(h.reroutes, 0);
    }

    #[test]
    fn grey_paths_preferred_over_bad_for_new_flows() {
        let mut paths = vec![congested(100_000.0, 0.9); 3]; // bad
        paths[1] = congested(25_000.0, 0.2); // grey
        let mut h = lb();
        assert_eq!(h.select(&ctx(&paths, 7)), 1);
    }

    #[test]
    fn classification_thresholds() {
        let h = lb();
        assert_eq!(h.classify(&congested(12_000.0, 0.05)), PathClass::Good);
        assert_eq!(h.classify(&congested(12_000.0, 0.2)), PathClass::Grey);
        assert_eq!(h.classify(&congested(12_000.0, 0.6)), PathClass::Bad);
        assert_eq!(h.classify(&congested(45_000.0, 0.0)), PathClass::Bad);
        assert_eq!(h.classify(&congested(25_000.0, 0.0)), PathClass::Grey);
    }

    #[test]
    fn new_flows_spread_across_equivalent_paths() {
        let paths = vec![PathInfo::default(); 8];
        let mut h = lb();
        let mut used = std::collections::HashSet::new();
        for f in 0..64 {
            used.insert(h.select(&ctx(&paths, f)));
        }
        assert!(used.len() >= 4, "tie-break should spread: {used:?}");
    }
}
