//! Presto (He et al., SIGCOMM 2015): the edge slices each flow into
//! fixed-size *flowcells* (64 KB) and assigns consecutive cells to paths
//! round-robin.
//!
//! We implement the deterministic shadow-MAC flavour: flow `f`'s cell `k`
//! always maps to path `(base(f) + k) mod n`, where `base(f)` is chosen at
//! flow start. Determinism matters in a go-back-N world — a retransmitted
//! PSN re-enters its original cell and takes the same path, just as a real
//! Presto edge would re-emit it with the same shadow MAC.
//!
//! Note: Presto's receiver-side flowcell reassembly buffer (a TCP/GRO
//! feature) does not exist in RoCE NICs (§2.1.2 of the RLB paper: only
//! go-back-N fits in NIC memory), so it is deliberately not modelled.

use crate::api::{Ctx, LoadBalancer, PathIdx};
use crate::ecmp::hash64;
use rlb_engine::FlowTable;

/// Default flowcell size from the Presto paper.
pub const FLOWCELL_BYTES: u64 = 64 * 1024;

#[derive(Debug)]
pub struct Presto {
    cell_bytes: u64,
    mtu_bytes: u64,
    /// Flow → round-robin base path offset, assigned on first packet.
    base: FlowTable<u64>,
    /// Global round-robin cursor seeding new flows' bases, per Presto's
    /// cycle-through-spines behaviour.
    cursor: u64,
}

impl Presto {
    pub fn new(mtu_bytes: u64) -> Presto {
        Presto::with_cell_size(mtu_bytes, FLOWCELL_BYTES)
    }

    pub fn with_cell_size(mtu_bytes: u64, cell_bytes: u64) -> Presto {
        assert!(mtu_bytes > 0 && cell_bytes >= mtu_bytes);
        Presto {
            cell_bytes,
            mtu_bytes,
            base: FlowTable::new(),
            cursor: 0,
        }
    }

    /// Which flowcell a PSN falls into.
    #[inline]
    fn cell_of(&self, seq: u32) -> u64 {
        (seq as u64 * self.mtu_bytes) / self.cell_bytes
    }
}

impl LoadBalancer for Presto {
    fn name(&self) -> &'static str {
        "Presto"
    }

    fn select(&mut self, ctx: &Ctx<'_>) -> PathIdx {
        let n = ctx.paths.len() as u64;
        let cursor = &mut self.cursor;
        let base = *self.base.get_or_insert_with(ctx.flow_id, || {
            let b = *cursor ^ (hash64(ctx.flow_id) % n);
            *cursor = (*cursor + 1) % n;
            b % n
        });
        ((base + self.cell_of(ctx.seq)) % n) as usize
    }

    fn on_flow_complete(&mut self, flow_id: u64) {
        self.base.remove(flow_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PathInfo;

    fn ctx(paths: &[PathInfo], flow_id: u64, seq: u32) -> Ctx<'_> {
        Ctx {
            now_ps: 0,
            flow_id,
            dst_leaf: 0,
            seq,
            pkt_bytes: 1000,
            paths,
        }
    }

    #[test]
    fn packets_within_a_flowcell_share_a_path() {
        let paths = vec![PathInfo::default(); 4];
        let mut lb = Presto::new(1000);
        // 64 KB cell at 1 KB MTU = 65 packets per cell (64*1024/1000 = 65.5).
        let p = lb.select(&ctx(&paths, 7, 0));
        for seq in 1..65 {
            assert_eq!(lb.select(&ctx(&paths, 7, seq)), p, "seq {seq} left the cell");
        }
    }

    #[test]
    fn consecutive_cells_round_robin() {
        let paths = vec![PathInfo::default(); 4];
        let mut lb = Presto::new(1000);
        let pkts_per_cell = (FLOWCELL_BYTES / 1000) as u32 + 1; // first seq of next cell
        let c0 = lb.select(&ctx(&paths, 7, 0));
        let c1 = lb.select(&ctx(&paths, 7, pkts_per_cell));
        let c2 = lb.select(&ctx(&paths, 7, 2 * pkts_per_cell));
        assert_eq!(c1, (c0 + 1) % 4);
        assert_eq!(c2, (c0 + 2) % 4);
    }

    #[test]
    fn retransmissions_reuse_the_original_cell_path() {
        let paths = vec![PathInfo::default(); 8];
        let mut lb = Presto::new(1000);
        let first = lb.select(&ctx(&paths, 3, 10));
        // ... many packets later, PSN 10 is retransmitted:
        for seq in 11..500 {
            lb.select(&ctx(&paths, 3, seq));
        }
        assert_eq!(lb.select(&ctx(&paths, 3, 10)), first);
    }

    #[test]
    fn flows_start_on_spread_bases() {
        let paths = vec![PathInfo::default(); 8];
        let mut lb = Presto::new(1000);
        let mut used = std::collections::HashSet::new();
        for f in 0..64u64 {
            used.insert(lb.select(&ctx(&paths, f, 0)));
        }
        assert!(used.len() >= 6, "bases should spread: {used:?}");
    }

    #[test]
    fn flow_completion_clears_state() {
        let paths = vec![PathInfo::default(); 4];
        let mut lb = Presto::new(1000);
        lb.select(&ctx(&paths, 9, 0));
        assert_eq!(lb.base.len(), 1);
        lb.on_flow_complete(9);
        assert!(lb.base.is_empty());
    }

    #[test]
    #[should_panic]
    fn cell_smaller_than_mtu_rejected() {
        Presto::with_cell_size(9000, 1000);
    }
}
