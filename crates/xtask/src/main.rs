//! Workspace automation (the cargo-xtask pattern; alias in
//! `.cargo/config.toml`).
//!
//! ```text
//! cargo xtask lint [--deny]
//! ```
//!
//! runs the determinism / robustness scanner over every workspace `.rs`
//! file — see [`lint`] for the rules. Without `--deny`, warnings are
//! advisory and only error-severity findings fail the run; `--deny`
//! (CI mode) fails on any finding.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let deny = args.iter().any(|a| a == "--deny");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--deny") {
                eprintln!("unknown argument `{bad}`");
                return ExitCode::from(2);
            }
            lint::run(&workspace_root(), deny)
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--deny]");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask lives two levels below the workspace root")
        .to_path_buf()
}
