//! Workspace automation (the cargo-xtask pattern; alias in
//! `.cargo/config.toml`).
//!
//! ```text
//! cargo xtask lint                         # advisory: only errors fail
//! cargo xtask lint --deny                  # CI: any unsuppressed finding fails
//! cargo xtask lint --baseline lint-baseline.toml
//!                                          # ratchet: grandfathered findings
//!                                          # pass, new or stale ones fail
//! cargo xtask lint --update-baseline       # regenerate the ratchet file
//! cargo xtask lint --json [report.json]    # machine-readable report
//! cargo xtask lint --list-rules            # one line per rule
//! cargo xtask lint --explain <rule>        # rationale + bad/good example
//! cargo xtask spec-doc                     # regenerate the scenario-spec
//!                                          # reference in EXPERIMENTS.md
//! cargo xtask spec-doc --check             # CI: fail if the doc drifted
//! ```
//!
//! See [`lint`] for the framework (lexer, scope tree, rules, baseline)
//! and [`xtask::specdoc`] for the doc generator.

use xtask::{lint, specdoc};

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cli(&args[1..]),
        Some("spec-doc") => specdoc::cli(&workspace_root(), &args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--deny] [--baseline <path>] [--update-baseline] \
                 [--json [<path>]] [--list-rules] [--explain <rule>]\n       \
                 cargo xtask spec-doc [--check]"
            );
            ExitCode::from(2)
        }
    }
}

fn lint_cli(args: &[String]) -> ExitCode {
    let mut opts = lint::Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => opts.deny = true,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--baseline needs a path");
                    return ExitCode::from(2);
                };
                opts.baseline = Some(PathBuf::from(path));
            }
            "--json" => {
                // Optional path operand: `--json report.json` or bare
                // `--json` (stdout).
                match args.get(i + 1) {
                    Some(next) if !next.starts_with('-') => {
                        opts.json = Some(Some(PathBuf::from(next)));
                        i += 1;
                    }
                    _ => opts.json = Some(None),
                }
            }
            "--list-rules" => return list_rules(),
            "--explain" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--explain needs a rule name (see --list-rules)");
                    return ExitCode::from(2);
                };
                return explain(name);
            }
            bad => {
                eprintln!("unknown argument `{bad}`");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    lint::run(&workspace_root(), &opts)
}

fn list_rules() -> ExitCode {
    let width = lint::rules::ALL_RULES
        .iter()
        .map(|r| r.meta().name.len())
        .max()
        .unwrap_or(0);
    for rule in lint::rules::ALL_RULES {
        let m = rule.meta();
        println!("{:width$}  {:7}  {}", m.name, m.severity.to_string(), m.summary);
    }
    println!("\nrun `cargo xtask lint --explain <rule>` for rationale and examples");
    ExitCode::SUCCESS
}

fn explain(name: &str) -> ExitCode {
    match lint::rules::rule_by_name(name) {
        Some(rule) => {
            let m = rule.meta();
            println!("{} ({})\n", m.name, m.severity);
            println!("{}\n", m.explain);
            println!("help: {}", m.suggestion);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{name}`; `cargo xtask lint --list-rules` lists them");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask lives two levels below the workspace root")
        .to_path_buf()
}
