//! A hand-rolled Rust lexer for the lint framework.
//!
//! Produces a flat token stream with **byte spans** into the original
//! source, which is what makes diagnostics span-accurate and lets rules
//! reason about real token adjacency instead of substring matches. It is
//! not a full Rust lexer — no token trees, no macro expansion — but it is
//! exact on everything the old line scanner got wrong:
//!
//! * line comments (`//`, `///`, `//!`),
//! * block comments (`/* */`), **including nesting** and comments that
//!   span lines or share a line with code,
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, any hash depth, `br#"…"#`),
//! * char literals (`'x'`, `'\n'`, `'\u{1F980}'`) vs. lifetimes (`'a`),
//! * numeric literals with type suffixes (`1_000u64`, `2.5f64`, `1e9`,
//!   `0xFF`), distinguishing float from integer tokens,
//! * shebang lines.
//!
//! Comments are kept in the stream (the `lint:allow` machinery needs
//! them); rules iterate over [`Lexed::code_tokens`] which filters them
//! out.

/// What a token is. Identifiers are not split into keywords — rules match
/// on text where it matters, and keeping one kind keeps the lexer honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#match`).
    Ident,
    /// `'a` in `&'a str` — lexed separately so it never opens a char literal.
    Lifetime,
    /// Integer literal, including base prefixes and integer suffixes.
    Int,
    /// Float literal: has a `.`, an exponent, or an `f32`/`f64` suffix.
    Float,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` to end of line (plain and doc).
    LineComment,
    /// `/* … */`, nesting handled; spans multiple lines if it does.
    BlockComment,
    /// One punctuation byte (`.`, `:`, `{`, …). Multi-byte operators are
    /// consecutive `Punct` tokens; rules match the sequence.
    Punct,
}

/// One lexed token. `start..end` is a byte range into the source; `line`
/// is the 1-based line of `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// The full token stream for one file.
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
}

impl Lexed {
    /// Tokens that participate in code: everything except comments.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(_, t)| {
            !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
    }
}

/// Lex `src` into a token stream. Never fails: unterminated literals and
/// comments extend to end of input (the lint must degrade gracefully on
/// code that does not compile yet).
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run(src)
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'s> Lexer<'s> {
    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    /// Advance one byte, keeping the line counter current.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token { kind, start, end: self.pos, line });
    }

    fn run(mut self, src_str: &str) -> Lexed {
        // Shebang: `#!` on the very first line is not an inner attribute.
        if self.src.starts_with(b"#!") && self.peek(2) != b'[' {
            while self.pos < self.src.len() && self.peek(0) != b'\n' {
                self.bump();
            }
        }
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.peek(0);
            match b {
                b if b.is_ascii_whitespace() => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump_n(2);
                    let mut depth = 1u32;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'"' => {
                    self.bump();
                    self.plain_string_body();
                    self.push(TokenKind::Str, start, line);
                }
                b'r' | b'b' if self.raw_string_lookahead() => {
                    // r"…", r#"…"#, br"…", b"…", b'…' — all literal forms
                    // that begin with a letter prefix.
                    self.prefixed_literal(start, line);
                }
                b'\'' => self.quote(start, line),
                b if is_ident_start(b) => {
                    // r#ident raw identifiers: consume the r# then the name.
                    if (b == b'r' || b == b'b') && self.peek(1) == b'#' && is_ident_start(self.peek(2))
                    {
                        self.bump_n(2);
                    }
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                b if b.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        debug_assert!(self.tokens.iter().all(|t| src_str.is_char_boundary(t.start)
            && src_str.is_char_boundary(t.end)));
        Lexed { tokens: self.tokens }
    }

    /// After an opening `"`, consume through the closing quote, honouring
    /// backslash escapes. Unterminated → end of input.
    fn plain_string_body(&mut self) {
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Is the `r`/`b` at the cursor the start of a string/char literal
    /// (as opposed to an identifier like `radius`)?
    fn raw_string_lookahead(&self) -> bool {
        let b0 = self.peek(0);
        let (mut i, allow_char) = match (b0, self.peek(1)) {
            (b'b', b'r') => (2, false), // br"…" / br#"…"#
            (b'b', _) => (1, true),     // b"…" / b'…'
            (b'r', _) => (1, false),    // r"…" / r#"…"# (r#ident handled later)
            _ => return false,
        };
        while self.peek(i) == b'#' {
            i += 1;
        }
        // `r#ident` is a raw identifier, not a raw string: only the quote
        // (or for `b`, a char quote) makes this a literal.
        self.peek(i) == b'"' || (allow_char && i == 1 && self.peek(1) == b'\'')
    }

    /// Literal beginning with `r`/`b`/`br` prefix, cursor on the prefix.
    fn prefixed_literal(&mut self, start: usize, line: u32) {
        let raw = match (self.peek(0), self.peek(1)) {
            (b'b', b'r') => {
                self.bump_n(2);
                true
            }
            (b'r', _) => {
                self.bump();
                true
            }
            (b'b', b'\'') => {
                // Byte char literal b'x'.
                self.bump();
                let s = self.pos;
                let l = self.line;
                self.quote(s, l);
                // quote() already pushed a Char token for `'x'`; widen it
                // to include the `b` prefix.
                if let Some(t) = self.tokens.last_mut() {
                    t.start = start;
                    t.line = line;
                }
                return;
            }
            _ => {
                self.bump(); // b"…"
                false
            }
        };
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == b'#' {
                hashes += 1;
                self.bump();
            }
            debug_assert_eq!(self.peek(0), b'"');
            self.bump(); // opening quote
            // Scan for `"` followed by `hashes` hashes. No escapes in raw
            // strings — that is their point.
            'scan: while self.pos < self.src.len() {
                if self.peek(0) == b'"' {
                    for h in 0..hashes {
                        if self.peek(1 + h) != b'#' {
                            self.bump();
                            continue 'scan;
                        }
                    }
                    self.bump_n(1 + hashes);
                    break;
                }
                self.bump();
            }
        } else {
            debug_assert_eq!(self.peek(0), b'"');
            self.bump();
            self.plain_string_body();
        }
        self.push(TokenKind::Str, start, line);
    }

    /// A `'`: char literal or lifetime. Cursor on the quote.
    fn quote(&mut self, start: usize, line: u32) {
        self.bump(); // the '
        if self.peek(0) == b'\\' {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            self.bump_n(2);
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump(); // closing '
            self.push(TokenKind::Char, start, line);
            return;
        }
        if is_ident_start(self.peek(0)) && self.peek(1) != b'\'' {
            // Lifetime: 'a, 'static — an ident run with no closing quote.
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push(TokenKind::Lifetime, start, line);
            return;
        }
        // Plain char literal 'x' (including quote-adjacent idents like 'a'
        // caught by the peek(1) check above), or a stray quote.
        if self.peek(1) == b'\'' {
            self.bump_n(2);
            self.push(TokenKind::Char, start, line);
        } else {
            // Lone `'` (malformed) — emit as punct and move on.
            self.push(TokenKind::Punct, start, line);
        }
    }

    /// Numeric literal, cursor on the first digit.
    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump_n(2);
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            self.push(TokenKind::Int, start, line);
            return;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        // Fractional part — but `0..10` is a range and `1.max(2)` a method
        // call, so require a digit right after the dot.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        } else if self.peek(0) == b'.'
            && self.peek(1) != b'.'
            && !is_ident_start(self.peek(1))
        {
            // Trailing-dot float `1.` (rare, but legal).
            float = true;
            self.bump();
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump();
            if matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Type suffix (`u64`, `f64`, `usize`); `f32`/`f64` forces Float.
        if is_ident_start(self.peek(0)) {
            let suffix_start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
        self.push(if float { TokenKind::Float } else { TokenKind::Int }, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        let lexed = lex(src);
        lexed.code_tokens().map(|(_, t)| t.text(src).to_string()).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let got = kinds("fn f(x: u64) -> f64 { x as f64 * 2.5 }");
        let texts: Vec<&str> = got.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "f", "(", "x", ":", "u64", ")", "-", ">", "f64", "{", "x", "as",
             "f64", "*", "2.5", "}"]
        );
        assert_eq!(got[15].0, TokenKind::Float);
    }

    #[test]
    fn numeric_flavours() {
        for (src, kind) in [
            ("1_000", TokenKind::Int),
            ("1_000u64", TokenKind::Int),
            ("0xFF_u8", TokenKind::Int),
            ("0b1010", TokenKind::Int),
            ("2.5", TokenKind::Float),
            ("2.5f64", TokenKind::Float),
            ("1e9", TokenKind::Float),
            ("1.5e-3", TokenKind::Float),
            ("1f64", TokenKind::Float),
        ] {
            let toks = lex(src).tokens;
            assert_eq!(toks.len(), 1, "{src} should be one token");
            assert_eq!(toks[0].kind, kind, "{src}");
            assert_eq!(toks[0].text(src), src);
        }
    }

    #[test]
    fn ranges_and_field_access_are_not_floats() {
        let got = kinds("0..10");
        assert_eq!(got[0], (TokenKind::Int, "0".into()));
        assert_eq!(got[3], (TokenKind::Int, "10".into()));
        let got = kinds("t.0");
        assert_eq!(got[0].0, TokenKind::Ident);
        assert_eq!(got[2], (TokenKind::Int, "0".into()));
        // Method call on an integer literal.
        let got = kinds("1.max(2)");
        assert_eq!(got[0], (TokenKind::Int, "1".into()));
    }

    #[test]
    fn line_and_block_comments() {
        let src = "a // c1\nb /* c2 */ c";
        let got = kinds(src);
        assert_eq!(
            got,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::LineComment, "// c1".into()),
                (TokenKind::Ident, "b".into()),
                (TokenKind::BlockComment, "/* c2 */".into()),
                (TokenKind::Ident, "c".into()),
            ]
        );
        // Code after the comment keeps participating.
        assert_eq!(code_texts(src), ["a", "b", "c"]);
    }

    #[test]
    fn nested_and_multiline_block_comments() {
        let src = "before /* outer /* inner */ still-comment */ after";
        assert_eq!(code_texts(src), ["before", "after"]);
        let src = "x /* spans\nmultiple\nlines */ y";
        let lexed = lex(src);
        assert_eq!(code_texts(src), ["x", "y"]);
        // The `y` token knows its real line.
        let y = lexed.tokens.last().unwrap();
        assert_eq!(y.line, 3);
        // Unterminated block comment swallows to EOF without panicking.
        assert_eq!(code_texts("a /* never closed\nb c"), ["a"]);
    }

    #[test]
    fn strings_with_escapes() {
        let src = r#"f("has \" quote and HashMap")"#;
        let got = kinds(src);
        assert_eq!(got[2].0, TokenKind::Str);
        assert_eq!(got[2].1, r#""has \" quote and HashMap""#);
        assert_eq!(got.len(), 4); // f ( str )
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r##"let s = r#"raw "quoted" Instant::now"#; after()"##;
        let got = kinds(src);
        let s = got.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert_eq!(s.1, r##"r#"raw "quoted" Instant::now"#"##);
        // Code resumes after the raw string.
        assert!(got.iter().any(|(_, t)| t == "after"));
        // Zero-hash raw string.
        let src = r#"r"plain raw" x"#;
        let got = kinds(src);
        assert_eq!(got[0], (TokenKind::Str, r#"r"plain raw""#.into()));
        // Multi-line raw string: the following token's line is correct.
        let src = "r#\"line1\nline2\"# z";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[1].line, 2);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r##"b"bytes" br#"raw bytes"# b'x'"##;
        let got = kinds(src);
        assert_eq!(got[0], (TokenKind::Str, r#"b"bytes""#.into()));
        assert_eq!(got[1], (TokenKind::Str, r##"br#"raw bytes"#"##.into()));
        assert_eq!(got[2], (TokenKind::Char, "b'x'".into()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let got = kinds("r#match radius b#"); // b# is ident `b` + punct
        assert_eq!(got[0], (TokenKind::Ident, "r#match".into()));
        assert_eq!(got[1], (TokenKind::Ident, "radius".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let got = kinds("'a'");
        assert_eq!(got, vec![(TokenKind::Char, "'a'".into())]);
        let got = kinds("&'a str");
        assert_eq!(got[1], (TokenKind::Lifetime, "'a".into()));
        let got = kinds("'static");
        assert_eq!(got[0], (TokenKind::Lifetime, "'static".into()));
        for (src, want) in [
            ("'\\n'", "'\\n'"),
            ("'\\''", "'\\''"),
            ("'\\u{1F980}'", "'\\u{1F980}'"),
        ] {
            let got = kinds(src);
            assert_eq!(got[0], (TokenKind::Char, want.into()), "{src}");
        }
        // The '"' literal must not open a string region.
        let src = "if c == '\"' { HashMap::new() }";
        let texts = code_texts(src);
        assert!(texts.contains(&"HashMap".to_string()));
    }

    #[test]
    fn spans_are_byte_accurate() {
        let src = "alpha  beta";
        let lexed = lex(src);
        let t = &lexed.tokens[1];
        assert_eq!((t.start, t.end), (7, 11));
        assert_eq!(t.text(src), "beta");
    }

    #[test]
    fn lines_are_one_based_and_tracked() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn shebang_is_skipped() {
        let src = "#!/usr/bin/env run\nfn main() {}";
        assert_eq!(code_texts(src)[0], "fn");
    }

    #[test]
    fn non_ascii_in_strings_and_idents() {
        let src = "let s = \"π ≈ 3.14159\"; done";
        let got = kinds(src);
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Str && t.contains('π')));
        assert!(got.iter().any(|(_, t)| t == "done"));
    }
}
