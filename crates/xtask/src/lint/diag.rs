//! Findings and their renderings: human-readable code frames and the
//! `--json` machine format.

use std::fmt;

use super::rules::RuleMeta;
use super::Severity;

/// One diagnostic, span-accurate: `line:col` point at the first offending
/// token, `underline` covers the matched token run on that line.
#[derive(Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    /// 1-based column (in characters) of the match start.
    pub col: u32,
    pub rule: &'static RuleMeta,
    /// The full source line the match starts on (tabs preserved).
    pub excerpt: String,
    /// Character count to underline, ≥ 1, clipped to the excerpt line.
    pub underline_len: u32,
}

impl Finding {
    /// Build a finding from a byte span into `src`.
    pub fn from_span(
        file: &str,
        src: &str,
        span: (usize, usize),
        rule: &'static RuleMeta,
    ) -> Finding {
        let (start, end) = span;
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        let line = src[..start].matches('\n').count() as u32 + 1;
        let col = src[line_start..start].chars().count() as u32 + 1;
        let visible_end = end.min(line_end).max(start);
        let underline_len = (src[start..visible_end].chars().count() as u32).max(1);
        Finding {
            file: file.to_string(),
            line,
            col,
            rule,
            excerpt: src[line_start..line_end].to_string(),
            underline_len,
        }
    }

    /// Sort key for deterministic output.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule.name)
    }
}

/// Code-frame rendering, one finding per block:
///
/// ```text
/// warning[hash-container]: randomized-iteration hash container …
///   --> crates/net/src/foo.rs:12:16
///    |
/// 12 |     let live: HashMap<u32, Flow> = HashMap::new();
///    |               ^^^^^^^
///    = help: iteration order is randomized per process; …
/// ```
impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {}",
            self.rule.severity, self.rule.name, self.rule.summary
        )?;
        writeln!(f, "  --> {}:{}:{}", self.file, self.line, self.col)?;
        let gutter = self.line.to_string().len().max(2);
        writeln!(f, "{:gutter$} |", "")?;
        writeln!(f, "{:>gutter$} | {}", self.line, self.excerpt)?;
        // Reproduce the excerpt's leading layout (tabs stay tabs) so the
        // carets line up in any terminal.
        let mut pad = String::new();
        for (i, c) in self.excerpt.chars().enumerate() {
            if i + 1 >= self.col as usize {
                break;
            }
            pad.push(if c == '\t' { '\t' } else { ' ' });
        }
        writeln!(
            f,
            "{:gutter$} | {}{}",
            "",
            pad,
            "^".repeat(self.underline_len as usize)
        )?;
        write!(f, "{:gutter$} = help: {}", "", self.rule.suggestion)
    }
}

// ---------------------------------------------------------------------------
// JSON report (hand-rolled: the vendored serde is a no-op stub)
// ---------------------------------------------------------------------------

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Baseline verdict carried into the JSON report.
pub struct BaselineSummary {
    /// (file, rule, found, allowed) for counts above the baseline.
    pub new: Vec<(String, String, u32, u32)>,
    /// (file, rule, found, allowed) for baseline entries looser than
    /// reality (stale — the ratchet must be re-tightened).
    pub stale: Vec<(String, String, u32, u32)>,
    /// Findings suppressed because a baseline entry covers them.
    pub grandfathered: u32,
}

/// Render the full machine-readable report. Deterministic: findings are
/// pre-sorted by the caller, keys are emitted in a fixed order.
pub fn json_report(
    files_scanned: usize,
    findings: &[Finding],
    baseline: Option<&BaselineSummary>,
) -> String {
    let errors = findings
        .iter()
        .filter(|f| f.rule.severity == Severity::Error)
        .count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {},\n", findings.len() - errors));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"summary\": \"{}\", \"excerpt\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.col,
            f.rule.name,
            f.rule.severity,
            esc(f.rule.summary),
            esc(f.excerpt.trim()),
        ));
    }
    if findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    match baseline {
        None => out.push_str("  \"baseline\": null\n"),
        Some(b) => {
            out.push_str("  \"baseline\": {\n");
            out.push_str(&format!(
                "    \"grandfathered\": {},\n",
                b.grandfathered
            ));
            for (key, list) in [("new", &b.new), ("stale", &b.stale)] {
                out.push_str(&format!("    \"{key}\": ["));
                for (i, (file, rule, found, allowed)) in list.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n      {{\"file\": \"{}\", \"rule\": \"{}\", \"found\": {}, \
                         \"allowed\": {}}}",
                        esc(file),
                        esc(rule),
                        found,
                        allowed
                    ));
                }
                if list.is_empty() {
                    out.push(']');
                } else {
                    out.push_str("\n    ]");
                }
                out.push_str(if key == "new" { ",\n" } else { "\n" });
            }
            out.push_str("  }\n");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::rules::HASH_CONTAINER;
    use super::*;

    #[test]
    fn from_span_computes_line_col_and_excerpt() {
        let src = "fn main() {\n    let m = HashMap::new();\n}\n";
        let start = src.find("HashMap").unwrap();
        let f = Finding::from_span("a.rs", src, (start, start + 7), &HASH_CONTAINER);
        assert_eq!((f.line, f.col), (2, 13));
        assert_eq!(f.excerpt, "    let m = HashMap::new();");
        assert_eq!(f.underline_len, 7);
    }

    #[test]
    fn multiline_span_is_clipped_to_first_line() {
        let src = "let x = foo(\n  bar);\n";
        let f = Finding::from_span("a.rs", src, (8, src.len()), &HASH_CONTAINER);
        assert_eq!(f.line, 1);
        assert_eq!(f.excerpt, "let x = foo(");
        assert_eq!(f.underline_len, 4); // "foo(" — clipped at line end
    }

    #[test]
    fn display_renders_code_frame() {
        let src = "    let m = HashMap::new();\n";
        let start = src.find("HashMap").unwrap();
        let f = Finding::from_span("crates/x.rs", src, (start, start + 7), &HASH_CONTAINER);
        let rendered = f.to_string();
        assert!(rendered.starts_with("warning[hash-container]:"), "{rendered}");
        assert!(rendered.contains("--> crates/x.rs:1:13"), "{rendered}");
        assert!(rendered.contains("^^^^^^^"), "{rendered}");
        assert!(rendered.contains("= help:"), "{rendered}");
        // Caret column: the underline line pads 12 chars then carets.
        let caret_line = rendered
            .lines()
            .find(|l| l.contains('^'))
            .expect("caret line");
        assert_eq!(caret_line.find('^').unwrap() - caret_line.find('|').unwrap(), 14);
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let src = "let s = \"x\";\tHashMap::new();\n";
        let start = src.find("HashMap").unwrap();
        let f = Finding::from_span("a\\b.rs", src, (start, start + 7), &HASH_CONTAINER);
        let json = json_report(3, &[f], None);
        assert!(json.contains("\"files_scanned\": 3"), "{json}");
        assert!(json.contains("\"a\\\\b.rs\""), "{json}");
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert!(json.contains("\"baseline\": null"), "{json}");
        // Empty-findings report stays valid.
        let empty = json_report(0, &[], None);
        assert!(empty.contains("\"findings\": []"), "{empty}");
    }

    #[test]
    fn json_baseline_block() {
        let b = BaselineSummary {
            new: vec![("f.rs".into(), "lib-unwrap".into(), 3, 1)],
            stale: vec![],
            grandfathered: 7,
        };
        let json = json_report(1, &[], Some(&b));
        assert!(json.contains("\"grandfathered\": 7"), "{json}");
        assert!(json.contains("\"found\": 3"), "{json}");
        assert!(json.contains("\"stale\": []"), "{json}");
    }
}
