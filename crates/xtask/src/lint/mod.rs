//! Determinism / robustness static analysis for the simulator workspace.
//!
//! The simulator's headline guarantee is bit-exact replay for a fixed seed
//! (ROADMAP "determinism" pillar). That property is easy to lose through a
//! single stray `HashMap` iteration, wall-clock read, or — as the engine
//! gets sharded and allocation-free — a reordered float sum or a heap
//! allocation on the dispatch path. This framework enforces the policy
//! mechanically:
//!
//! * [`lexer`] — a hand-rolled Rust lexer producing byte-spanned tokens
//!   (comments, raw strings, char-vs-lifetime all handled exactly);
//! * [`scope`] — a brace tree over the tokens: `#[cfg(test)]` regions,
//!   enclosing-`fn` names, `lint:allow` resolution;
//! * [`rules`] — the rule set; each rule is a visitor over the token
//!   stream (`cargo xtask lint --list-rules` / `--explain <rule>`);
//! * [`diag`] — span-accurate findings, code frames, `--json` output;
//! * [`baseline`] — the `lint-baseline.toml` ratchet: existing findings
//!   are grandfathered per-file-per-rule, CI fails on any new finding and
//!   on a baseline looser than reality;
//! * [`legacy`] — the original line scanner, kept only as the reference
//!   half of `tests/differential.rs`.
//!
//! Scope policy (unchanged from the line-scanner era): `vendor/` and
//! `target/` are never scanned; `crates/bench` and `crates/xtask` are
//! exempt from everything (they time, explore, and embed rule-triggering
//! fixtures); `#[cfg(test)]` regions and `tests/` files are exempt from
//! warning-severity rules but still subject to error-severity ones. A
//! `// lint:allow(<rule>)` comment on the same line — or a comment line
//! above, looking through further comments and attributes — suppresses a
//! rule where the hazard is deliberate.

pub mod baseline;
pub mod diag;
pub mod legacy;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use diag::Finding;
use lexer::{Token, TokenKind};
use rules::{RuleMeta, ALL_RULES};

// ---------------------------------------------------------------------------
// Shared policy types
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What kind of file is being scanned — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code of the deterministic core crates: all rules.
    CoreLib,
    /// Other simulator code (binaries, metrics, workloads): everything
    /// except the core-lib-only rules.
    Sim,
    /// Integration-test code: error-severity rules only.
    Test,
    /// `crates/bench` and `crates/xtask`: exempt.
    Bench,
}

/// Classify a workspace-relative path.
pub fn classify(rel: &Path) -> FileClass {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    let first = comps.next().unwrap_or_default();
    if first == "tests" {
        return FileClass::Test;
    }
    if first == "crates" {
        let krate = comps.next().unwrap_or_default();
        // bench measures wall-clock by design; xtask is developer tooling
        // and embeds rule-triggering snippets in its fixtures.
        if krate == "bench" || krate == "xtask" {
            return FileClass::Bench;
        }
        if rel.components().any(|c| c.as_os_str() == "tests") {
            return FileClass::Test;
        }
        if matches!(&*krate, "engine" | "net" | "core" | "transport" | "lb") {
            // The crate's binaries (src/bin) are tools, not library code.
            if rel.components().any(|c| c.as_os_str() == "bin") {
                return FileClass::Sim;
            }
            return FileClass::CoreLib;
        }
    }
    FileClass::Sim
}

// ---------------------------------------------------------------------------
// Per-file rule context
// ---------------------------------------------------------------------------

/// Everything a rule sees while visiting one file: the comment-free token
/// stream (with byte spans into `src`) plus scope lookups. Findings are
/// emitted as token ranges; the engine applies test-gating and
/// `lint:allow` suppression afterwards, centrally.
pub struct FileCx<'a> {
    pub file: &'a str,
    pub class: FileClass,
    pub src: &'a str,
    /// Code tokens only (comments stripped).
    pub code: Vec<Token>,
    /// Map from `code` index to index in the full lexed stream.
    orig: Vec<usize>,
    scope: &'a scope::ScopeMap,
    /// (first, last, rule) token ranges, inclusive.
    emitted: Vec<(usize, usize, &'static RuleMeta)>,
}

impl FileCx<'_> {
    /// Token text, or `""` past the end (so sequence probes can overrun
    /// safely).
    pub fn text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(self.src))
    }

    pub fn kind(&self, i: usize) -> Option<TokenKind> {
        self.code.get(i).map(|t| t.kind)
    }

    pub fn is(&self, i: usize, s: &str) -> bool {
        self.text(i) == s
    }

    /// Do the tokens starting at `from` spell out `texts` exactly?
    pub fn seq(&self, from: usize, texts: &[&str]) -> bool {
        texts.iter().enumerate().all(|(k, s)| self.is(from + k, s))
    }

    /// Innermost enclosing `fn` name at token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.orig.get(i).and_then(|&o| self.scope.enclosing_fn(o))
    }

    /// Report a finding covering code tokens `first..=last`.
    pub fn emit(&mut self, first: usize, last: usize, rule: &'static RuleMeta) {
        let last = last.min(self.code.len().saturating_sub(1));
        self.emitted.push((first, last, rule));
    }
}

/// Run every applicable rule over one file's source. `file` is the
/// workspace-relative path used for diagnostics and path-scoped rules.
pub fn lint_source(file: &str, src: &str, class: FileClass) -> Vec<Finding> {
    if class == FileClass::Bench {
        return Vec::new();
    }
    let lexed = lexer::lex(src);
    let scope_map = scope::analyze(src, &lexed);
    let (code, orig): (Vec<Token>, Vec<usize>) =
        lexed.code_tokens().map(|(i, t)| (*t, i)).unzip();
    let mut cx = FileCx {
        file,
        class,
        src,
        code,
        orig,
        scope: &scope_map,
        emitted: Vec::new(),
    };
    for rule in ALL_RULES {
        if rule.enabled(file, class) {
            rule.check(&mut cx);
        }
    }

    let mut findings = Vec::new();
    for (first, last, rule) in cx.emitted {
        let Some(tok) = cx.code.get(first) else { continue };
        let anchor = cx.orig[first];
        // Warning-severity rules are exempt in test code (a test-local
        // HashSet or unwrap cannot hurt replay); errors always apply.
        if rule.severity == Severity::Warning
            && (class == FileClass::Test || scope_map.in_test(anchor))
        {
            continue;
        }
        if scope_map.allowed(tok.line, rule.name) {
            continue;
        }
        let span = (tok.start, cx.code[last].end.max(tok.end));
        findings.push(Finding::from_span(file, src, span, rule));
    }
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    findings.dedup_by(|a, b| a.sort_key() == b.sort_key());
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(&*name, "vendor" | "target" | ".git" | ".github") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort(); // deterministic diagnostic order
    out
}

/// Lint the whole workspace: `(files scanned, findings sorted)`.
pub fn scan_workspace(root: &Path) -> (usize, Vec<Finding>) {
    let files = collect_rs_files(root);
    let mut findings = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let class = classify(rel);
        if class == FileClass::Bench {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("warning: could not read {}", path.display());
            continue;
        };
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.extend(lint_source(&rel_str, &source, class));
    }
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    (files.len(), findings)
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// CLI-level options for a lint run.
#[derive(Debug, Default)]
pub struct Options {
    /// Fail on any unsuppressed finding (CI mode).
    pub deny: bool,
    /// Write the JSON report: `Some(None)` → stdout, `Some(Some(p))` → file.
    pub json: Option<Option<PathBuf>>,
    /// Baseline file to ratchet against.
    pub baseline: Option<PathBuf>,
    /// Regenerate the baseline from current findings and exit.
    pub update_baseline: bool,
}

pub fn run(root: &Path, opts: &Options) -> ExitCode {
    let (files_scanned, findings) = scan_workspace(root);
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    if opts.update_baseline {
        let text = baseline::render(&findings);
        let entries = baseline::count_by_file_rule(&findings).len();
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "lint: wrote {} ({} grandfathered finding(s) across {} file/rule pair(s))",
            baseline_path.display(),
            findings.iter().filter(|f| f.rule.severity == Severity::Warning).count(),
            entries,
        );
        return ExitCode::SUCCESS;
    }

    // Ratchet comparison (only when a baseline was requested).
    let summary = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match baseline::parse(&text) {
                Ok(b) => Some(baseline::compare(&findings, &b)),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    // Findings to show: errors always; warnings unless their (file, rule)
    // group is fully grandfathered by the baseline.
    let over_budget: std::collections::BTreeSet<(String, String)> = summary
        .as_ref()
        .map(|s| {
            s.new
                .iter()
                .map(|(f, r, _, _)| (f.clone(), r.clone()))
                .collect()
        })
        .unwrap_or_default();
    let shown: Vec<&Finding> = findings
        .iter()
        .filter(|f| {
            f.rule.severity == Severity::Error
                || summary.is_none()
                || over_budget.contains(&(f.file.clone(), f.rule.name.to_string()))
        })
        .collect();
    for f in &shown {
        println!("{f}\n");
    }

    let errors = findings
        .iter()
        .filter(|f| f.rule.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    let mut failed = errors > 0;
    let mut shown_warnings = warnings;

    if let Some(s) = &summary {
        shown_warnings = shown.len() - errors;
        for (file, rule, found, allowed) in &s.new {
            println!(
                "error: new `{rule}` finding(s) in {file}: found {found}, baseline allows \
                 {allowed} — fix them (or justify with `// lint:allow({rule})`)"
            );
            failed = true;
        }
        for (file, rule, found, allowed) in &s.stale {
            println!(
                "error: stale baseline: {file} / {rule} allows {allowed} but only {found} \
                 remain — run `cargo xtask lint --update-baseline` to tighten the ratchet"
            );
            failed = true;
        }
        println!(
            "lint: scanned {files_scanned} files: {errors} error(s), {warnings} warning(s) \
             ({} grandfathered by baseline, {} new, {} stale entr{})",
            s.grandfathered,
            s.new.len(),
            s.stale.len(),
            if s.stale.len() == 1 { "y" } else { "ies" },
        );
    } else {
        println!("lint: scanned {files_scanned} files: {errors} error(s), {warnings} warning(s)");
    }

    if opts.deny && shown_warnings > 0 {
        failed = true;
    }

    if let Some(dest) = &opts.json {
        let report = diag::json_report(files_scanned, &findings, summary.as_ref());
        match dest {
            None => print!("{report}"),
            Some(path) => {
                if let Err(e) = std::fs::write(path, &report) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_workspace_layout() {
        let p = |s: &str| classify(Path::new(s));
        assert_eq!(p("crates/engine/src/queue.rs"), FileClass::CoreLib);
        assert_eq!(p("crates/net/src/sim.rs"), FileClass::CoreLib);
        assert_eq!(p("crates/metrics/src/counters.rs"), FileClass::Sim);
        assert_eq!(p("crates/bench/src/bin/all_figs.rs"), FileClass::Bench);
        assert_eq!(p("crates/xtask/src/lint/mod.rs"), FileClass::Bench);
        assert_eq!(p("tests/cross_crate_props.rs"), FileClass::Test);
        assert_eq!(p("crates/net/tests/pfc.rs"), FileClass::Test);
        assert_eq!(p("src/bin/rlbsim.rs"), FileClass::Sim);
        assert_eq!(p("crates/engine/src/bin/tool.rs"), FileClass::Sim);
    }

    #[test]
    fn engine_masks_strings_comments_and_raw_strings() {
        let src = "\
//! Talks about HashMap iteration order in docs.
/// Mentions Instant::now in a doc comment.
// plain comment: thread_rng
fn f() { let s = \"HashMap and Instant::now and .unwrap()\"; }
/* block comment: SystemTime::now
   spanning lines with HashSet */
fn g() { let r = r#\"raw with \"HashMap\" inside\"#; }
";
        assert!(lint_source("t.rs", src, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn engine_applies_allow_and_test_gating_centrally() {
        let src = "\
fn f() {
    let t = Instant::now(); // lint:allow(wall-clock) CLI timing
    let m: HashMap<u8, u8> = HashMap::new();
}
#[cfg(test)]
mod tests {
    fn t() { let s: HashSet<u32> = HashSet::new(); }
}
";
        let found = lint_source("t.rs", src, FileClass::Sim);
        let names: Vec<&str> = found.iter().map(|f| f.rule.name).collect();
        assert_eq!(names, ["hash-container", "hash-container"]);
        assert!(found.iter().all(|f| f.line == 3));
    }

    #[test]
    fn findings_are_span_accurate_and_sorted() {
        let src = "fn f() {\n    let a: HashSet<u8> = HashSet::new();\n}\n";
        let found = lint_source("t.rs", src, FileClass::Sim);
        assert_eq!(found.len(), 2);
        assert_eq!((found[0].line, found[0].col), (2, 12));
        assert_eq!((found[1].line, found[1].col), (2, 26));
        assert_eq!(found[0].underline_len, 7); // "HashSet"
        assert_eq!(found[0].excerpt, "    let a: HashSet<u8> = HashSet::new();");
    }

    #[test]
    fn multiline_attribute_gating_and_allow_interplay() {
        // lint:allow reaches code through a multi-line attribute; the
        // attribute itself gates nothing.
        let src = "\
// lint:allow(hash-container)
#[derive(
    Debug,
    Clone,
)]
struct S { m: HashMap<u8, u8> }
";
        assert!(lint_source("t.rs", src, FileClass::Sim).is_empty());
    }
}
