//! Scope analysis over the token stream: a real brace tree instead of the
//! old per-line brace counting.
//!
//! Three questions the rules need answered per token:
//!
//! 1. **Is it test-gated?** `#[cfg(test)]` (and `#[test]`) attributes gate
//!    the next item; the gate covers the attribute itself, survives
//!    intervening attributes, extends through the item's whole brace tree,
//!    and expires at a braceless item's `;`.
//! 2. **Which `fn` encloses it?** The innermost named function — the
//!    `hot-alloc` rule scopes itself to the dispatch call graph by name.
//! 3. **Is the finding suppressed?** `// lint:allow(rule)` on the same
//!    line, or on a comment line above — where "above" is allowed to look
//!    through further comment lines *and attribute lines* (the old scanner
//!    lost the marker when a `#[derive(...)]` sat in between).

use std::collections::{BTreeMap, BTreeSet};

use super::lexer::{Lexed, Token, TokenKind};

/// Per-token scope facts for one file.
pub struct ScopeMap {
    in_test: Vec<bool>,
    fn_of: Vec<Option<u32>>,
    fn_names: Vec<String>,
    /// line → rule names suppressed on that line.
    allows: BTreeMap<u32, BTreeSet<String>>,
}

impl ScopeMap {
    /// Is the token at `tok_idx` inside (or on the attribute line of) a
    /// test-gated region?
    pub fn in_test(&self, tok_idx: usize) -> bool {
        self.in_test[tok_idx]
    }

    /// Name of the innermost enclosing `fn`, if any.
    pub fn enclosing_fn(&self, tok_idx: usize) -> Option<&str> {
        self.fn_of[tok_idx].map(|i| self.fn_names[i as usize].as_str())
    }

    /// Is `rule` suppressed by a `lint:allow` marker targeting `line`?
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }
}

#[derive(Clone, Copy)]
struct Scope {
    test: bool,
    fn_idx: Option<u32>,
}

/// Analyze `lexed` (over `src`) into a [`ScopeMap`].
pub fn analyze(src: &str, lexed: &Lexed) -> ScopeMap {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut in_test = vec![false; n];
    let mut fn_of: Vec<Option<u32>> = vec![None; n];
    let mut fn_names: Vec<String> = Vec::new();
    let mut is_attr = vec![false; n];

    let mut stack: Vec<Scope> = Vec::new();
    // Attribute gate seen, waiting for the item it decorates.
    let mut pending_test = false;
    // `fn name` seen, waiting for the body's `{`.
    let mut pending_fn: Option<u32> = None;
    // Bracket/paren depth since a pending started — a `;` only cancels a
    // pending item at depth 0 (`fn f(x: [u8; 3])` must not cancel).
    let mut pending_depth: i32 = 0;

    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        // Record current scope for this token before mutating state.
        let cur_test = pending_test || stack.iter().any(|s| s.test);
        let cur_fn = stack.iter().rev().find_map(|s| s.fn_idx);
        in_test[i] = cur_test;
        fn_of[i] = cur_fn;

        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            i += 1;
            continue;
        }
        match t.text(src) {
            "#" if next_code_is(src, toks, i + 1, "[") => {
                // Consume the whole attribute `#[ … ]` (nesting-aware) so
                // its internal braces/semicolons don't perturb the tree.
                let (end, gates_test) = scan_attribute(src, toks, i);
                for (j, flag) in is_attr.iter_mut().enumerate().take(end).skip(i) {
                    *flag = true;
                    in_test[j] = cur_test || pending_test || gates_test;
                    fn_of[j] = cur_fn;
                }
                if gates_test {
                    pending_test = true;
                }
                i = end;
                continue;
            }
            "fn" => {
                if let Some((j, name)) = next_code_ident(src, toks, i + 1) {
                    let idx = fn_names.len() as u32;
                    fn_names.push(name.to_string());
                    pending_fn = Some(idx);
                    pending_depth = 0;
                    in_test[j] = cur_test;
                    fn_of[j] = cur_fn;
                    i = j + 1;
                    continue;
                }
            }
            "(" | "[" => pending_depth += 1,
            ")" | "]" => pending_depth -= 1,
            ";" if pending_depth <= 0 => {
                // Braceless item (`#[cfg(test)] use …;`, trait method sig):
                // whatever was pending is over.
                pending_test = false;
                pending_fn = None;
            }
            "{" => {
                stack.push(Scope { test: pending_test, fn_idx: pending_fn.take() });
                pending_test = false;
                pending_depth = 0;
            }
            "}" => {
                stack.pop();
            }
            _ => {}
        }
        i += 1;
    }

    let allows = resolve_allows(src, toks, &is_attr);
    ScopeMap { in_test, fn_of, fn_names, allows }
}

/// Is the next code (non-comment) token exactly `text`?
fn next_code_is(src: &str, toks: &[Token], from: usize, text: &str) -> bool {
    toks[from..]
        .iter()
        .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .is_some_and(|t| t.text(src) == text)
}

/// The next code token if it is an identifier: (index, text).
fn next_code_ident<'s>(src: &'s str, toks: &[Token], from: usize) -> Option<(usize, &'s str)> {
    for (off, t) in toks[from..].iter().enumerate() {
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => continue,
            TokenKind::Ident => return Some((from + off, t.text(src))),
            _ => return None,
        }
    }
    None
}

/// Starting at the `#` of `#[ … ]`, find the token index one past the
/// closing `]` and whether the attribute gates a test-only item.
fn scan_attribute(src: &str, toks: &[Token], hash_idx: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut inner: Vec<&str> = Vec::new();
    let mut j = hash_idx + 1;
    while j < toks.len() {
        let t = &toks[j];
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            j += 1;
            continue;
        }
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, attr_gates_test(&inner));
                }
            }
            s => {
                if depth >= 1 {
                    inner.push(s);
                }
            }
        }
        j += 1;
    }
    (j, attr_gates_test(&inner)) // unterminated attribute: EOF
}

/// Does the attribute body (tokens between the outer brackets) gate
/// compilation to test builds? Recognized: `test`, `cfg(test)`, and
/// `cfg(any(test, …))` / `cfg(all(test, …))`; `cfg(not(test))` does not
/// gate (it is the *non*-test side), and `cfg_attr(test, …)` only tweaks
/// attributes, not compilation.
fn attr_gates_test(inner: &[&str]) -> bool {
    match inner.first() {
        Some(&"test") => inner.len() == 1,
        Some(&"cfg") => {
            inner.contains(&"test")
                && !inner.windows(2).any(|w| w[0] == "not" && w[1] == "(")
        }
        _ => false,
    }
}

/// Collect `lint:allow(rule)` markers from comment tokens and resolve each
/// to the code line it suppresses.
fn resolve_allows(
    src: &str,
    toks: &[Token],
    is_attr: &[bool],
) -> BTreeMap<u32, BTreeSet<String>> {
    // Per-line classification. A token's text can span lines (block
    // comments, raw strings); charge every spanned line so a multi-line
    // string still counts as code on its continuation lines.
    let mut real_code: BTreeSet<u32> = BTreeSet::new(); // non-attribute code
    let mut skippable: BTreeSet<u32> = BTreeSet::new(); // comment or attr-only
    let mut max_line = 0u32;
    for (i, t) in toks.iter().enumerate() {
        let span_lines = t.text(src).matches('\n').count() as u32;
        let comment = matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment);
        for line in t.line..=t.line + span_lines {
            max_line = max_line.max(line);
            if comment || is_attr[i] {
                skippable.insert(line);
            } else {
                real_code.insert(line);
            }
        }
    }

    let mut out: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for t in toks {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        for (offset_lines, rule) in markers_in(t.text(src)) {
            let marker_line = t.line + offset_lines;
            // Same-line code → suppress that line. Otherwise walk down,
            // looking through comment-only and attribute-only lines, to
            // the first line with real code; a blank line breaks the walk
            // (the marker is dangling prose, not a suppression).
            let target = if real_code.contains(&marker_line) {
                Some(marker_line)
            } else {
                let mut line = marker_line + 1;
                loop {
                    if line > max_line {
                        break None;
                    }
                    if real_code.contains(&line) {
                        break Some(line);
                    }
                    if !skippable.contains(&line) {
                        break None; // blank line
                    }
                    line += 1;
                }
            };
            if let Some(line) = target {
                out.entry(line).or_default().insert(rule);
            }
        }
    }
    out
}

/// `lint:allow(rule)` markers inside a comment's text, with the marker's
/// line offset from the comment's first line (block comments span lines).
fn markers_in(comment: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (offset, line) in comment.lines().enumerate() {
        let mut rest = line;
        while let Some(i) = rest.find("lint:allow(") {
            rest = &rest[i + "lint:allow(".len()..];
            if let Some(j) = rest.find(')') {
                out.push((offset as u32, rest[..j].trim().to_string()));
                rest = &rest[j..];
            } else {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn scopes(src: &str) -> (ScopeMap, Vec<(String, usize)>) {
        let lexed = lex(src);
        let map = analyze(src, &lexed);
        // (text, token index) for every code ident, for easy lookups.
        let idents = lexed
            .code_tokens()
            .filter(|(_, t)| t.kind == TokenKind::Ident)
            .map(|(i, t)| (t.text(src).to_string(), i))
            .collect();
        (map, idents)
    }

    fn idx(idents: &[(String, usize)], name: &str) -> usize {
        idents.iter().find(|(t, _)| t == name).unwrap_or_else(|| panic!("no {name}")).1
    }

    #[test]
    fn cfg_test_module_gates_its_brace_tree_only() {
        let src = "\
struct Before;
#[cfg(test)]
mod tests {
    fn inner() { let gated = 1; }
}
fn after() { let live = 1; }
";
        let (map, ids) = scopes(src);
        assert!(!map.in_test(idx(&ids, "Before")));
        assert!(map.in_test(idx(&ids, "gated")));
        assert!(!map.in_test(idx(&ids, "live")));
    }

    #[test]
    fn cfg_test_survives_intervening_attributes() {
        let src = "\
#[cfg(test)]
#[allow(dead_code)]
mod tests { fn t() { let gated = 1; } }
fn live() {}
";
        let (map, ids) = scopes(src);
        assert!(map.in_test(idx(&ids, "gated")));
        assert!(!map.in_test(idx(&ids, "live")));
    }

    #[test]
    fn braceless_gated_item_does_not_swallow_rest_of_file() {
        let src = "\
#[cfg(test)]
use std::collections::HashSet;
fn live() { let x = 1; }
";
        let (map, ids) = scopes(src);
        assert!(map.in_test(idx(&ids, "HashSet")));
        assert!(!map.in_test(idx(&ids, "live")));
    }

    #[test]
    fn semicolon_inside_brackets_does_not_cancel_pending_fn() {
        let src = "fn f(x: [u8; 3]) { let inside = x; } fn g() { let other = 1; }";
        let (map, ids) = scopes(src);
        assert_eq!(map.enclosing_fn(idx(&ids, "inside")), Some("f"));
        assert_eq!(map.enclosing_fn(idx(&ids, "other")), Some("g"));
    }

    #[test]
    fn enclosing_fn_tracks_nesting() {
        let src = "\
fn outer() {
    let a = 1;
    fn inner() { let b = 2; }
    let c = 3;
}
let top = 4;
";
        let (map, ids) = scopes(src);
        assert_eq!(map.enclosing_fn(idx(&ids, "a")), Some("outer"));
        assert_eq!(map.enclosing_fn(idx(&ids, "b")), Some("inner"));
        assert_eq!(map.enclosing_fn(idx(&ids, "c")), Some("outer"));
        assert_eq!(map.enclosing_fn(idx(&ids, "top")), None);
    }

    #[test]
    fn plain_test_attribute_gates_the_fn() {
        let src = "#[test]\nfn check() { let gated = 1; }\nfn live() { let x = 1; }";
        let (map, ids) = scopes(src);
        assert!(map.in_test(idx(&ids, "gated")));
        assert!(!map.in_test(idx(&ids, "x")));
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_do_not_gate() {
        let src = "#[cfg(not(test))]\nfn live() { let a = 1; }";
        let (map, ids) = scopes(src);
        assert!(!map.in_test(idx(&ids, "a")));
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn live() { let a = 1; }";
        let (map, ids) = scopes(src);
        assert!(!map.in_test(idx(&ids, "a")));
    }

    #[test]
    fn cfg_any_including_test_gates() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nmod helpers { fn h() { let g = 1; } }";
        let (map, ids) = scopes(src);
        assert!(map.in_test(idx(&ids, "g")));
    }

    #[test]
    fn allow_same_line_and_next_line() {
        let src = "\
let a = f(); // lint:allow(wall-clock) timing only
// lint:allow(hash-container)
let b = g();
let c = h();
";
        let (map, _) = scopes(src);
        assert!(map.allowed(1, "wall-clock"));
        assert!(!map.allowed(1, "hash-container"));
        assert!(map.allowed(3, "hash-container"));
        assert!(!map.allowed(4, "hash-container"));
    }

    #[test]
    fn allow_looks_through_attributes_and_comments() {
        let src = "\
// lint:allow(hash-container)
// more prose about why
#[derive(Debug, Default)]
#[allow(dead_code)]
struct S { m: u32 }
";
        let (map, _) = scopes(src);
        assert!(map.allowed(5, "hash-container"));
    }

    #[test]
    fn allow_in_block_comment_and_multiline_attribute() {
        let src = "\
/* lint:allow(time-arith) */
#[rustfmt::skip]
let x = t_ps + 1;
";
        let (map, _) = scopes(src);
        assert!(map.allowed(3, "time-arith"));
        // Marker inside a multi-line block comment resolves from its own
        // line, not the comment's first line.
        let src = "/* prose\n   lint:allow(lib-unwrap)\n*/\nlet y = o.unwrap();\n";
        let (map, _) = scopes(src);
        assert!(map.allowed(4, "lib-unwrap"));
    }

    #[test]
    fn dangling_allow_at_eof_is_inert() {
        let src = "let a = 1;\n// lint:allow(wall-clock)\n";
        let (map, _) = scopes(src);
        assert!(!map.allowed(1, "wall-clock"));
        assert!(!map.allowed(2, "wall-clock"));
        assert!(!map.allowed(3, "wall-clock"));
    }
}
