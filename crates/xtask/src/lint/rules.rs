//! The rule set: each rule is a visitor over the lexed token stream.
//!
//! # Authoring a rule
//!
//! 1. Declare a unit struct and a `RuleMeta` const (name, severity,
//!    one-line summary, help text, `--explain` text with a bad/good pair).
//! 2. Implement [`LintRule::check`]: walk `cx.code` (comment-free tokens
//!    with byte spans) and call `cx.emit(first, last, &META)` on a match.
//!    Token-sequence helpers (`cx.is`, `cx.seq`) replace the substring
//!    matching of the old scanner — `"HashMap"` in a doc comment or raw
//!    string can no longer match, and spans make the diagnostics precise.
//! 3. Override [`LintRule::enabled`] if the rule is scoped to particular
//!    paths or file classes. Test-gating is **not** the rule's job: the
//!    engine drops warning-severity findings inside `#[cfg(test)]` regions
//!    and honours `// lint:allow(rule)` centrally.
//! 4. Register the rule in [`ALL_RULES`] and add a fixture test below
//!    (one positive, one negative snippet).

use super::lexer::TokenKind;
use super::{FileClass, FileCx, Severity};

/// Static description of a rule.
pub struct RuleMeta {
    pub name: &'static str,
    pub severity: Severity,
    /// One-line problem statement (diagnostic headline).
    pub summary: &'static str,
    /// The `help:` line under a finding.
    pub suggestion: &'static str,
    /// Long-form text for `--explain`, with a bad/good example.
    pub explain: &'static str,
}

/// A lint rule: a visitor over one file's token stream.
pub trait LintRule: Sync {
    fn meta(&self) -> &'static RuleMeta;

    /// Does the rule run on this file at all? Path/class scoping only —
    /// test-gating and `lint:allow` are applied by the engine.
    fn enabled(&self, file: &str, class: FileClass) -> bool {
        let _ = file;
        !matches!(class, FileClass::Bench)
    }

    fn check(&self, cx: &mut FileCx<'_>);
}

/// Every registered rule, in diagnostic order.
pub static ALL_RULES: &[&dyn LintRule] = &[
    &HashContainer,
    &WallClock,
    &UnseededRng,
    &LibUnwrap,
    &HotClone,
    &HotBtreemap,
    &FloatAccum,
    &UnstableSort,
    &TimeArith,
    &HotAlloc,
];

/// Look a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static dyn LintRule> {
    ALL_RULES.iter().copied().find(|r| r.meta().name == name)
}

// ---------------------------------------------------------------------------
// Legacy rules (ported from the line scanner)
// ---------------------------------------------------------------------------

pub struct HashContainer;
pub static HASH_CONTAINER: RuleMeta = RuleMeta {
    name: "hash-container",
    severity: Severity::Warning,
    summary: "randomized-iteration hash container in simulator code",
    suggestion: "iteration order is randomized per process; use BTreeMap/BTreeSet \
                 (or a Vec keyed by index) so replays are bit-exact",
    explain: "\
`HashMap` and `HashSet` iterate in an order randomized per process (SipHash
with a random key). Any simulator state or output derived from that order —
event emission, report rows, tie-breaking — silently breaks the bit-exact
replay guarantee.

    bad:  let mut live: HashMap<u32, Flow> = HashMap::new();
    good: let mut live: BTreeMap<u32, Flow> = BTreeMap::new();
    good: let mut live: rlb_engine::FlowTable<Flow> = FlowTable::new();",
};

impl LintRule for HashContainer {
    fn meta(&self) -> &'static RuleMeta {
        &HASH_CONTAINER
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.kind(i) == Some(TokenKind::Ident)
                && matches!(cx.text(i), "HashMap" | "HashSet")
            {
                cx.emit(i, i, &HASH_CONTAINER);
            }
        }
    }
}

pub struct WallClock;
pub static WALL_CLOCK: RuleMeta = RuleMeta {
    name: "wall-clock",
    severity: Severity::Error,
    summary: "wall-clock read inside simulator code",
    suggestion: "wall-clock time must not influence a simulation; use the event \
                 clock (`EventQueue::now`), or move the timing into crates/bench",
    explain: "\
`Instant::now()` / `SystemTime::now()` leak real time into a simulated run:
anything derived from them differs between executions, so the run is no
longer replayable. Only `crates/bench` (which times and explores, and is
never replayed) may read the host clock.

    bad:  let t0 = std::time::Instant::now();
    good: let t0 = self.queue.now();           // simulation clock
    good: // lint:allow(wall-clock) progress display only, never fed back",
};

impl LintRule for WallClock {
    fn meta(&self) -> &'static RuleMeta {
        &WALL_CLOCK
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.kind(i) == Some(TokenKind::Ident)
                && matches!(cx.text(i), "Instant" | "SystemTime")
                && cx.seq(i + 1, &[":", ":", "now"])
            {
                cx.emit(i, i + 3, &WALL_CLOCK);
            }
        }
    }
}

pub struct UnseededRng;
pub static UNSEEDED_RNG: RuleMeta = RuleMeta {
    name: "unseeded-rng",
    severity: Severity::Error,
    summary: "entropy not derived from the run seed",
    suggestion: "derive randomness from the run seed via `rlb_engine::substream` \
                 so every decision is replayable",
    explain: "\
`thread_rng()`, `from_entropy()` and `rand::random()` pull operating-system
entropy, so two runs with the same seed diverge. All simulator randomness
must flow from the run seed through `rlb_engine::substream`, which derives
independent, replayable streams per component.

    bad:  let mut rng = rand::thread_rng();
    good: let mut rng = substream(cfg.seed, b\"lb-leaf\", leaf as u64);",
};

impl LintRule for UnseededRng {
    fn meta(&self) -> &'static RuleMeta {
        &UNSEEDED_RNG
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.kind(i) != Some(TokenKind::Ident) {
                continue;
            }
            match cx.text(i) {
                "thread_rng" | "from_entropy" => cx.emit(i, i, &UNSEEDED_RNG),
                "rand" if cx.seq(i + 1, &[":", ":", "random"]) => {
                    cx.emit(i, i + 3, &UNSEEDED_RNG);
                }
                _ => {}
            }
        }
    }
}

pub struct LibUnwrap;
pub static LIB_UNWRAP: RuleMeta = RuleMeta {
    name: "lib-unwrap",
    severity: Severity::Warning,
    summary: "bare `.unwrap()` in deterministic-core library code",
    suggestion: "return a Result, or use `.expect(\"<invariant that makes this \
                 infallible>\")` so the panic message explains itself",
    explain: "\
A bare `.unwrap()` in `crates/{engine,net,core,transport,lb}` library code
turns a violated invariant into an anonymous panic. `.expect(\"…\")` with the
invariant spelled out costs nothing and makes the eventual failure
self-diagnosing; a `Result` is better still where the caller can recover.

    bad:  let e = self.slots.get(idx).unwrap();
    good: let e = self.slots.get(idx).expect(\"idx bounded by push\");",
};

impl LintRule for LibUnwrap {
    fn meta(&self) -> &'static RuleMeta {
        &LIB_UNWRAP
    }

    fn enabled(&self, _file: &str, class: FileClass) -> bool {
        class == FileClass::CoreLib
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.is(i, ".") && cx.seq(i + 1, &["unwrap", "(", ")"]) {
                cx.emit(i, i + 3, &LIB_UNWRAP);
            }
        }
    }
}

pub struct HotClone;
pub static HOT_CLONE: RuleMeta = RuleMeta {
    name: "hot-clone",
    severity: Severity::Warning,
    summary: "packet/event deep-copy in the dispatch hot path",
    suggestion: "the dispatch loop runs once per event; move the payload \
                 instead of cloning it, or hoist the copy out of the hot path",
    explain: "\
`net/src/sim.rs` is the per-event dispatch loop. Cloning a packet or event
there allocates and copies once per event — exactly the cost the timing
wheel and arena work removed. Scoped to receivers named `pkt`, `packet`,
`ev`, `event`.

    bad:  self.route_data(node, port, pkt.clone());
    good: self.route_data(node, port, pkt);      // move, don't copy",
};

impl LintRule for HotClone {
    fn meta(&self) -> &'static RuleMeta {
        &HOT_CLONE
    }

    fn enabled(&self, file: &str, class: FileClass) -> bool {
        !matches!(class, FileClass::Bench) && file.ends_with("net/src/sim.rs")
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.kind(i) == Some(TokenKind::Ident)
                && matches!(cx.text(i), "pkt" | "packet" | "ev" | "event")
                && cx.seq(i + 1, &[".", "clone", "(", ")"])
            {
                cx.emit(i, i + 4, &HOT_CLONE);
            }
        }
    }
}

pub struct HotBtreemap;
pub static HOT_BTREEMAP: RuleMeta = RuleMeta {
    name: "hot-btreemap",
    severity: Severity::Warning,
    summary: "BTreeMap on the per-packet decision path",
    suggestion: "per-flow state in lb/core is touched once per packet; use \
                 `rlb_engine::FlowTable` — same deterministic key-order \
                 iteration, dense O(1) access instead of O(log n) tree walks",
    explain: "\
Per-flow state in `crates/lb` and `crates/core` sits on the per-packet
decision path. `rlb_engine::FlowTable` provides the same deterministic
ascending-key iteration with dense O(1) access (PR 4 measured 6.5× on
churn); `BTreeMap` there is a silent performance regression.

    bad:  flows: BTreeMap<u64, FlowletState>,
    good: flows: rlb_engine::FlowTable<FlowletState>,",
};

impl LintRule for HotBtreemap {
    fn meta(&self) -> &'static RuleMeta {
        &HOT_BTREEMAP
    }

    fn enabled(&self, file: &str, class: FileClass) -> bool {
        !matches!(class, FileClass::Bench)
            && (file.starts_with("crates/lb/src") || file.starts_with("crates/core/src"))
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.kind(i) == Some(TokenKind::Ident) && cx.text(i) == "BTreeMap" {
                cx.emit(i, i, &HOT_BTREEMAP);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// New rule families (inexpressible on the old line scanner)
// ---------------------------------------------------------------------------

pub struct FloatAccum;
pub static FLOAT_ACCUM: RuleMeta = RuleMeta {
    name: "float-accum",
    severity: Severity::Warning,
    summary: "order-sensitive floating-point accumulation",
    suggestion: "float addition is not associative; use \
                 `rlb_metrics::kahan_sum` (compensated, fixed-order) or sum \
                 in an explicitly sorted order",
    explain: "\
`.sum::<f64>()` and float-seeded `.fold(0.0, …)` accumulate in iterator
order with bare `+`, so the rounding error — and eventually the reported
metric — depends on element order. Any refactor that reorders the iterator
(sharded collection, FlowTable spill order, parallel merge) then changes
figures bit-for-bit. `rlb_metrics::kahan_sum` compensates the rounding so
the total is stable to ~1 ulp regardless of magnitude spread.

    bad:  let mean = xs.iter().sum::<f64>() / n;
    good: let mean = rlb_metrics::kahan_sum(xs.iter().copied()) / n;

Order-insensitive folds (`f64::max`, `f64::min`) are not flagged: the rule
matches float-literal seeds (`0.0`), not `f64::NAN`/constant seeds.",
};

impl LintRule for FloatAccum {
    fn meta(&self) -> &'static RuleMeta {
        &FLOAT_ACCUM
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if !cx.is(i, ".") {
                continue;
            }
            // `.sum::<f64>()` / `.product::<f32>()`.
            if matches!(cx.text(i + 1), "sum" | "product")
                && cx.seq(i + 2, &[":", ":", "<"])
                && matches!(cx.text(i + 5), "f32" | "f64")
            {
                cx.emit(i, i + 6, &FLOAT_ACCUM);
            }
            // `.fold(0.0, …)` — a float-literal seed means a float
            // accumulator; `f64::NAN` seeds (max/min folds) don't match.
            if cx.is(i + 1, "fold")
                && cx.is(i + 2, "(")
                && cx.kind(i + 3) == Some(TokenKind::Float)
            {
                cx.emit(i, i + 3, &FLOAT_ACCUM);
            }
        }
    }
}

pub struct UnstableSort;
pub static UNSTABLE_SORT: RuleMeta = RuleMeta {
    name: "unstable-sort",
    severity: Severity::Warning,
    summary: "sort with a float or non-total-order key",
    suggestion: "use `f64::total_cmp` (a total order, stable across std \
                 versions) instead of `partial_cmp(..).unwrap()`; for \
                 unstable sorts on float keys, total_cmp is required",
    explain: "\
Two hazards, both invisible to the type system:

* a `partial_cmp(..).unwrap()` comparator panics on NaN and is not a total
  order — `sort_by` may produce an unspecified permutation;
* `sort_unstable*` does not specify the relative order of equal keys, so
  equal-key float data can come out differently across std versions,
  breaking cross-toolchain reproducibility of figures.

    bad:  fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    good: fcts.sort_by(f64::total_cmp);

`sort_unstable()` on integer keys is fine (total order, and our inputs are
deduplicated or order-insensitive there); comparators naming `total_cmp`
are what the rule asks for and are never flagged.",
};

impl LintRule for UnstableSort {
    fn meta(&self) -> &'static RuleMeta {
        &UNSTABLE_SORT
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if !(cx.is(i, ".")
                && cx.kind(i + 1) == Some(TokenKind::Ident)
                && matches!(
                    cx.text(i + 1),
                    "sort_by" | "sort_by_key" | "sort_unstable_by" | "sort_unstable_by_key"
                )
                && cx.is(i + 2, "("))
            {
                continue;
            }
            // Scan the argument token span (matching parens).
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut has_partial_cmp = false;
            let mut has_total_cmp = false;
            let mut has_float = false;
            while j < cx.code.len() {
                match cx.text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "partial_cmp" => has_partial_cmp = true,
                    "total_cmp" => has_total_cmp = true,
                    "f32" | "f64" => has_float = true,
                    _ => {
                        if cx.kind(j) == Some(TokenKind::Float) {
                            has_float = true;
                        }
                    }
                }
                j += 1;
            }
            if has_partial_cmp || (has_float && !has_total_cmp) {
                cx.emit(i, i + 1, &UNSTABLE_SORT);
            }
        }
    }
}

pub struct TimeArith;
pub static TIME_ARITH: RuleMeta = RuleMeta {
    name: "time-arith",
    severity: Severity::Warning,
    summary: "raw picosecond arithmetic outside engine::time",
    suggestion: "wrap the value in `SimTime`/`SimDuration` (crates/engine/src/\
                 time.rs) — typed arithmetic catches unit mistakes and \
                 underflow; raw u64 math on `_ps` values does not",
    explain: "\
The simulator clocks everything in integer picoseconds, and
`engine::time` owns that invariant: `SimTime + SimDuration` type-checks,
debug-asserts underflow, and keeps conversions exact. Raw `u64` arithmetic
on `_ps`-suffixed values re-opens the unit-confusion and silent-wraparound
bugs the newtypes exist to prevent — and the sharded-PDES work (ROADMAP
item 1) will move time values across shard boundaries where a bare u64
carries no meaning.

    bad:  let until = now.as_ps() + warn_lifetime_ps;
    good: let until = now + SimDuration::from_ps(warn_lifetime_ps);

Existing findings are grandfathered in lint-baseline.toml; don't add new
ones.",
};

/// Binary arithmetic operators of interest (single-token spellings; `+=`
/// is lexed as `+` `=` and handled as a compound assignment).
const ARITH: [&str; 5] = ["+", "-", "*", "/", "%"];

impl LintRule for TimeArith {
    fn meta(&self) -> &'static RuleMeta {
        &TIME_ARITH
    }

    fn enabled(&self, file: &str, class: FileClass) -> bool {
        class == FileClass::CoreLib && !file.ends_with("engine/src/time.rs")
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            if cx.kind(i) != Some(TokenKind::Ident) {
                continue;
            }
            let name = cx.text(i);
            let is_ps = name.ends_with("_ps") || name == "as_ps";
            if !is_ps {
                continue;
            }
            // Right edge of the ps expression: skip `as_ps`'s call parens.
            let right = if name == "as_ps" && cx.seq(i + 1, &["(", ")"]) {
                i + 3
            } else {
                i + 1
            };
            // `x_ps <op> operand` or `x_ps <op>= …` (compound assignment).
            if ARITH.contains(&cx.text(right)) {
                let operand_start = matches!(
                    cx.kind(right + 1),
                    Some(TokenKind::Ident | TokenKind::Int | TokenKind::Float)
                ) || cx.is(right + 1, "(");
                let compound = cx.is(right + 1, "=");
                if operand_start || compound {
                    cx.emit(i, right, &TIME_ARITH);
                    continue;
                }
            }
            // `operand <op> chain.to.x_ps`: walk left over the field-access
            // chain, then require a binary-position operator (an expression
            // ends just before it).
            let mut left = i;
            while left >= 2 && cx.is(left - 1, ".") && cx.kind(left - 2) == Some(TokenKind::Ident)
            {
                left -= 2;
            }
            if left >= 2 && ARITH.contains(&cx.text(left - 1)) {
                let before = left - 2;
                let expr_end = matches!(
                    cx.kind(before),
                    Some(TokenKind::Ident | TokenKind::Int | TokenKind::Float)
                ) || cx.is(before, ")")
                    || cx.is(before, "]");
                if expr_end {
                    cx.emit(i, i, &TIME_ARITH);
                }
            }
        }
    }
}

pub struct HotAlloc;
pub static HOT_ALLOC: RuleMeta = RuleMeta {
    name: "hot-alloc",
    severity: Severity::Warning,
    summary: "heap allocation in the per-event dispatch path",
    suggestion: "dispatch runs once per event; reuse a scratch buffer, use the \
                 packet arena (ROADMAP item 4), or hoist the allocation to \
                 setup",
    explain: "\
The dispatch call graph in `net/src/sim.rs` (`dispatch` and the `on_*`/
`route_*`/`host_*`/… handlers it fans out to) executes once per simulated
event — tens of millions of times per run. `Box::new`, `vec![…]` and
`.to_vec()` there put an allocator round-trip on that path, undoing the
allocation-free engine design and blocking the arena/SoA refactor.
Setup code (`new`, `make_predictor`) is exempt: allocating while building
the topology is what setup is for.

    bad:  let copies = pkt.payload.to_vec();          // inside route_data
    good: self.scratch.clear();                        // reused buffer
          self.scratch.extend_from_slice(&pkt.payload);",
};

/// Function-name prefixes that form the per-event dispatch call graph in
/// `net/src/sim.rs` (see that file's impl block).
const HOT_FN_PREFIXES: [&str; 12] = [
    "dispatch", "on_", "route_", "host_", "switch_", "try_", "apply_", "handle_", "send_",
    "assemble_", "maybe_", "audit_",
];

impl LintRule for HotAlloc {
    fn meta(&self) -> &'static RuleMeta {
        &HOT_ALLOC
    }

    fn enabled(&self, file: &str, class: FileClass) -> bool {
        !matches!(class, FileClass::Bench) && file.ends_with("net/src/sim.rs")
    }

    fn check(&self, cx: &mut FileCx<'_>) {
        for i in 0..cx.code.len() {
            let hot = cx
                .enclosing_fn(i)
                .is_some_and(|f| HOT_FN_PREFIXES.iter().any(|p| f.starts_with(p)));
            if !hot {
                continue;
            }
            if cx.is(i, "Box") && cx.seq(i + 1, &[":", ":", "new"]) {
                cx.emit(i, i + 3, &HOT_ALLOC);
            } else if cx.is(i, "vec") && cx.is(i + 1, "!") {
                cx.emit(i, i + 1, &HOT_ALLOC);
            } else if cx.is(i, ".") && cx.seq(i + 1, &["to_vec", "(", ")"]) {
                cx.emit(i, i + 3, &HOT_ALLOC);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fixture tests: one positive and one negative snippet per rule.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::super::{lint_source, FileClass};

    /// Rule names found in `src` when scanned as `file` / `class`.
    fn found(file: &str, src: &str, class: FileClass) -> Vec<&'static str> {
        lint_source(file, src, class)
            .into_iter()
            .map(|f| f.rule.name)
            .collect()
    }

    #[test]
    fn hash_container_fixture() {
        let bad = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n";
        assert_eq!(
            found("t.rs", bad, FileClass::Sim),
            ["hash-container", "hash-container"]
        );
        let ok = "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u64, u64> }\n";
        assert!(found("t.rs", ok, FileClass::Sim).is_empty());
    }

    #[test]
    fn wall_clock_fixture() {
        let bad = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(found("t.rs", bad, FileClass::CoreLib), ["wall-clock"]);
        let ok = "fn f(q: &EventQueue) { let t = q.now(); }\n";
        assert!(found("t.rs", ok, FileClass::CoreLib).is_empty());
        // Error severity: fires even in test code.
        let in_test = "#[cfg(test)]\nmod t { fn f() { let t = SystemTime::now(); } }\n";
        assert_eq!(found("t.rs", in_test, FileClass::CoreLib), ["wall-clock"]);
    }

    #[test]
    fn unseeded_rng_fixture() {
        let bad = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(found("t.rs", bad, FileClass::Sim), ["unseeded-rng"]);
        let bad2 = "let x: u8 = rand::random();\n";
        assert_eq!(found("t.rs", bad2, FileClass::Test), ["unseeded-rng"]);
        let ok = "let mut rng = substream(seed, b\"flows\", 0);\n";
        assert!(found("t.rs", ok, FileClass::Sim).is_empty());
    }

    #[test]
    fn lib_unwrap_fixture() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(found("t.rs", bad, FileClass::CoreLib), ["lib-unwrap"]);
        // Only core-lib code; .expect is the sanctioned form.
        assert!(found("t.rs", bad, FileClass::Sim).is_empty());
        assert!(found("t.rs", bad, FileClass::Test).is_empty());
        let ok = "fn f(x: Option<u32>) -> u32 { x.expect(\"set in new()\") }\n";
        assert!(found("t.rs", ok, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn hot_clone_fixture() {
        let sim = "crates/net/src/sim.rs";
        for bad in [
            "fn route_data(&mut self) { g(pkt.clone()); }\n",
            "fn f() { let dup = packet.clone(); }\n",
            "fn f() { self.dispatch(ev.clone()); }\n",
            "fn f() { queue.push(event.clone()); }\n",
        ] {
            assert_eq!(found(sim, bad, FileClass::CoreLib), ["hot-clone"], "{bad}");
        }
        // Word boundary comes free with tokens: my_pkt is one ident.
        for ok in [
            "fn f() { let p = prev.clone(); }\n",
            "fn f() { let m = my_pkt.clone(); }\n",
            "fn f() { let c = cfg.switch.clone(); }\n",
        ] {
            assert!(found(sim, ok, FileClass::CoreLib).is_empty(), "{ok}");
        }
        // Same code outside sim.rs is not the hot path.
        let bad = "fn f() { g(pkt.clone()); }\n";
        assert!(found("crates/net/src/topology.rs", bad, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn hot_btreemap_fixture() {
        let bad = "use std::collections::BTreeMap;\nstruct Lb { t: BTreeMap<u64, E> }\n";
        assert_eq!(
            found("crates/lb/src/letflow.rs", bad, FileClass::CoreLib),
            ["hot-btreemap", "hot-btreemap"]
        );
        assert_eq!(
            found("crates/core/src/reroute.rs", bad, FileClass::CoreLib).len(),
            2
        );
        // net and engine legitimately use BTreeMap (cold paths, reference
        // models).
        assert!(found("crates/net/src/sim.rs", bad, FileClass::CoreLib).is_empty());
        assert!(found("crates/engine/src/table.rs", bad, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn float_accum_fixture() {
        let bad = "fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n";
        assert_eq!(found("t.rs", bad, FileClass::Sim), ["float-accum"]);
        let bad2 = "let total = xs.iter().fold(0.0, |a, x| a + x);\n";
        assert_eq!(found("t.rs", bad2, FileClass::CoreLib), ["float-accum"]);
        // Integer sums and order-insensitive float folds are fine.
        let ok = "let n: u64 = xs.iter().sum();\nlet s = xs.iter().sum::<u64>();\n";
        assert!(found("t.rs", ok, FileClass::Sim).is_empty());
        let ok2 = "let hi = xs.iter().cloned().fold(f64::NAN, f64::max);\n";
        assert!(found("t.rs", ok2, FileClass::Sim).is_empty());
        // Kahan helper itself is the sanctioned form.
        let ok3 = "let m = rlb_metrics::kahan_sum(xs.iter().copied()) / n;\n";
        assert!(found("t.rs", ok3, FileClass::Sim).is_empty());
    }

    #[test]
    fn unstable_sort_fixture() {
        let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(found("t.rs", bad, FileClass::Sim), ["unstable-sort"]);
        let bad2 = "fn f(v: &mut [E]) { v.sort_unstable_by(|a, b| (a.x as f64).partial_cmp(&(b.x as f64)).expect(\"NaN\")); }\n";
        assert_eq!(found("t.rs", bad2, FileClass::CoreLib), ["unstable-sort"]);
        let bad3 = "fn f(v: &mut [E]) { v.sort_unstable_by_key(|e| e.cost_f64 as f64); }\n";
        assert_eq!(found("t.rs", bad3, FileClass::Sim), ["unstable-sort"]);
        // total_cmp is the fix; integer keys are a total order.
        let ok = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n";
        assert!(found("t.rs", ok, FileClass::Sim).is_empty());
        let ok2 = "fn f(v: &mut Vec<u64>) { v.sort_unstable(); v.sort_by_key(|x| *x); }\n";
        assert!(found("t.rs", ok2, FileClass::Sim).is_empty());
    }

    #[test]
    fn time_arith_fixture() {
        let bad = "fn f(now_ps: u64, dt_ps: u64) -> u64 { now_ps + dt_ps }\n";
        assert_eq!(
            found("crates/core/src/predictor.rs", bad, FileClass::CoreLib),
            // Both operands are ps-suffixed; each reports once.
            ["time-arith", "time-arith"]
        );
        let bad2 = "fn f(now: SimTime) -> u64 { now.as_ps() + self.cfg.warn_lifetime_ps }\n";
        assert!(!found("crates/net/src/sim.rs", bad2, FileClass::CoreLib).is_empty());
        let bad3 = "fn f(&mut self) { self.counters.paused_port_time_ps += 5; }\n";
        assert_eq!(
            found("crates/net/src/sim.rs", bad3, FileClass::CoreLib),
            ["time-arith"]
        );
        // Typed arithmetic, comparisons, and assignment are all fine.
        let ok = "fn f(now: SimTime, d: SimDuration) -> SimTime { now + d }\n\
                  fn g(a_ps: u64, b_ps: u64) -> bool { a_ps < b_ps }\n\
                  fn h(&mut self, v: u64) { self.t_ps = v; }\n";
        assert!(found("crates/net/src/sim.rs", ok, FileClass::CoreLib).is_empty());
        // engine::time owns raw ps math; other classes are out of scope.
        let raw = "fn f(a_ps: u64) -> u64 { a_ps * 2 }\n";
        assert!(found("crates/engine/src/time.rs", raw, FileClass::CoreLib).is_empty());
        assert!(found("crates/metrics/src/stats.rs", raw, FileClass::Sim).is_empty());
    }

    #[test]
    fn hot_alloc_fixture() {
        let sim = "crates/net/src/sim.rs";
        let bad = "impl Simulation { fn route_data(&mut self) { let c = pkt.payload.to_vec(); } }\n";
        assert_eq!(found(sim, bad, FileClass::CoreLib), ["hot-alloc"]);
        let bad2 = "impl S { fn on_host_rx(&mut self) { let b = Box::new(frame); } }\n";
        assert_eq!(found(sim, bad2, FileClass::CoreLib), ["hot-alloc"]);
        let bad3 = "impl S { fn dispatch(&mut self, ev: Event) { let v = vec![0u8; 64]; } }\n";
        assert_eq!(found(sim, bad3, FileClass::CoreLib), ["hot-alloc"]);
        // Setup allocates freely; other files are out of scope.
        let ok = "impl S { fn new(cfg: Cfg) -> S { let q = vec![VecDeque::new(); 4]; } }\n";
        assert!(found(sim, ok, FileClass::CoreLib).is_empty());
        let elsewhere = "impl S { fn dispatch(&mut self) { let v = vec![0u8; 64]; } }\n";
        assert!(found("crates/net/src/topology.rs", elsewhere, FileClass::CoreLib).is_empty());
    }
}
