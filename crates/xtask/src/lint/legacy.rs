//! The original line-oriented scanner, frozen as a differential reference.
//!
//! This is the pre-framework implementation (PR 1/3/4): per-line string
//! masking, substring patterns, and hand-counted braces. It is kept —
//! unchanged in behavior — so `tests/differential.rs` can prove the
//! lexer-backed engine reproduces every legacy finding over the whole
//! workspace, modulo the masker's *known* false positives/negatives
//! (multi-line block comments, raw strings, allow-markers blocked by
//! attribute lines — the bugs the rewrite fixes). Do not extend it; new
//! rules go in [`super::rules`].

use super::{classify, FileClass, Severity};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LegacyRule {
    HashContainer,
    WallClock,
    UnseededRng,
    LibUnwrap,
    HotClone,
    HotBtreemap,
}

impl LegacyRule {
    pub fn name(self) -> &'static str {
        match self {
            LegacyRule::HashContainer => "hash-container",
            LegacyRule::WallClock => "wall-clock",
            LegacyRule::UnseededRng => "unseeded-rng",
            LegacyRule::LibUnwrap => "lib-unwrap",
            LegacyRule::HotClone => "hot-clone",
            LegacyRule::HotBtreemap => "hot-btreemap",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            LegacyRule::WallClock | LegacyRule::UnseededRng => Severity::Error,
            _ => Severity::Warning,
        }
    }

    fn patterns(self) -> &'static [&'static str] {
        match self {
            LegacyRule::HashContainer => &["HashMap", "HashSet"],
            LegacyRule::WallClock => &["Instant::now", "SystemTime::now"],
            LegacyRule::UnseededRng => &["thread_rng", "from_entropy", "rand::random"],
            LegacyRule::LibUnwrap => &[".unwrap()"],
            LegacyRule::HotClone => &[".clone()"],
            LegacyRule::HotBtreemap => &["BTreeMap"],
        }
    }
}

const ALL_RULES: [LegacyRule; 6] = [
    LegacyRule::HashContainer,
    LegacyRule::WallClock,
    LegacyRule::UnseededRng,
    LegacyRule::LibUnwrap,
    LegacyRule::HotClone,
    LegacyRule::HotBtreemap,
];

fn applies(class: FileClass, rule: LegacyRule, in_test_module: bool) -> bool {
    match class {
        FileClass::Bench => false,
        FileClass::Test => rule.severity() == Severity::Error,
        FileClass::CoreLib | FileClass::Sim => {
            if in_test_module && rule.severity() == Severity::Warning {
                return false;
            }
            match rule {
                LegacyRule::LibUnwrap => class == FileClass::CoreLib && !in_test_module,
                _ => true,
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyFinding {
    pub file: String,
    pub line: usize,
    pub rule: LegacyRule,
}

/// Replace string-literal contents and `char` literals with spaces so
/// patterns inside them don't match. Line-local; raw strings are treated
/// as plain strings (a *known* legacy inexactness).
fn mask_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                while let Some(c2) = chars.next() {
                    match c2 {
                        '\\' => {
                            out.push(' ');
                            if chars.next().is_some() {
                                out.push(' ');
                            }
                        }
                        '"' => {
                            out.push('"');
                            break;
                        }
                        _ => out.push(' '),
                    }
                }
            }
            '\'' => {
                let rest: String = chars.clone().take(3).collect();
                let close = if let Some(escaped) = rest.strip_prefix('\\') {
                    escaped.find('\'').map(|i| i + 1)
                } else {
                    rest.find('\'')
                };
                match close {
                    Some(n) if n <= 2 => {
                        out.push('\'');
                        for _ in 0..=n {
                            let _ = chars.next();
                            out.push(' ');
                        }
                    }
                    _ => out.push('\''),
                }
            }
            _ => out.push(c),
        }
    }
    out
}

fn split_comment(masked: &str) -> (&str, &str) {
    match masked.find("//") {
        Some(i) => (&masked[..i], &masked[i..]),
        None => (masked, ""),
    }
}

fn allowed_rules(comment: &str) -> Vec<LegacyRule> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(i) = rest.find("lint:allow(") {
        rest = &rest[i + "lint:allow(".len()..];
        if let Some(j) = rest.find(')') {
            let name = rest[..j].trim();
            if let Some(rule) = ALL_RULES.iter().find(|r| r.name() == name) {
                out.push(*rule);
            }
            rest = &rest[j..];
        }
    }
    out
}

fn hot_clone_hit(code: &str) -> bool {
    const RECEIVERS: [&str; 4] = ["pkt", "packet", "ev", "event"];
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find(".clone()") {
        let recv_end = from + i;
        for recv in RECEIVERS {
            if code[..recv_end].ends_with(recv) {
                let start = recv_end - recv.len();
                let bounded = start == 0
                    || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
                if bounded {
                    return true;
                }
            }
        }
        from = recv_end + ".clone()".len();
    }
    false
}

/// The legacy scan of one file, verbatim from the pre-framework lint.
pub fn scan(file: &str, source: &str, class: FileClass) -> Vec<LegacyFinding> {
    let mut findings = Vec::new();
    if class == FileClass::Bench {
        return findings;
    }
    let mut test_pending = false;
    let mut test_depth: i64 = 0;
    let mut in_test = false;
    let mut allow_next: Vec<LegacyRule> = Vec::new();
    let mut in_block_comment = false;

    for (idx, raw) in source.lines().enumerate() {
        let masked = mask_strings(raw);
        let (code_part, comment) = split_comment(&masked);
        let mut code = code_part.to_string();
        if in_block_comment {
            match code.find("*/") {
                Some(i) => {
                    code = code[i + 2..].to_string();
                    in_block_comment = false;
                }
                None => continue,
            }
        }
        while let Some(i) = code.find("/*") {
            match code[i..].find("*/") {
                Some(j) => code = format!("{}{}", &code[..i], &code[i + j + 2..]),
                None => {
                    in_block_comment = true;
                    code.truncate(i);
                    break;
                }
            }
        }
        let code = code.as_str();

        let allows: Vec<LegacyRule> = allowed_rules(comment)
            .into_iter()
            .chain(allow_next.drain(..))
            .collect();
        let trimmed_code = code.trim();
        if trimmed_code.is_empty() && !comment.is_empty() {
            allow_next = allows;
            continue;
        }

        if !in_test && code.contains("#[cfg(test)]") {
            test_pending = true;
        }
        let line_gated = in_test || test_pending;
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if test_pending {
            if opens > 0 {
                in_test = true;
                test_pending = false;
                test_depth = opens - closes;
                if test_depth <= 0 {
                    in_test = false;
                }
            } else if trimmed_code.ends_with(';') {
                test_pending = false;
            }
        } else if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
        }

        for rule in ALL_RULES {
            if !applies(class, rule, line_gated) {
                continue;
            }
            if allows.contains(&rule) {
                continue;
            }
            let hit = match rule {
                LegacyRule::HotClone => file.ends_with("net/src/sim.rs") && hot_clone_hit(code),
                LegacyRule::HotBtreemap => {
                    (file.starts_with("crates/lb/src") || file.starts_with("crates/core/src"))
                        && rule.patterns().iter().any(|p| code.contains(p))
                }
                _ => rule.patterns().iter().any(|p| code.contains(p)),
            };
            if hit {
                findings.push(LegacyFinding { file: file.to_string(), line: idx + 1, rule });
            }
        }
    }
    findings
}

/// Scan a whole workspace tree with the legacy scanner (used by the
/// differential test).
pub fn scan_workspace(root: &Path) -> Vec<LegacyFinding> {
    let mut findings = Vec::new();
    for path in super::collect_rs_files(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let class = classify(rel);
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.extend(scan(&rel_str, &source, class));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(src: &str, class: FileClass) -> Vec<LegacyRule> {
        scan("t.rs", src, class).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn legacy_flags_the_six_rule_classes() {
        let src = "struct S { m: HashMap<u64, u64> }\n";
        assert_eq!(rules_found(src, FileClass::Sim), vec![LegacyRule::HashContainer]);
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_found(src, FileClass::Sim), vec![LegacyRule::WallClock]);
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(rules_found(src, FileClass::Sim), vec![LegacyRule::UnseededRng]);
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_found(src, FileClass::CoreLib), vec![LegacyRule::LibUnwrap]);
        let src = "fn f() { g(pkt.clone()); }\n";
        assert_eq!(
            scan("crates/net/src/sim.rs", src, FileClass::CoreLib)
                .into_iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            vec![LegacyRule::HotClone]
        );
        let src = "struct Lb { t: BTreeMap<u64, E> }\n";
        assert_eq!(
            scan("crates/lb/src/letflow.rs", src, FileClass::CoreLib)
                .into_iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            vec![LegacyRule::HotBtreemap]
        );
    }

    #[test]
    fn legacy_scope_and_allow_machinery_still_works() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn t() { let w = std::time::Instant::now(); }
}
fn after() { let m: std::collections::HashMap<u8, u8> = Default::default(); }
";
        assert_eq!(
            rules_found(src, FileClass::CoreLib),
            vec![LegacyRule::WallClock, LegacyRule::HashContainer]
        );
        let same = "let t = Instant::now(); // lint:allow(wall-clock) CLI timing\n";
        assert!(rules_found(same, FileClass::Sim).is_empty());
        let prev = "// lint:allow(wall-clock)\nlet t = Instant::now();\n";
        assert!(rules_found(prev, FileClass::Sim).is_empty());
        let stale = "// lint:allow(wall-clock)\nlet a = 1;\nlet t = Instant::now();\n";
        assert_eq!(rules_found(stale, FileClass::Sim), vec![LegacyRule::WallClock]);
    }

    /// The known legacy masker bugs, pinned as *bugs* so the differential
    /// test's exception list stays honest: if someone "fixes" legacy, the
    /// exceptions must go too. The lexer-backed engine gets all three
    /// right (see `tests/differential.rs::rewrite_fixes_the_masker_bugs`).
    #[test]
    fn legacy_known_bugs_are_still_present() {
        // Bug 1: the string masker runs before block-comment stripping, so
        // a quote *inside* a block comment masks the closing `*/` and the
        // phantom comment swallows the code after it (false negative).
        let src = "/* has a \" quote */ let m: HashMap<u8, u8> = HashMap::new();\n";
        assert!(rules_found(src, FileClass::Sim).is_empty());
        // Bug 2: raw strings are not understood; the `"` inside `r#"…"#`
        // terminates the masked region early and the tail matches
        // (false positive).
        let raw = "let s = r#\"say \"HashMap\" here\"#;\n";
        assert_eq!(rules_found(raw, FileClass::Sim), vec![LegacyRule::HashContainer]);
        // Bug 3: an attribute line between the allow marker and the code
        // eats the suppression (false positive).
        let blocked = "// lint:allow(hash-container)\n#[derive(Debug)]\nstruct S { m: HashMap<u8, u8> }\n";
        assert_eq!(rules_found(blocked, FileClass::Sim), vec![LegacyRule::HashContainer]);
    }
}
