//! Determinism / robustness lint for the simulator workspace.
//!
//! The simulator's headline guarantee is bit-exact replay for a fixed seed
//! (ROADMAP "determinism" pillar). That property is easy to lose through a
//! single stray `HashMap` iteration or wall-clock read, and the failure is
//! silent — results stay plausible, they just stop being reproducible. This
//! scanner enforces the policy mechanically:
//!
//! | rule            | severity | flags                                         |
//! |-----------------|----------|-----------------------------------------------|
//! | `hash-container`| warning  | `HashMap` / `HashSet` in simulator code (their |
//! |                 |          | iteration order is randomized per process)     |
//! | `wall-clock`    | error    | `Instant::now` / `SystemTime::now` outside     |
//! |                 |          | `crates/bench` (real time leaking into a run)  |
//! | `unseeded-rng`  | error    | `thread_rng` / `from_entropy` / `rand::random` |
//! |                 |          | (entropy not derived from the run seed)        |
//! | `lib-unwrap`    | warning  | bare `.unwrap()` in the library code of        |
//! |                 |          | `crates/{engine,net,core,transport,lb}`        |
//! |                 |          | (`.expect("invariant …")` is the sanctioned    |
//! |                 |          | form — it documents *why* it cannot fail)      |
//! | `hot-clone`     | warning  | `pkt.clone()` / `event.clone()` (and the       |
//! |                 |          | `packet`/`ev` spellings) in `net/src/sim.rs` — |
//! |                 |          | the dispatch loop is the per-event hot path    |
//! |                 |          | and deep-copying payloads there undoes the     |
//! |                 |          | engine's allocation-free design                |
//! | `hot-btreemap`  | warning  | `BTreeMap` in the library code of `crates/lb`  |
//! |                 |          | and `crates/core` — per-flow state there sits  |
//! |                 |          | on the per-packet decision path and belongs in |
//! |                 |          | `rlb_engine::FlowTable` (dense slab + sorted   |
//! |                 |          | sparse map, same deterministic iteration)      |
//!
//! Scope rules: `vendor/` and `target/` are never scanned; `crates/bench`
//! is exempt from everything (it times and explores, it is not replayed);
//! `#[cfg(test)]` modules and `tests/` directories are exempt from the two
//! warning-severity rules (a test-local `HashSet` or `unwrap` cannot hurt
//! replay) but still subject to the error-severity ones (tests must be as
//! deterministic as the code they pin down).
//!
//! Escape hatch: a `// lint:allow(<rule>)` comment on the same line, or on
//! a comment line directly above, suppresses that rule — use it where the
//! hazard is deliberate and the reason is worth a comment anyway.
//!
//! Implementation note: this is a line-oriented token scanner, not a parser
//! (no `syn` in the offline vendor set). It masks string literals and
//! comments before matching and tracks `#[cfg(test)]` brace depth, which is
//! exact enough for this codebase's idiom; anything it cannot express can
//! use the escape hatch.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    HashContainer,
    WallClock,
    UnseededRng,
    LibUnwrap,
    HotClone,
    HotBtreemap,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashContainer => "hash-container",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::LibUnwrap => "lib-unwrap",
            Rule::HotClone => "hot-clone",
            Rule::HotBtreemap => "hot-btreemap",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            Rule::HashContainer | Rule::LibUnwrap | Rule::HotClone | Rule::HotBtreemap => {
                Severity::Warning
            }
            Rule::WallClock | Rule::UnseededRng => Severity::Error,
        }
    }

    fn patterns(self) -> &'static [&'static str] {
        match self {
            Rule::HashContainer => &["HashMap", "HashSet"],
            Rule::WallClock => &["Instant::now", "SystemTime::now"],
            Rule::UnseededRng => &["thread_rng", "from_entropy", "rand::random"],
            Rule::LibUnwrap => &[".unwrap()"],
            Rule::HotClone => &[".clone()"],
            Rule::HotBtreemap => &["BTreeMap"],
        }
    }

    fn suggestion(self) -> &'static str {
        match self {
            Rule::HashContainer => {
                "iteration order is randomized per process; use BTreeMap/BTreeSet \
                 (or a Vec keyed by index) so replays are bit-exact"
            }
            Rule::WallClock => {
                "wall-clock time must not influence a simulation; use the event \
                 clock (`EventQueue::now`), or move the timing into crates/bench"
            }
            Rule::UnseededRng => {
                "derive randomness from the run seed via `rlb_engine::substream` \
                 so every decision is replayable"
            }
            Rule::LibUnwrap => {
                "return a Result, or use `.expect(\"<invariant that makes this \
                 infallible>\")` so the panic message explains itself"
            }
            Rule::HotClone => {
                "the dispatch loop runs once per event; move the payload \
                 instead of cloning it, or hoist the copy out of the hot path"
            }
            Rule::HotBtreemap => {
                "per-flow state in lb/core is touched once per packet; use \
                 `rlb_engine::FlowTable` — same deterministic key-order \
                 iteration, dense O(1) access instead of O(log n) tree walks"
            }
        }
    }
}

const ALL_RULES: [Rule; 6] = [
    Rule::HashContainer,
    Rule::WallClock,
    Rule::UnseededRng,
    Rule::LibUnwrap,
    Rule::HotClone,
    Rule::HotBtreemap,
];

/// What kind of file is being scanned — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code of the deterministic core crates: all rules.
    CoreLib,
    /// Other simulator code (binaries, metrics, workloads, this tool):
    /// everything except `lib-unwrap`.
    Sim,
    /// Integration-test code: error-severity rules only.
    Test,
    /// `crates/bench`: exempt.
    Bench,
}

impl FileClass {
    fn applies(self, rule: Rule, in_test_module: bool) -> bool {
        match self {
            FileClass::Bench => false,
            FileClass::Test => rule.severity() == Severity::Error,
            FileClass::CoreLib | FileClass::Sim => {
                if in_test_module && rule.severity() == Severity::Warning {
                    return false;
                }
                match rule {
                    Rule::LibUnwrap => self == FileClass::CoreLib && !in_test_module,
                    _ => true,
                }
            }
        }
    }
}

/// Classify a workspace-relative path.
pub fn classify(rel: &Path) -> FileClass {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy());
    let first = comps.next().unwrap_or_default();
    if first == "tests" {
        return FileClass::Test;
    }
    if first == "crates" {
        let krate = comps.next().unwrap_or_default();
        // bench measures wall-clock by design; xtask is developer tooling and
        // its own tests embed rule-triggering snippets in string literals.
        if krate == "bench" || krate == "xtask" {
            return FileClass::Bench;
        }
        if rel.components().any(|c| c.as_os_str() == "tests") {
            return FileClass::Test;
        }
        if matches!(&*krate, "engine" | "net" | "core" | "transport" | "lb") {
            // The crate's binaries (src/bin) are tools, not library code.
            if rel.components().any(|c| c.as_os_str() == "bin") {
                return FileClass::Sim;
            }
            return FileClass::CoreLib;
        }
    }
    FileClass::Sim
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {}:{}: [{}] {}",
            self.rule.severity(),
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt.trim()
        )?;
        write!(f, "    help: {}", self.rule.suggestion())
    }
}

// ---------------------------------------------------------------------------
// Line preprocessing
// ---------------------------------------------------------------------------

/// Replace string-literal contents and `char` literals with spaces so
/// patterns inside them don't match and quotes can't unbalance the scan.
/// Handles escapes; raw strings are treated as plain (good enough here).
fn mask_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                while let Some(c2) = chars.next() {
                    match c2 {
                        '\\' => {
                            out.push(' ');
                            if chars.next().is_some() {
                                out.push(' ');
                            }
                        }
                        '"' => {
                            out.push('"');
                            break;
                        }
                        _ => out.push(' '),
                    }
                }
            }
            '\'' => {
                // A char literal ('x', '\n') — mask it. A lifetime ('a)
                // has no closing quote within a couple of chars; leave it.
                let rest: String = chars.clone().take(3).collect();
                let close = if let Some(escaped) = rest.strip_prefix('\\') {
                    escaped.find('\'').map(|i| i + 1)
                } else {
                    rest.find('\'')
                };
                match close {
                    Some(n) if n <= 2 => {
                        out.push('\'');
                        for _ in 0..=n {
                            let _ = chars.next();
                            out.push(' ');
                        }
                    }
                    _ => out.push('\''),
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Split a string-masked line into (code, comment) at the first `//`.
fn split_comment(masked: &str) -> (&str, &str) {
    match masked.find("//") {
        Some(i) => (&masked[..i], &masked[i..]),
        None => (masked, ""),
    }
}

/// Rules named by `lint:allow(<rule>)` markers in a comment.
fn allowed_rules(comment: &str) -> Vec<Rule> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(i) = rest.find("lint:allow(") {
        rest = &rest[i + "lint:allow(".len()..];
        if let Some(j) = rest.find(')') {
            let name = rest[..j].trim();
            if let Some(rule) = ALL_RULES.iter().find(|r| r.name() == name) {
                out.push(*rule);
            }
            rest = &rest[j..];
        }
    }
    out
}

/// `.clone()` whose receiver is a packet/event binding (`pkt`, `packet`,
/// `ev`, `event`), with a word-boundary check on the left so `prev.clone()`
/// or `my_pkt.clone()` do not match. Line-local, like every other rule.
fn hot_clone_hit(code: &str) -> bool {
    const RECEIVERS: [&str; 4] = ["pkt", "packet", "ev", "event"];
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find(".clone()") {
        let recv_end = from + i;
        for recv in RECEIVERS {
            if code[..recv_end].ends_with(recv) {
                let start = recv_end - recv.len();
                let bounded = start == 0
                    || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
                if bounded {
                    return true;
                }
            }
        }
        from = recv_end + ".clone()".len();
    }
    false
}

// ---------------------------------------------------------------------------
// The scanner
// ---------------------------------------------------------------------------

/// Scan one file's source. `file` is the label used in diagnostics.
pub fn lint_source(file: &str, source: &str, class: FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();
    if class == FileClass::Bench {
        return findings;
    }
    // #[cfg(test)] region tracking.
    let mut test_pending = false; // saw the attribute, waiting for the item's `{`
    let mut test_depth: i64 = 0; // brace depth inside the gated item (0 = outside)
    let mut in_test = false;
    // lint:allow on a standalone comment line applies to the next line.
    let mut allow_next: Vec<Rule> = Vec::new();
    // /* */ block comments (rare in this codebase, but cheap to track).
    let mut in_block_comment = false;

    for (idx, raw) in source.lines().enumerate() {
        let masked = mask_strings(raw);
        let (code_part, comment) = split_comment(&masked);
        let mut code = code_part.to_string();
        if in_block_comment {
            match code.find("*/") {
                Some(i) => {
                    code = code[i + 2..].to_string();
                    in_block_comment = false;
                }
                None => continue,
            }
        }
        while let Some(i) = code.find("/*") {
            match code[i..].find("*/") {
                Some(j) => code = format!("{}{}", &code[..i], &code[i + j + 2..]),
                None => {
                    in_block_comment = true;
                    code.truncate(i);
                    break;
                }
            }
        }
        let code = code.as_str();

        let allows: Vec<Rule> = allowed_rules(comment)
            .into_iter()
            .chain(allow_next.drain(..))
            .collect();
        let trimmed_code = code.trim();
        if trimmed_code.is_empty() && !comment.is_empty() {
            // Pure comment line: its allow markers carry to the next line.
            allow_next = allows;
            continue;
        }

        // Track #[cfg(test)]-gated regions.
        if !in_test && code.contains("#[cfg(test)]") {
            test_pending = true;
        }
        // The gate applies to this line even when the update below closes it
        // (single-line items, braceless `use`/`const`).
        let line_gated = in_test || test_pending;
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if test_pending {
            if opens > 0 {
                in_test = true;
                test_pending = false;
                test_depth = opens - closes;
                if test_depth <= 0 {
                    in_test = false; // single-line item
                }
            } else if trimmed_code.ends_with(';') {
                test_pending = false; // gated a braceless item (use/const)
            }
        } else if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
        }

        for rule in ALL_RULES {
            if !class.applies(rule, line_gated) {
                continue;
            }
            if allows.contains(&rule) {
                continue;
            }
            let hit = match rule {
                // Scoped to the dispatch loop's file: cloning a config at
                // setup elsewhere is fine, cloning a packet per event is not.
                Rule::HotClone => file.ends_with("net/src/sim.rs") && hot_clone_hit(code),
                // Scoped to the two crates whose per-flow tables sit on the
                // decision path; a BTreeMap in net's run-summary plumbing or
                // in engine's reference-model tests is not a hot structure.
                Rule::HotBtreemap => {
                    (file.starts_with("crates/lb/src") || file.starts_with("crates/core/src"))
                        && rule.patterns().iter().any(|p| code.contains(p))
                }
                _ => rule.patterns().iter().any(|p| code.contains(p)),
            };
            if hit {
                findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule,
                    excerpt: raw.trim().to_string(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk + entry point
// ---------------------------------------------------------------------------

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(&*name, "vendor" | "target" | ".git" | ".github") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort(); // deterministic diagnostic order
    out
}

pub fn run(root: &Path, deny: bool) -> ExitCode {
    let files = collect_rs_files(root);
    let mut findings = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let class = classify(rel);
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("warning: could not read {}", path.display());
            continue;
        };
        findings.extend(lint_source(&rel.display().to_string(), &source, class));
    }
    for f in &findings {
        println!("{f}");
    }
    let errors = findings
        .iter()
        .filter(|f| f.rule.severity() == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    println!(
        "lint: scanned {} files: {} error(s), {} warning(s)",
        files.len(),
        errors,
        warnings
    );
    if errors > 0 || (deny && !findings.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// Tests: every rule class against a known-bad snippet, plus the machinery.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(src: &str, class: FileClass) -> Vec<Rule> {
        lint_source("t.rs", src, class).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_hash_container() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\n";
        let found = rules_found(src, FileClass::Sim);
        assert_eq!(found, vec![Rule::HashContainer, Rule::HashContainer]);
    }

    #[test]
    fn flags_wall_clock() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_found(src, FileClass::Sim), vec![Rule::WallClock]);
        let src = "fn f() { let t = SystemTime::now(); }\n";
        assert_eq!(rules_found(src, FileClass::CoreLib), vec![Rule::WallClock]);
    }

    #[test]
    fn flags_unseeded_rng() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(rules_found(src, FileClass::Sim), vec![Rule::UnseededRng]);
        let src = "let r = SmallRng::from_entropy();\n";
        assert_eq!(rules_found(src, FileClass::Test), vec![Rule::UnseededRng]);
    }

    #[test]
    fn flags_lib_unwrap_only_in_core_libs() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_found(src, FileClass::CoreLib), vec![Rule::LibUnwrap]);
        assert!(rules_found(src, FileClass::Sim).is_empty());
        assert!(rules_found(src, FileClass::Test).is_empty());
        // .expect with a message is the sanctioned form.
        let ok = "fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: set in new()\") }\n";
        assert!(rules_found(ok, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn hot_clone_flags_packet_and_event_receivers_in_sim_only() {
        let sim = "crates/net/src/sim.rs";
        for bad in [
            "fn f(pkt: Packet) { g(pkt.clone()); }\n",
            "let dup = packet.clone();\n",
            "self.dispatch(ev.clone());\n",
            "queue.push(event.clone());\n",
        ] {
            assert_eq!(
                lint_source(sim, bad, FileClass::CoreLib)
                    .into_iter()
                    .map(|f| f.rule)
                    .collect::<Vec<_>>(),
                vec![Rule::HotClone],
                "should flag: {bad}"
            );
        }
        // Word boundary: other receivers that merely end in a keyword.
        for ok in [
            "let p = prev.clone();\n",
            "let c = cfg.switch.clone();\n",
            "let m = my_pkt.clone();\n",
            "let d = dev.clone();\n",
        ] {
            assert!(
                lint_source(sim, ok, FileClass::CoreLib).is_empty(),
                "should not flag: {ok}"
            );
        }
        // Outside sim.rs the same code is not the hot path.
        let bad = "g(pkt.clone());\n";
        assert!(lint_source("crates/net/src/topology.rs", bad, FileClass::CoreLib).is_empty());
        // Escape hatch works like every other rule.
        let allowed = "let dup = event.clone(); // lint:allow(hot-clone) trace slow path\n";
        assert!(lint_source(sim, allowed, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn hot_btreemap_flags_lb_and_core_lib_code_only() {
        let bad = "use std::collections::BTreeMap;\nstruct Lb { table: BTreeMap<u64, Entry> }\n";
        for file in ["crates/lb/src/letflow.rs", "crates/core/src/reroute.rs"] {
            assert_eq!(
                lint_source(file, bad, FileClass::CoreLib)
                    .into_iter()
                    .map(|f| f.rule)
                    .collect::<Vec<_>>(),
                vec![Rule::HotBtreemap, Rule::HotBtreemap],
                "should flag in {file}"
            );
        }
        // Outside the scoped crates the same code is not a hot structure.
        for file in ["crates/net/src/sim.rs", "crates/engine/src/table.rs"] {
            assert!(
                lint_source(file, bad, FileClass::CoreLib).is_empty(),
                "should not flag in {file}"
            );
        }
        // Warning severity: test modules are exempt like hash-container.
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::BTreeMap;\n}\n";
        assert!(lint_source("crates/lb/src/letflow.rs", in_test, FileClass::CoreLib).is_empty());
        // Escape hatch works like every other rule.
        let allowed =
            "let m: BTreeMap<u64, u64> = x; // lint:allow(hot-btreemap) range queries needed\n";
        assert!(lint_source("crates/core/src/reroute.rs", allowed, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn bench_is_exempt() {
        let src = "fn f() { let t = Instant::now(); let mut r = rand::thread_rng(); }\n";
        assert!(rules_found(src, FileClass::Bench).is_empty());
    }

    #[test]
    fn cfg_test_module_exempts_warnings_not_errors() {
        let src = "\
struct S;
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn t() {
        let s: HashSet<u32> = HashSet::new();
        let x = Some(1).unwrap();
        let w = std::time::Instant::now();
    }
}
fn after() { let m: std::collections::HashMap<u8, u8> = Default::default(); }
";
        let found = rules_found(src, FileClass::CoreLib);
        // Inside the test module only the wall-clock error survives; the
        // HashMap after the module closes is flagged again.
        assert_eq!(found, vec![Rule::WallClock, Rule::HashContainer]);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_rest_of_file() {
        let src = "\
#[cfg(test)]
use std::collections::HashSet;
fn live() { let m = std::collections::HashMap::<u8, u8>::new(); }
";
        let found = rules_found(src, FileClass::Sim);
        assert_eq!(found, vec![Rule::HashContainer]);
    }

    #[test]
    fn allow_marker_same_line_and_previous_line() {
        let same = "let t = Instant::now(); // lint:allow(wall-clock) CLI timing\n";
        assert!(rules_found(same, FileClass::Sim).is_empty());
        let prev = "// lint:allow(wall-clock)\nlet t = Instant::now();\n";
        assert!(rules_found(prev, FileClass::Sim).is_empty());
        // The marker only suppresses the named rule.
        let other = "let t = Instant::now(); // lint:allow(hash-container)\n";
        assert_eq!(rules_found(other, FileClass::Sim), vec![Rule::WallClock]);
        // And only for the very next line.
        let stale = "// lint:allow(wall-clock)\nlet a = 1;\nlet t = Instant::now();\n";
        assert_eq!(rules_found(stale, FileClass::Sim), vec![Rule::WallClock]);
    }

    #[test]
    fn strings_comments_and_doc_comments_do_not_match() {
        let src = "\
//! Talks about HashMap iteration order in docs.
/// Mentions Instant::now in a doc comment.
// plain comment: thread_rng
fn f() { let s = \"HashMap and Instant::now and .unwrap()\"; }
/* block comment: SystemTime::now
   spanning lines with HashSet */
fn g() {}
";
        assert!(rules_found(src, FileClass::CoreLib).is_empty());
    }

    #[test]
    fn severity_split_matches_policy() {
        assert_eq!(Rule::HashContainer.severity(), Severity::Warning);
        assert_eq!(Rule::LibUnwrap.severity(), Severity::Warning);
        assert_eq!(Rule::HotClone.severity(), Severity::Warning);
        assert_eq!(Rule::HotBtreemap.severity(), Severity::Warning);
        assert_eq!(Rule::WallClock.severity(), Severity::Error);
        assert_eq!(Rule::UnseededRng.severity(), Severity::Error);
    }

    #[test]
    fn classify_maps_workspace_layout() {
        let p = |s: &str| classify(Path::new(s));
        assert_eq!(p("crates/engine/src/queue.rs"), FileClass::CoreLib);
        assert_eq!(p("crates/net/src/sim.rs"), FileClass::CoreLib);
        assert_eq!(p("crates/metrics/src/counters.rs"), FileClass::Sim);
        assert_eq!(p("crates/bench/src/bin/all_figs.rs"), FileClass::Bench);
        assert_eq!(p("tests/cross_crate_props.rs"), FileClass::Test);
        assert_eq!(p("src/bin/rlbsim.rs"), FileClass::Sim);
        assert_eq!(p("crates/xtask/src/lint.rs"), FileClass::Bench);
    }

    #[test]
    fn char_literals_do_not_unbalance_string_masking() {
        // The '"' char literal must not open a string region that would
        // swallow the rest of the line.
        let src = "fn f(c: char) { if c == '\"' { let m: HashMap<u8,u8> = HashMap::new(); } }\n";
        let found = rules_found(src, FileClass::Sim);
        assert_eq!(found, vec![Rule::HashContainer]);
    }
}
