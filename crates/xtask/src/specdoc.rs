//! `cargo xtask spec-doc` — regenerate (or `--check`) the scenario-spec
//! grammar reference in EXPERIMENTS.md.
//!
//! The reference is rendered by `rlb_net::spec::render_spec_reference`
//! from `SPEC_REFERENCE`, the same key tables the parser's unknown-key
//! diagnostics quote — one source of truth for the grammar, its error
//! messages and its documentation. This tool only owns the splicing:
//! everything between the `spec-doc:begin` / `spec-doc:end` markers is
//! replaced wholesale; hand edits inside the block are overwritten (CI
//! runs `--check`, which fails when the committed block drifts from the
//! code).

use std::path::Path;
use std::process::ExitCode;

const BEGIN: &str = "<!-- spec-doc:begin -->";
const END: &str = "<!-- spec-doc:end -->";

/// `cargo xtask spec-doc [--check]`.
pub fn cli(root: &Path, args: &[String]) -> ExitCode {
    let mut check = false;
    for a in args {
        match a.as_str() {
            "--check" => check = true,
            bad => {
                eprintln!("unknown argument `{bad}` (usage: cargo xtask spec-doc [--check])");
                return ExitCode::from(2);
            }
        }
    }
    run(root, check)
}

fn run(root: &Path, check: bool) -> ExitCode {
    let path = root.join("EXPERIMENTS.md");
    let current = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let updated = match splice(&current) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if updated == current {
        println!("EXPERIMENTS.md spec reference is up to date");
        return ExitCode::SUCCESS;
    }
    if check {
        eprintln!(
            "EXPERIMENTS.md spec reference is out of date with \
             rlb_net::spec::SPEC_REFERENCE — run `cargo xtask spec-doc`"
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&path, updated) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("regenerated the spec reference in EXPERIMENTS.md");
    ExitCode::SUCCESS
}

/// Replace the marker-delimited block in `text` with the freshly rendered
/// reference. The markers themselves stay, so the tool is idempotent.
fn splice(text: &str) -> Result<String, String> {
    let begin = text
        .find(BEGIN)
        .ok_or_else(|| format!("missing `{BEGIN}` marker"))?;
    let end = text
        .find(END)
        .ok_or_else(|| format!("missing `{END}` marker"))?;
    if end < begin {
        return Err("spec-doc markers are out of order".to_string());
    }
    let head = &text[..begin + BEGIN.len()];
    let tail = &text[end..];
    Ok(format!(
        "{head}\n{}{tail}",
        rlb_net::spec::render_spec_reference()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_is_idempotent_and_preserves_surroundings() {
        let doc = format!("before\n\n{BEGIN}\nstale text\n{END}\n\nafter\n");
        let once = splice(&doc).expect("splice");
        assert!(once.starts_with("before\n\n<!-- spec-doc:begin -->\n"));
        assert!(once.ends_with("<!-- spec-doc:end -->\n\nafter\n"));
        assert!(!once.contains("stale text"));
        assert!(once.contains("### `[scenario]`"));
        assert_eq!(splice(&once).expect("splice twice"), once);
    }

    #[test]
    fn missing_markers_are_reported() {
        assert!(splice("no markers here").is_err());
        let reversed = format!("{END} {BEGIN}");
        assert!(splice(&reversed).unwrap_err().contains("out of order"));
    }
}
