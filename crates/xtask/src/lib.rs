//! Library surface of the xtask crate: the lint framework.
//!
//! Exposed as a lib (next to the `cargo xtask` binary) so the integration
//! tests — notably `tests/differential.rs`, which proves the lexer-backed
//! engine against the legacy line scanner over the whole workspace — can
//! drive the same code the binary runs.

pub mod lint;
pub mod specdoc;
