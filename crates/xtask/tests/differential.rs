//! Differential proof: the lexer-backed engine reproduces the legacy line
//! scanner's findings.
//!
//! The rewrite (PR 5) replaced a per-line substring scanner with a real
//! lexer + rule engine. These tests pin the contract that made the swap
//! safe:
//!
//! 1. over the *whole workspace*, both engines report the same
//!    `(file, line, rule)` triples for the six legacy rules, modulo an
//!    explicit `KNOWN_DIFFS` list (empty today — the tree contains none of
//!    the constructs the legacy masker gets wrong);
//! 2. on synthetic sources exercising every legacy rule, the engines agree
//!    exactly;
//! 3. on the three known legacy masker bugs (pinned as bugs in
//!    `legacy::tests::legacy_known_bugs_are_still_present`), the new
//!    engine gets the *correct* answer where legacy does not.
//!
//! Comparison granularity is the (file, line, rule) *set*: the new engine
//! is span-accurate and reports each offending token, so two `HashSet`
//! mentions on one line yield two findings where legacy yields one. That
//! is a deliberate improvement, not a regression, so multiplicity is
//! ignored.

use std::collections::BTreeSet;
use std::path::PathBuf;

use xtask::lint::{self, legacy, FileClass};

/// Legacy-rule names the differential covers; the new-engine rule families
/// (`float-accum`, `unstable-sort`, `time-arith`, `hot-alloc`) have no
/// legacy counterpart and are excluded.
const LEGACY_RULES: [&str; 6] = [
    "hash-container",
    "wall-clock",
    "unseeded-rng",
    "lib-unwrap",
    "hot-clone",
    "hot-btreemap",
];

/// Triples where the engines are *allowed* to disagree over the current
/// tree, each attributable to a pinned legacy bug. Empty today: keep it
/// that way by writing multi-line comments / raw strings that don't
/// mention rule patterns, or add an entry here with a justification.
const KNOWN_DIFFS: [(&str, u32, &str); 0] = [];

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// `(file, line, rule)` — the granularity both engines are compared at.
type Triples = BTreeSet<(String, u32, String)>;

fn legacy_triples(findings: &[legacy::LegacyFinding]) -> Triples {
    findings
        .iter()
        .map(|f| (f.file.clone(), f.line as u32, f.rule.name().to_string()))
        .collect()
}

fn engine_triples(findings: &[lint::diag::Finding]) -> Triples {
    findings
        .iter()
        .filter(|f| LEGACY_RULES.contains(&f.rule.name))
        .map(|f| (f.file.clone(), f.line, f.rule.name.to_string()))
        .collect()
}

#[test]
fn engines_agree_over_the_whole_workspace() {
    let root = workspace_root();
    let old = legacy_triples(&legacy::scan_workspace(&root));
    let (files, findings) = lint::scan_workspace(&root);
    let new = engine_triples(&findings);
    assert!(files > 50, "workspace walk looks broken: only {files} files");

    let known: Triples = KNOWN_DIFFS
        .iter()
        .map(|(f, l, r)| (f.to_string(), *l, r.to_string()))
        .collect();

    let only_old: Vec<_> = old.difference(&new).filter(|t| !known.contains(t)).collect();
    let only_new: Vec<_> = new.difference(&old).filter(|t| !known.contains(t)).collect();
    assert!(
        only_old.is_empty() && only_new.is_empty(),
        "engines disagree beyond KNOWN_DIFFS.\nlegacy-only: {only_old:#?}\nengine-only: {only_new:#?}"
    );

    // The exception list must stay honest: every entry must be a live
    // disagreement, or it is stale and has to be removed.
    for t in &known {
        assert!(
            old.contains(t) != new.contains(t),
            "stale KNOWN_DIFFS entry (engines now agree here): {t:?}"
        );
    }
}

/// Both engines, one synthetic file.
fn both(file: &str, src: &str, class: FileClass) -> (Triples, Triples) {
    let old = legacy_triples(&legacy::scan(file, src, class));
    let new = engine_triples(&lint::lint_source(file, src, class));
    (old, new)
}

#[test]
fn engines_agree_on_every_legacy_rule() {
    // One trigger per legacy rule, in legacy-friendly (single-line,
    // comment-free) form so both engines see the same thing.
    let core = "\
use std::collections::HashMap;
fn f(x: Option<u32>) -> u32 {
    let t = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    let s: HashSet<u8> = HashSet::new();
    x.unwrap()
}
";
    let (old, new) = both("crates/engine/src/f.rs", core, FileClass::CoreLib);
    assert_eq!(old, new);
    let rules: BTreeSet<&str> = new.iter().map(|(_, _, r)| r.as_str()).collect();
    assert_eq!(
        rules,
        BTreeSet::from(["hash-container", "wall-clock", "unseeded-rng", "lib-unwrap"])
    );

    // Path-scoped rules: hot-clone only in net/src/sim.rs, hot-btreemap
    // only under lb/ and core/.
    let sim = "fn route(&mut self) { self.q.push(pkt.clone()); }\n";
    let (old, new) = both("crates/net/src/sim.rs", sim, FileClass::CoreLib);
    assert_eq!(old, new);
    assert!(new.iter().any(|(_, _, r)| r == "hot-clone"));

    let lb = "pub struct Flowlets { table: BTreeMap<u64, Entry> }\n";
    let (old, new) = both("crates/lb/src/letflow.rs", lb, FileClass::CoreLib);
    assert_eq!(old, new);
    assert!(new.iter().any(|(_, _, r)| r == "hot-btreemap"));

    // ...and both agree the same source is clean outside those paths.
    let (old, new) = both("crates/transport/src/rx.rs", sim, FileClass::CoreLib);
    assert_eq!(old, new);
    assert!(new.is_empty());
}

#[test]
fn engines_agree_on_gating_and_allows() {
    // cfg(test) gates warnings for both; error-severity rules still fire.
    let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let w = std::time::Instant::now(); }
}
";
    let (old, new) = both("crates/engine/src/g.rs", src, FileClass::CoreLib);
    assert_eq!(old, new);
    let rules: BTreeSet<&str> = new.iter().map(|(_, _, r)| r.as_str()).collect();
    assert_eq!(rules, BTreeSet::from(["wall-clock"]));

    // Same-line and previous-comment-line allows suppress in both.
    let allowed = "let t = Instant::now(); // lint:allow(wall-clock) CLI timing\n";
    let (old, new) = both("src/main.rs", allowed, FileClass::Sim);
    assert_eq!(old, new);
    assert!(new.is_empty());

    // Test files: warnings off, errors on — for both.
    let test_file = "fn t() { let m: HashMap<u8, u8> = HashMap::new(); let w = Instant::now(); }\n";
    let (old, new) = both("tests/props.rs", test_file, FileClass::Test);
    assert_eq!(old, new);
    let rules: BTreeSet<&str> = new.iter().map(|(_, _, r)| r.as_str()).collect();
    assert_eq!(rules, BTreeSet::from(["wall-clock"]));
}

/// The three masker bugs: legacy wrong, rewrite right. Mirrors
/// `legacy::tests::legacy_known_bugs_are_still_present`, which pins the
/// *buggy* side so this pair of tests can't drift apart silently.
#[test]
fn rewrite_fixes_the_masker_bugs() {
    // Bug 1: a `"` inside a block comment masks the closing `*/` for
    // legacy (false negative). The lexer strips comments before anything
    // else, so the engine sees the HashMap.
    let src = "/* has a \" quote */ let m: HashMap<u8, u8> = HashMap::new();\n";
    assert!(legacy::scan("t.rs", src, FileClass::Sim).is_empty());
    let found = lint::lint_source("t.rs", src, FileClass::Sim);
    assert!(found.iter().any(|f| f.rule.name == "hash-container"));

    // Bug 2: legacy mis-terminates `r#"…"#` at the first interior `"`
    // and flags the quoted word (false positive). The lexer knows raw
    // strings.
    let raw = "let s = r#\"say \"HashMap\" here\"#;\n";
    assert!(!legacy::scan("t.rs", raw, FileClass::Sim).is_empty());
    assert!(lint::lint_source("t.rs", raw, FileClass::Sim).is_empty());

    // Bug 3: an attribute line between the allow marker and the code eats
    // the suppression for legacy (false positive). The scope walker looks
    // through attribute and comment lines.
    let attr = "\
// lint:allow(hash-container)
#[derive(Debug)]
struct S { m: HashMap<u8, u8> }
";
    assert!(!legacy::scan("t.rs", attr, FileClass::Sim).is_empty());
    assert!(lint::lint_source("t.rs", attr, FileClass::Sim).is_empty());
}
