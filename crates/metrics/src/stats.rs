//! Scalar statistics: online moments and exact percentiles.

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile over a collected sample, by sorting a copy.
///
/// `q` is in `[0, 1]`; uses the nearest-rank method (the convention in the
/// datacenter-networking literature for "99th percentile FCT").
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, q)
}

/// Nearest-rank percentile of an already-sorted slice.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if q <= 0.0 {
        return sorted[0];
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Compensated (Kahan-Babuska/Neumaier) summation in slice order.
///
/// The error of a naive left-to-right `sum::<f64>()` grows with the number
/// of samples and depends on the order they arrive in — which is exactly
/// what parallel sweeps perturb. Kahan summation carries the rounding
/// residual in a second accumulator, making the result deterministic for a
/// given slice order and accurate to within a couple of ulps regardless of
/// length. All aggregate reporting should funnel through this (the
/// `float-accum` lint in `cargo xtask lint` points here).
pub fn kahan_sum(samples: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for &x in samples {
        let t = sum + x;
        comp += if sum.abs() >= x.abs() { (sum - t) + x } else { (x - t) + sum };
        sum = t;
    }
    sum + comp
}

/// Convenience: mean of a slice (NaN when empty). Compensated summation.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    kahan_sum(samples) / samples.len() as f64
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 3.875).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        let naive_var =
            xs.iter().map(|x| (x - 3.875f64).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.variance() - naive_var).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(percentile(&[], 0.5).is_nan());
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 101) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 1.0), 5.0);
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 0.34), 3.0);
    }

    #[test]
    fn percentile_tolerates_nan_samples() {
        // total_cmp sorts NaN to the top instead of panicking; real samples
        // still land at the right ranks.
        let xs = [2.0, f64::NAN, 1.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert!(percentile(&xs, 1.0).is_nan());
    }

    #[test]
    fn kahan_sum_recovers_cancellation() {
        // Naive left-to-right summation loses the 1.0 entirely:
        // 1e16 + 1.0 == 1e16 in f64. The compensated sum keeps it.
        let xs = [1e16, 1.0, -1e16];
        assert_eq!(xs.iter().sum::<f64>(), 0.0); // lint:allow(float-accum)
        assert_eq!(kahan_sum(&xs), 1.0);
    }

    #[test]
    fn kahan_sum_matches_naive_on_benign_input() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 7) as f64 * 0.125).collect();
        let naive: f64 = xs.iter().sum(); // lint:allow(float-accum)
        assert_eq!(kahan_sum(&xs), naive);
        assert_eq!(kahan_sum(&[]), 0.0);
    }
}
