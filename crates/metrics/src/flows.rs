//! Per-flow records and the flow-completion-time summaries the paper plots.

use crate::stats::{mean, percentile};
use serde::Serialize;

/// Everything measured about one flow over its lifetime.
#[derive(Debug, Clone, Serialize)]
pub struct FlowRecord {
    pub flow_id: u64,
    pub src_host: u32,
    pub dst_host: u32,
    /// Application bytes requested.
    pub size_bytes: u64,
    /// Data packets making up the flow.
    pub total_packets: u32,
    pub start_ps: u64,
    /// Completion time (last byte ACKed at the sender); `None` if the flow
    /// was still running when the simulation horizon ended.
    pub finish_ps: Option<u64>,
    /// Packets that arrived with a sequence number above the receiver's
    /// expectation (each is discarded by the go-back-N NIC).
    pub ooo_packets: u64,
    /// Sum over OOO arrivals of (got_seq - expected_seq); `max_ood` is the
    /// per-flow max — the paper's "out-of-order degree".
    pub max_ood: u64,
    /// Data packets the sender transmitted, including go-back-N rewinds.
    pub packets_sent: u64,
    /// NAKs received by the sender (each triggers a rewind).
    pub naks: u64,
    /// Times this flow's packets were recirculated by RLB.
    pub recirculations: u64,
}

impl FlowRecord {
    pub fn fct_ps(&self) -> Option<u64> {
        self.finish_ps.map(|f| f - self.start_ps)
    }
    pub fn fct_ms(&self) -> Option<f64> {
        self.fct_ps().map(|p| p as f64 / 1e9)
    }
    pub fn completed(&self) -> bool {
        self.finish_ps.is_some()
    }
    pub fn retransmitted_packets(&self) -> u64 {
        self.packets_sent.saturating_sub(self.total_packets as u64)
    }

    /// FCT slowdown: measured FCT over the ideal FCT of this flow on an
    /// idle fabric (`size/line_rate + base RTT`, with `wire_overhead` the
    /// header inflation factor, e.g. 1.048 for 48 B headers on 1000 B
    /// payloads). 1.0 = ideal; `None` if the flow never finished.
    pub fn slowdown(&self, line_rate_bps: f64, base_rtt_ps: u64, wire_overhead: f64) -> Option<f64> {
        let fct = self.fct_ps()? as f64;
        let ideal = (self.size_bytes as f64 * wire_overhead * 8.0 / line_rate_bps) * 1e12
            + base_rtt_ps as f64;
        Some(fct / ideal)
    }
}

/// Mean and tail FCT slowdown over the completed flows.
pub fn slowdown_summary(
    records: &[FlowRecord],
    line_rate_bps: f64,
    base_rtt_ps: u64,
    wire_overhead: f64,
) -> (f64, f64) {
    let s: Vec<f64> = records
        .iter()
        .filter_map(|r| r.slowdown(line_rate_bps, base_rtt_ps, wire_overhead))
        .collect();
    (mean(&s), percentile(&s, 0.99))
}

/// Aggregate FCT statistics over a set of completed flows.
#[derive(Debug, Clone, Serialize)]
pub struct FctSummary {
    pub flows_total: usize,
    pub flows_completed: usize,
    pub avg_fct_ms: f64,
    pub p50_fct_ms: f64,
    pub p95_fct_ms: f64,
    pub p99_fct_ms: f64,
    pub max_fct_ms: f64,
    /// Fraction of delivered-attempt packets that arrived out of order.
    pub ooo_ratio: f64,
    /// 99th-percentile of per-flow max out-of-order degree (packets).
    pub p99_ood: f64,
    pub total_ooo_packets: u64,
    pub total_packets_sent: u64,
    pub total_naks: u64,
    pub total_recirculations: u64,
}

impl FctSummary {
    pub fn from_records(records: &[FlowRecord]) -> FctSummary {
        let fcts: Vec<f64> = records.iter().filter_map(|r| r.fct_ms()).collect();
        let oods: Vec<f64> = records
            .iter()
            .filter(|r| r.packets_sent > 0)
            .map(|r| r.max_ood as f64)
            .collect();
        let sent: u64 = records.iter().map(|r| r.packets_sent).sum();
        let ooo: u64 = records.iter().map(|r| r.ooo_packets).sum();
        FctSummary {
            flows_total: records.len(),
            flows_completed: fcts.len(),
            avg_fct_ms: mean(&fcts),
            p50_fct_ms: percentile(&fcts, 0.50),
            p95_fct_ms: percentile(&fcts, 0.95),
            p99_fct_ms: percentile(&fcts, 0.99),
            max_fct_ms: fcts.iter().cloned().fold(f64::NAN, f64::max),
            ooo_ratio: if sent == 0 { 0.0 } else { ooo as f64 / sent as f64 },
            p99_ood: percentile(&oods, 0.99),
            total_ooo_packets: ooo,
            total_packets_sent: sent,
            total_naks: records.iter().map(|r| r.naks).sum(),
            total_recirculations: records.iter().map(|r| r.recirculations).sum(),
        }
    }

    /// Summary restricted to flows smaller than `cutoff` bytes ("small
    /// flows" in FCT breakdowns).
    pub fn for_sizes(records: &[FlowRecord], min: u64, max: u64) -> FctSummary {
        let subset: Vec<FlowRecord> = records
            .iter()
            .filter(|r| r.size_bytes >= min && r.size_bytes < max)
            .cloned()
            .collect();
        FctSummary::from_records(&subset)
    }
}

/// Empirical CDF over FCTs (for Fig. 6-style plots): returns (x_ms, F(x))
/// at every completed-flow sample point.
pub fn fct_cdf(records: &[FlowRecord]) -> Vec<(f64, f64)> {
    let mut fcts: Vec<f64> = records.iter().filter_map(|r| r.fct_ms()).collect();
    fcts.sort_by(f64::total_cmp);
    let n = fcts.len() as f64;
    fcts.iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Downsample a CDF to `points` evenly spaced quantiles for compact output.
pub fn downsample_cdf(cdf: &[(f64, f64)], points: usize) -> Vec<(f64, f64)> {
    if cdf.is_empty() || points == 0 {
        return Vec::new();
    }
    (1..=points)
        .map(|i| {
            let q = i as f64 / points as f64;
            let idx = ((q * cdf.len() as f64).ceil() as usize).clamp(1, cdf.len()) - 1;
            cdf[idx]
        })
        .collect()
}

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn rec(id: u64, size: u64, fct_us: Option<u64>, ooo: u64, ood: u64) -> FlowRecord {
        FlowRecord {
            flow_id: id,
            src_host: 0,
            dst_host: 1,
            size_bytes: size,
            total_packets: (size / 1000).max(1) as u32,
            start_ps: 1_000_000,
            finish_ps: fct_us.map(|us| 1_000_000 + us * 1_000_000),
            ooo_packets: ooo,
            max_ood: ood,
            packets_sent: (size / 1000).max(1) + ooo,
            naks: ooo.min(3),
            recirculations: 0,
        }
    }

    #[test]
    fn fct_math() {
        let r = rec(1, 10_000, Some(500), 0, 0);
        assert_eq!(r.fct_ps(), Some(500_000_000));
        assert!((r.fct_ms().unwrap() - 0.5).abs() < 1e-12);
        assert!(r.completed());
        assert!(!rec(2, 10_000, None, 0, 0).completed());
    }

    #[test]
    fn summary_counts_completion_and_ooo() {
        let records = vec![
            rec(1, 10_000, Some(100), 2, 5),
            rec(2, 10_000, Some(300), 0, 0),
            rec(3, 10_000, None, 1, 9),
        ];
        let s = FctSummary::from_records(&records);
        assert_eq!(s.flows_total, 3);
        assert_eq!(s.flows_completed, 2);
        assert!((s.avg_fct_ms - 0.2).abs() < 1e-12);
        assert_eq!(s.total_ooo_packets, 3);
        assert!(s.ooo_ratio > 0.0 && s.ooo_ratio < 1.0);
        assert_eq!(s.p99_ood, 9.0);
    }

    #[test]
    fn size_filtered_summary() {
        let records = vec![rec(1, 5_000, Some(10), 0, 0), rec(2, 50_000, Some(90), 0, 0)];
        let small = FctSummary::for_sizes(&records, 0, 10_000);
        assert_eq!(small.flows_total, 1);
        assert!((small.avg_fct_ms - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let records: Vec<FlowRecord> =
            (0..50).map(|i| rec(i, 1000, Some(1 + (i * 13) % 97), 0, 0)).collect();
        let cdf = fct_cdf(&records);
        assert_eq!(cdf.len(), 50);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        let ds = downsample_cdf(&cdf, 10);
        assert_eq!(ds.len(), 10);
        assert!((ds.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_handles_degenerate_inputs() {
        assert!(downsample_cdf(&[], 10).is_empty());
        let cdf = vec![(1.0, 0.5), (2.0, 1.0)];
        assert!(downsample_cdf(&cdf, 0).is_empty());
        // More points than samples: still ends at (2.0, 1.0), never panics.
        let ds = downsample_cdf(&cdf, 10);
        assert_eq!(ds.len(), 10);
        assert_eq!(*ds.last().unwrap(), (2.0, 1.0));
        assert_eq!(ds[0], (1.0, 0.5));
    }

    #[test]
    fn slowdown_math() {
        // 1 MB at 40G with 4.8% overhead = 209.6 µs + 20 µs RTT = 229.6 µs
        // ideal. A measured FCT of 459.2 µs is a slowdown of 2.0.
        let mut r = rec(1, 1_000_000, None, 0, 0);
        assert_eq!(r.slowdown(40e9, 20_000_000, 1.048), None);
        r.finish_ps = Some(r.start_ps + 459_200_000);
        let sd = r.slowdown(40e9, 20_000_000, 1.048).unwrap();
        assert!((sd - 2.0).abs() < 1e-9, "slowdown {sd}");
        let (avg, p99) = slowdown_summary(&[r], 40e9, 20_000_000, 1.048);
        assert!((avg - 2.0).abs() < 1e-9);
        assert!((p99 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_records() {
        let s = FctSummary::from_records(&[]);
        assert_eq!(s.flows_total, 0);
        assert_eq!(s.flows_completed, 0);
        assert!(s.avg_fct_ms.is_nan());
        assert_eq!(s.ooo_ratio, 0.0);
        assert_eq!(s.total_packets_sent, 0);
    }

    #[test]
    fn retransmissions_derived_from_sent() {
        let r = rec(1, 10_000, Some(10), 4, 2);
        assert_eq!(r.retransmitted_packets(), 4);
    }
}
