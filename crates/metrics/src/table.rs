//! Minimal aligned-column ASCII tables for the experiment harness output.
//!
//! The `figN` binaries print the same rows/series the paper's figures plot;
//! this keeps that output human-diffable without pulling in a TUI crate.

/// Column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-+%eEx".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format milliseconds with 3 decimals, rendering NaN as "-".
pub fn ms(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Format a ratio as a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{:.2}%", v * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["scheme", "afct_ms", "p99_ms"]);
        t.row(vec!["Presto", "1.234", "9.876"]);
        t.row(vec!["Presto+RLB", "0.9", "4.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[2].starts_with("Presto "));
        // all rows are the same width
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1.23456), "1.235");
        assert_eq!(ms(f64::NAN), "-");
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(pct(f64::NAN), "-");
    }
}
