//! # rlb-metrics — measurement and reporting
//!
//! Everything the paper's evaluation section measures, as reusable types:
//!
//! * [`FlowRecord`] / [`FctSummary`] — per-flow FCT, out-of-order packets,
//!   out-of-order degree (OOD), retransmissions; aggregate means and tail
//!   percentiles.
//! * [`FabricCounters`] — PFC pause/resume activity, CNM warnings,
//!   recirculation and reroute counts, buffer drops.
//! * [`OnlineStats`], [`percentile`], [`LogHistogram`] — scalar statistics.
//! * [`Table`] — aligned ASCII output for the `figN` experiment harnesses.

pub mod counters;
pub mod flows;
pub mod histogram;
pub mod stats;
pub mod table;

pub use counters::FabricCounters;
pub use flows::{downsample_cdf, fct_cdf, slowdown_summary, FctSummary, FlowRecord};
pub use histogram::LogHistogram;
pub use stats::{kahan_sum, mean, percentile, percentile_of_sorted, OnlineStats};
pub use table::{ms, pct, Table};

#[cfg(test)]
// Tests assert exact values that are exactly representable in binary floating
// point; the workspace-level float_cmp deny targets simulator arithmetic.
#[allow(clippy::float_cmp)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Nearest-rank percentile always returns an element of the sample,
        /// and is monotone in q.
        #[test]
        fn percentile_properties(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let p_lo = percentile(&xs, lo);
            let p_hi = percentile(&xs, hi);
            prop_assert!(xs.contains(&p_lo));
            prop_assert!(xs.contains(&p_hi));
            prop_assert!(p_lo <= p_hi);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(percentile_of_sorted(&xs, 1.0), *xs.last().unwrap());
        }

        /// Online mean matches the naive mean to floating-point tolerance.
        #[test]
        fn online_mean_matches_naive(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() <= 1e-6 * (1.0 + naive.abs()));
            prop_assert_eq!(s.count() as usize, xs.len());
        }

        /// Histogram quantile upper bound dominates the true quantile and
        /// count/max/mean stay exact.
        #[test]
        fn log_histogram_bounds(vals in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            let mut h = LogHistogram::new();
            for &v in &vals { h.record(v); }
            prop_assert_eq!(h.count() as usize, vals.len());
            prop_assert_eq!(h.max(), *vals.iter().max().unwrap());
            let mut sorted = vals.clone();
            sorted.sort();
            for &q in &[0.5, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                prop_assert!(h.quantile_upper_bound(q) >= sorted[rank - 1]);
            }
        }

        /// Merging OnlineStats in any split equals pushing the whole slice.
        #[test]
        fn merge_any_split(xs in proptest::collection::vec(-1e6f64..1e6, 2..100), split in 1usize..99) {
            let k = split.min(xs.len() - 1);
            let mut whole = OnlineStats::new();
            for &x in &xs { whole.push(x); }
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for &x in &xs[..k] { a.push(x); }
            for &x in &xs[k..] { b.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        }
    }
}
