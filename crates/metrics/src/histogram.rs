//! Fixed-bucket and log-bucket histograms for high-volume counters (OOD,
//! queue lengths) where keeping every sample would be wasteful.

use serde::Serialize;

/// Power-of-two log-bucketed histogram of `u64` values.
///
/// Bucket `i` holds values in `[2^(i-1), 2^i)`, bucket 0 holds the value 0
/// and 1 (i.e. values < 2). Gives exact counts with ~64 buckets and supports
/// approximate quantiles (upper bound of the containing bucket), which is
/// plenty for the out-of-order-degree distributions in Fig. 3b.
#[derive(Debug, Clone, Serialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (nearest-rank). Exact for values that land on bucket edges; otherwise
    /// an overestimate by at most 2x — fine for log-scale plots.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i }.min(self.max.max(1));
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_bound_covers_true_quantile() {
        let mut h = LogHistogram::new();
        let vals: Vec<u64> = (0..1000).map(|i| i * 7 % 513).collect();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let bound = h.quantile_upper_bound(q);
            assert!(bound >= truth, "q={q}: bound {bound} < truth {truth}");
            assert!(bound <= truth.max(1) * 2, "q={q}: bound {bound} too loose for {truth}");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(LogHistogram::new().quantile_upper_bound(0.99), 0);
    }
}
