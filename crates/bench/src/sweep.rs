//! Parallel parameter sweeps.
//!
//! Each simulation run is single-threaded and deterministic; sweeps over
//! loads / degrees / schemes are embarrassingly parallel, so we fan the
//! points out over crossbeam scoped threads (a shared work queue, capped
//! at the CPU count or an explicit thread budget).
//!
//! Worker panics are caught per job: a panicking point is reported with
//! its index and label (not a bare poisoned-mutex panic from an unrelated
//! thread), and every point that did complete is still returned, in input
//! order, so a 96-point sweep doesn't discard 95 finished simulations
//! because one configuration hit a bug.

use crossbeam::thread;
use std::panic::AssertUnwindSafe;

/// One failed sweep point.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Index into the input vector.
    pub index: usize,
    /// Human-readable job label (from the caller's label function).
    pub label: String,
    /// The panic payload, stringified.
    pub panic: String,
}

/// Outcome of a sweep in which at least one job panicked. `completed`
/// has the same length and order as the inputs; failed slots are `None`.
#[derive(Debug)]
pub struct SweepError<O> {
    pub failures: Vec<JobFailure>,
    pub completed: Vec<Option<O>>,
}

impl<O> std::fmt::Display for SweepError<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.completed.iter().filter(|o| o.is_some()).count();
        writeln!(
            f,
            "{} of {} sweep job(s) panicked ({} completed):",
            self.failures.len(),
            self.completed.len(),
            done
        )?;
        for fail in &self.failures {
            writeln!(f, "  job {} ({}): {}", fail.index, fail.label, fail.panic)?;
        }
        Ok(())
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` over every item of `inputs` in parallel, preserving order, with
/// per-job panic isolation.
///
/// * `threads` — worker cap; `None` uses the available parallelism.
/// * `label` — names job `i` for diagnostics (called before `f` runs).
///
/// On success returns the outputs in input order. If any job panicked,
/// returns a [`SweepError`] carrying each failure's index, label, and
/// panic message plus all completed results.
pub fn try_parallel_map<I, O, F, L>(
    inputs: Vec<I>,
    threads: Option<usize>,
    label: L,
    f: F,
) -> Result<Vec<O>, SweepError<O>>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
    L: Fn(usize, &I) -> String + Sync,
{
    let max_threads = threads
        .filter(|&t| t > 0)
        .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
        .unwrap_or(4);
    let n = inputs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let work: std::sync::Mutex<Vec<(usize, I)>> =
        std::sync::Mutex::new(inputs.into_iter().enumerate().rev().collect());
    let slots: Vec<std::sync::Mutex<&mut Option<O>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    let failures: std::sync::Mutex<Vec<JobFailure>> = std::sync::Mutex::new(Vec::new());
    thread::scope(|s| {
        for _ in 0..max_threads.min(n) {
            s.spawn(|_| loop {
                // These locks only guard push/pop — no user code runs while
                // they are held, and job panics are caught below, so the
                // mutexes cannot be poisoned.
                let item = work.lock().expect("work queue lock").pop();
                match item {
                    Some((i, input)) => {
                        let job_label = label(i, &input);
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(input))) {
                            Ok(out) => {
                                **slots[i].lock().expect("slot lock") = Some(out);
                            }
                            Err(payload) => {
                                failures.lock().expect("failure lock").push(JobFailure {
                                    index: i,
                                    label: job_label,
                                    panic: panic_message(payload),
                                });
                            }
                        }
                    }
                    None => break,
                }
            });
        }
    })
    .expect("sweep workers never propagate panics");
    drop(slots);
    let mut failures = failures.into_inner().expect("failure lock");
    if failures.is_empty() {
        Ok(results
            .into_iter()
            .map(|o| o.expect("every non-failed slot is filled"))
            .collect())
    } else {
        failures.sort_by_key(|f| f.index);
        Err(SweepError {
            failures,
            completed: results,
        })
    }
}

/// Run `f` over every item of `inputs` in parallel, preserving order.
///
/// Panics if any job panicked, naming each failing job's index — callers
/// with richer labels or a need to salvage partial results should use
/// [`try_parallel_map`].
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    match try_parallel_map(inputs, None, |i, _| format!("#{i}"), f) {
        Ok(out) => out,
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u64| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "sweep job(s) panicked")]
    fn worker_panic_propagates() {
        parallel_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn failure_carries_label_index_and_completed_results() {
        let err = try_parallel_map(
            vec![10, 20, 30, 40],
            Some(2),
            |i, x| format!("point{i}={x}"),
            |x: i32| {
                if x == 30 {
                    panic!("bad config {x}");
                }
                x * 2
            },
        )
        .expect_err("job 2 must fail");
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].index, 2);
        assert_eq!(err.failures[0].label, "point2=30");
        assert!(err.failures[0].panic.contains("bad config 30"));
        // Remaining results are intact and in input order.
        assert_eq!(
            err.completed,
            vec![Some(20), Some(40), None, Some(80)]
        );
        let msg = err.to_string();
        assert!(msg.contains("job 2 (point2=30)"), "{msg}");
    }

    #[test]
    fn multiple_failures_sorted_by_index() {
        let err = try_parallel_map(
            (0..8).collect(),
            Some(3),
            |i, _| format!("j{i}"),
            |x: i32| {
                if x % 2 == 1 {
                    panic!("odd {x}");
                }
                x
            },
        )
        .expect_err("odd jobs fail");
        let idx: Vec<usize> = err.failures.iter().map(|f| f.index).collect();
        assert_eq!(idx, vec![1, 3, 5, 7]);
        assert_eq!(err.completed[0], Some(0));
        assert_eq!(err.completed[1], None);
    }

    #[test]
    fn explicit_thread_cap_still_completes_everything() {
        let out = try_parallel_map((0..40).collect(), Some(1), |i, _| format!("{i}"), |x: i32| x + 1)
            .expect("no failures");
        assert_eq!(out, (1..41).collect::<Vec<_>>());
    }
}
