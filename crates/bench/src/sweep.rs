//! Parallel parameter sweeps.
//!
//! Each simulation run is single-threaded and deterministic; sweeps over
//! loads / degrees / schemes are embarrassingly parallel, so we fan the
//! points out over crossbeam scoped threads (one per point, capped at the
//! CPU count).

use crossbeam::thread;

/// Run `f` over every item of `inputs` in parallel, preserving order.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let work: std::sync::Mutex<Vec<(usize, I)>> =
        std::sync::Mutex::new(inputs.into_iter().enumerate().rev().collect());
    let slots: Vec<std::sync::Mutex<&mut Option<O>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    thread::scope(|s| {
        for _ in 0..max_threads.min(n) {
            s.spawn(|_| loop {
                let item = work.lock().unwrap().pop();
                match item {
                    Some((i, input)) => {
                        let out = f(input);
                        **slots[i].lock().unwrap() = Some(out);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("sweep worker panicked");
    drop(slots);
    results.into_iter().map(|o| o.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u64| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        parallel_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
