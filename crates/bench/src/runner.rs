//! The parallel, cached experiment runner.
//!
//! Every experiment point — (figure, scheme-variant, sweep point, seed) —
//! is a [`Job`]: a stable content hash over the job's fully serialized
//! configuration plus a closure that executes the simulation and reduces
//! it to a JSON metrics object. A [`run_jobs`] call executes a job set in
//! parallel over [`crate::sweep::try_parallel_map`], consulting a
//! content-addressed on-disk cache (`target/bench-cache/<hash>.json` by
//! default) so warm re-runs skip every completed point, and emits live
//! progress lines (`[12/96] fig4 DRILL x=15 seed=1 ... 412ms`).
//!
//! ## Cache key scheme
//!
//! The key is FNV-1a 64 over
//! `v<CACHE_SCHEMA_VERSION>|<fig>|<label>|seed=<seed>|<spec>`, where
//! `spec` is the canonical serialization (the `Debug` rendering — field
//! names and values — of every config struct feeding the run: topology,
//! scenario, scheme, RLB parameters). Any field change therefore produces
//! a new key; renaming/adding config fields invalidates naturally.
//! `CACHE_SCHEMA_VERSION` is bumped when the *metrics* layout changes, so
//! stale entries are never misread. Each cache file stores the full spec
//! and is verified on read — a 64-bit collision degrades to a cache miss,
//! never to wrong data.
//!
//! Invalidation: delete the cache directory (`rm -rf target/bench-cache`)
//! or run with `--no-cache`. Simulator code changes do NOT automatically
//! invalidate entries (the key covers configuration, not binaries); wipe
//! the directory after changing simulation logic.

use crate::json::{self, Json};
use crate::sweep;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Bumped whenever the job metrics layout or key derivation changes;
/// reports embed it as `schema_version` and cache entries refuse to load
/// across versions. v2: metrics gained the per-job `perf` block
/// (events_processed / wall_ms / events_per_sec). v3: the perf block
/// gained the decision / snapshot-cache counters (decisions,
/// snapshot_reuses, snapshot_refreshes, snapshot_rebuilds). v4: the
/// counters block gained faults_applied (fault-injection timelines).
/// v5: the perf block gained the dirty-spine refresh split
/// (snapshot_dirty_queue_spines, snapshot_dirty_sig_spines) and the
/// packet-arena occupancy stats (arena_high_water, arena_capacity).
/// v6: the perf block gained the sharded-driver counters (shards,
/// window_advances, cross_shard_messages, barrier_stalls,
/// aggregate_events_per_sec) and every job spec gained the shards field.
pub const CACHE_SCHEMA_VERSION: u32 = 6;

/// FNV-1a 64-bit — small, dependency-free, stable across platforms.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One experiment point, self-describing and executable.
pub struct Job {
    /// Owning figure (registry name, e.g. `"fig7"`).
    pub fig: &'static str,
    /// Point label *without* the seed — outcomes with equal labels are
    /// seed-replicates of the same point and get averaged in `reduce`.
    pub label: String,
    /// The seed this replicate runs under.
    pub seed: u64,
    /// Canonical serialized configuration (see module docs). Everything
    /// that influences the simulation result must be captured here.
    pub spec: String,
    /// Executes the simulation and reduces it to a metrics object.
    pub run: Box<dyn Fn() -> Json + Send + Sync>,
}

impl Job {
    /// Stable content-addressed cache key.
    pub fn key(&self) -> u64 {
        fnv1a_64(
            format!(
                "v{}|{}|{}|seed={}|{}",
                CACHE_SCHEMA_VERSION, self.fig, self.label, self.seed, self.spec
            )
            .as_bytes(),
        )
    }

    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.key())
    }
}

/// One completed (or cache-served) job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub fig: &'static str,
    pub label: String,
    pub seed: u64,
    pub key_hex: String,
    /// The job's metrics object (figure-specific fields + the standard
    /// summary blocks from [`crate::figures::common::run_metrics`]).
    pub metrics: Json,
    /// Wall-clock of the simulation itself; 0 for cache hits.
    pub wall_ms: f64,
    pub cached: bool,
}

/// Runner options.
pub struct RunnerConfig {
    /// Worker-thread cap (`--jobs N`); `None` = available parallelism.
    pub threads: Option<usize>,
    /// Cache directory; `None` disables the cache entirely (`--no-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Emit live `[done/total] ...` progress lines on stderr.
    pub progress: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: None,
            cache_dir: Some(default_cache_dir()),
            progress: true,
        }
    }
}

/// `target/bench-cache` next to the workspace's build artifacts.
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target").join("bench-cache")
}

/// Aggregate result of one runner invocation.
pub struct RunSummary {
    /// Outcomes in job order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Jobs that actually executed a simulation.
    pub executed: usize,
    /// End-to-end wall-clock of the whole batch, ms.
    pub total_wall_ms: f64,
}

/// Execute `jobs` in parallel with caching. Any panicking job aborts the
/// batch with an error naming the failing point(s); completed points are
/// still counted in the message.
pub fn run_jobs(jobs: Vec<Job>, cfg: &RunnerConfig) -> Result<RunSummary, String> {
    let total = jobs.len();
    let t0 = Instant::now();
    if let Some(dir) = &cfg.cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
    }
    let done = AtomicUsize::new(0);
    let outcomes = sweep::try_parallel_map(
        jobs,
        cfg.threads,
        |_, job: &Job| format!("{} {} seed={}", job.fig, job.label, job.seed),
        |job: Job| {
            let key_hex = job.key_hex();
            let cache_path = cfg.cache_dir.as_ref().map(|d| d.join(format!("{key_hex}.json")));
            let cached_metrics = cache_path.as_deref().and_then(|p| load_cached(p, &job));
            let (metrics, wall_ms, cached) = match cached_metrics {
                Some(metrics) => (metrics, 0.0, true),
                None => {
                    let t = Instant::now();
                    let metrics = (job.run)();
                    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
                    if let Some(path) = cache_path.as_deref() {
                        store_cached(path, &job, &metrics, wall_ms);
                    }
                    (metrics, wall_ms, false)
                }
            };
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if cfg.progress {
                let status = if cached {
                    "cached".to_string()
                } else {
                    format!("{wall_ms:.0}ms")
                };
                eprintln!(
                    "[{n}/{total}] {} {} seed={} ... {status}",
                    job.fig, job.label, job.seed
                );
            }
            JobOutcome {
                fig: job.fig,
                label: job.label,
                seed: job.seed,
                key_hex,
                metrics,
                wall_ms,
                cached,
            }
        },
    )
    .map_err(|e| e.to_string())?;
    let cache_hits = outcomes.iter().filter(|o| o.cached).count();
    Ok(RunSummary {
        executed: outcomes.len() - cache_hits,
        cache_hits,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        outcomes,
    })
}

/// Read a cache entry; `None` on any mismatch (missing file, parse error,
/// version or spec mismatch) — the caller then recomputes and overwrites.
fn load_cached(path: &Path, job: &Job) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    let entry = json::parse(&text).ok()?;
    if entry.get("cache_version")?.as_u64()? != CACHE_SCHEMA_VERSION as u64 {
        return None;
    }
    // Guard against hash collisions and stale keys: the stored spec must
    // byte-match the job's.
    if entry.get("spec")?.as_str()? != job.spec
        || entry.get("fig")?.as_str()? != job.fig
        || entry.get("label")?.as_str()? != job.label
        || entry.get("seed")?.as_u64()? != job.seed
    {
        return None;
    }
    entry.get("metrics").cloned()
}

/// Write-through via a temp file + rename so concurrent writers of the
/// same key (identical jobs in one batch) can't interleave bytes.
fn store_cached(path: &Path, job: &Job, metrics: &Json, wall_ms: f64) {
    let entry = Json::obj([
        ("cache_version", Json::U64(CACHE_SCHEMA_VERSION as u64)),
        ("fig", Json::Str(job.fig.to_string())),
        ("label", Json::Str(job.label.clone())),
        ("seed", Json::U64(job.seed)),
        ("wall_ms", Json::F64(wall_ms)),
        ("spec", Json::Str(job.spec.clone())),
        ("metrics", metrics.clone()),
    ]);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(entry.pretty().as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        // A failed cache write only costs a future re-run; don't fail the job.
        eprintln!("warning: cache write {} failed: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Group outcomes by point label, preserving first-seen order — the
/// standard reduce step for multi-seed sweeps.
pub fn by_label(outcomes: &[JobOutcome]) -> Vec<(&str, Vec<&JobOutcome>)> {
    let mut groups: Vec<(&str, Vec<&JobOutcome>)> = Vec::new();
    for o in outcomes {
        match groups.iter_mut().find(|(l, _)| *l == o.label) {
            Some((_, v)) => v.push(o),
            None => groups.push((o.label.as_str(), vec![o])),
        }
    }
    groups
}

/// Mean of a numeric metrics field across seed-replicates (NaN-propagating,
/// like the figures' own averaging).
pub fn mean_metric(replicates: &[&JobOutcome], path: &[&str]) -> f64 {
    if replicates.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = replicates
        .iter()
        .map(|o| {
            o.metrics
                .path(path)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("metrics missing `{}`", path.join(".")))
        })
        .sum();
    sum / replicates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(fig: &'static str, label: &str, seed: u64, spec: &str, value: u64) -> Job {
        let spec = spec.to_string();
        Job {
            fig,
            label: label.to_string(),
            seed,
            spec,
            run: Box::new(move || Json::obj([("value", Json::U64(value))])),
        }
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let a = job("fig3", "DRILL pfc=on", 1, "cfg{x:1}", 1);
        let b = job("fig3", "DRILL pfc=on", 1, "cfg{x:1}", 99);
        // Same identity → same key (the closure does not participate).
        assert_eq!(a.key(), b.key());
        // Any identity field change → different key.
        assert_ne!(a.key(), job("fig4", "DRILL pfc=on", 1, "cfg{x:1}", 1).key());
        assert_ne!(a.key(), job("fig3", "DRILL pfc=off", 1, "cfg{x:1}", 1).key());
        assert_ne!(a.key(), job("fig3", "DRILL pfc=on", 2, "cfg{x:1}", 1).key());
        assert_ne!(a.key(), job("fig3", "DRILL pfc=on", 1, "cfg{x:2}", 1).key());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn cache_round_trip_and_spec_guard() {
        let dir = std::env::temp_dir().join(format!("rlb-bench-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let j = job("fig3", "DRILL", 1, "spec-a", 7);
        let path = dir.join(format!("{}.json", j.key_hex()));
        let metrics = (j.run)();
        store_cached(&path, &j, &metrics, 12.5);
        assert_eq!(load_cached(&path, &j), Some(metrics.clone()));
        // Same file, different spec → treated as a miss.
        let j2 = job("fig3", "DRILL", 1, "spec-b", 7);
        assert_eq!(load_cached(&path, &j2), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_caches_between_batches() {
        let dir = std::env::temp_dir().join(format!("rlb-bench-runner-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunnerConfig {
            threads: Some(2),
            cache_dir: Some(dir.clone()),
            progress: false,
        };
        let mk = || vec![job("fig3", "a", 1, "s", 1), job("fig3", "b", 1, "s", 2)];
        let cold = run_jobs(mk(), &cfg).expect("cold run");
        assert_eq!((cold.executed, cold.cache_hits), (2, 0));
        let warm = run_jobs(mk(), &cfg).expect("warm run");
        assert_eq!((warm.executed, warm.cache_hits), (0, 2));
        assert_eq!(warm.outcomes[0].metrics, cold.outcomes[0].metrics);
        assert!(warm.outcomes.iter().all(|o| o.cached));
        // Outcomes stay in job order either way.
        assert_eq!(warm.outcomes[0].label, "a");
        assert_eq!(warm.outcomes[1].label, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_dir_disables_caching() {
        let cfg = RunnerConfig {
            threads: Some(1),
            cache_dir: None,
            progress: false,
        };
        let mk = || vec![job("fig3", "a", 1, "s", 1)];
        let first = run_jobs(mk(), &cfg).expect("run");
        let second = run_jobs(mk(), &cfg).expect("run");
        assert_eq!(first.cache_hits + second.cache_hits, 0);
        assert_eq!(second.executed, 1);
    }

    #[test]
    fn grouping_and_means() {
        let mk = |label: &str, seed, v: f64| JobOutcome {
            fig: "f",
            label: label.to_string(),
            seed,
            key_hex: String::new(),
            metrics: Json::obj([("m", Json::F64(v))]),
            wall_ms: 0.0,
            cached: false,
        };
        let outs = vec![mk("a", 1, 1.0), mk("b", 1, 10.0), mk("a", 2, 3.0)];
        let groups = by_label(&outs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "a");
        assert!((mean_metric(&groups[0].1, &["m"]) - 2.0).abs() < 1e-12);
        assert!((mean_metric(&groups[1].1, &["m"]) - 10.0).abs() < 1e-12);
    }
}
