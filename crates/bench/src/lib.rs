//! # rlb-bench — the experiment harness
//!
//! One module per paper figure. Each `figN` module exposes a `run(scale)`
//! function that regenerates the figure's rows/series and returns them as
//! structured data; the `src/bin/figN.rs` binaries print them as tables.
//! `Scale::Quick` shrinks the fabric and horizons so every figure runs in
//! seconds; `Scale::Paper` uses the paper's topology (minutes per point).

pub mod figures;
pub mod sweep;

pub use figures::*;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down fabric, short horizons — CI-friendly.
    Quick,
    /// The paper's 12×12×24 fabric and larger traffic volumes.
    Paper,
}

impl Scale {
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper-scale") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}
