//! # rlb-bench — the experiment harness
//!
//! Every experiment point is a [`runner::Job`]: one (figure, variant,
//! sweep point, seed) tuple with a stable content hash over its full
//! serialized config. The [`figures::Figure`] trait expands each paper
//! figure into its job set and reduces the finished outcomes back into
//! tables and JSON rows; [`runner::run_jobs`] executes a job set in
//! parallel behind a content-addressed on-disk cache
//! (`target/bench-cache/<hash>.json`) so warm re-runs skip completed
//! points; [`drive::drive`] ties it all together behind the shared
//! [`cli::BenchCli`] flags and writes the schema-versioned
//! `BENCH_<fig>_<scale>.json` report.
//!
//! `Scale::Quick` shrinks the fabric and horizons so every figure runs in
//! seconds; `Scale::Paper` uses the paper's topology (minutes per point).

pub mod cli;
pub mod drive;
pub mod figures;
pub mod json;
pub mod runner;
pub mod sweep;

pub use figures::*;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down fabric, short horizons — CI-friendly.
    Quick,
    /// The paper's 12×12×24 fabric and larger traffic volumes.
    Paper,
}

impl Scale {
    /// Lower-case name used in report files and JSON (`quick` / `paper`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}
