//! Minimal JSON tree: deterministic writer + parser for the runner's
//! result cache and `BENCH_*.json` reports.
//!
//! The vendored `serde` is an API-subset stub whose derives emit no impls
//! (see `vendor/serde`), so the harness carries its own value type. Design
//! constraints, in order:
//!
//! 1. **Byte determinism** — object members keep insertion order (no
//!    hashing anywhere), floats print via Rust's shortest-roundtrip
//!    `Display`, and non-finite floats become `null`. Two runs of the same
//!    experiment must serialize to identical bytes.
//! 2. **Lossless counters** — `u64` is a distinct variant so event counts
//!    above 2^53 never squeeze through an `f64`.
//! 3. **Round-trip** — whatever the writer emits, the parser reads back
//!    (the cache path is write → read → re-embed in a report).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup: `j.path(&["background", "p99_fct_ms"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// Append / replace a member on an object (no-op on other variants).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(m) = self {
            match m.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => m.push((key.to_string(), value)),
            }
        }
    }

    /// Remove a member from an object, returning it. Used by the report
    /// writer to strip wall-clock blocks under `--stable-json`.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        if let Json::Obj(m) = self {
            if let Some(i) = m.iter().position(|(k, _)| k == key) {
                return Some(m.remove(i).1);
            }
        }
        None
    }

    /// Numeric view: `U64` and `F64` coerce, `Null` reads as NaN (the
    /// writer turns NaN into `null`, so this inverts it).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Shorthand for required numeric members in reduce steps; the message
    /// names the key so a schema drift fails loudly, not with a 0.0.
    pub fn num(&self, key: &str) -> f64 {
        self.get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("metrics object missing numeric field `{key}`"))
    }

    pub fn str_of(&self, key: &str) -> &str {
        self.get(key)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("metrics object missing string field `{key}`"))
    }

    // -- writing ----------------------------------------------------------

    /// Pretty-printed (2-space indent), deterministic serialization.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures wrap.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- parsing ---------------------------------------------------------------

/// Parse a JSON document. Errors carry a byte offset for context.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", *other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let integral = !text.contains(['.', 'e', 'E']) && !text.starts_with('-');
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_variants() {
        let v = Json::obj([
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("count", Json::U64(u64::MAX)),
            ("ratio", Json::F64(0.125)),
            ("name", Json::Str("fig3 \"quick\"\n".into())),
            (
                "arr",
                Json::Arr(vec![Json::U64(1), Json::F64(2.5), Json::Null]),
            ),
            (
                "nested",
                Json::Arr(vec![Json::obj([("x", Json::U64(3))])]),
            ),
        ]);
        let text = v.pretty();
        let back = parse(&text).expect("parse");
        assert_eq!(back, v);
        // Determinism: serialize → parse → serialize is byte-stable.
        assert_eq!(back.pretty(), text);
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let big = u64::MAX - 1;
        let text = Json::U64(big).pretty();
        assert_eq!(parse(&text).expect("parse").as_u64(), Some(big));
    }

    #[test]
    fn nan_and_infinity_serialize_as_null() {
        assert_eq!(Json::F64(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).pretty(), "null\n");
        // ...and null reads back as NaN through the numeric view.
        assert!(parse("null").expect("parse").as_f64().expect("num").is_nan());
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        let text = v.pretty();
        assert!(text.find("\"z\"").expect("z") < text.find("\"a\"").expect("a"));
    }

    #[test]
    fn lookup_helpers() {
        let v = Json::obj([(
            "background",
            Json::obj([("p99_fct_ms", Json::F64(1.5))]),
        )]);
        assert_eq!(
            v.path(&["background", "p99_fct_ms"]).and_then(Json::as_f64),
            Some(1.5)
        );
        assert!(v.path(&["missing"]).is_none());
        let mut m = Json::obj([]);
        m.set("k", Json::U64(1));
        m.set("k", Json::U64(2));
        assert_eq!(m.get("k").and_then(Json::as_u64), Some(2));
        assert_eq!(m.remove("k"), Some(Json::U64(2)));
        assert_eq!(m.remove("k"), None);
        assert!(m.get("k").is_none());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
