//! Regenerates fig_fail: the failure sweep the paper never ran.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig_fail",
        "fig_fail — FCT and reordering vs. number of failed links (not in the paper)",
    );
    if let Err(e) = drive(&cli, Some(&["fig_fail"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
