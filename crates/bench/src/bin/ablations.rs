//! Ablation harness for the implementation choices DESIGN.md documents on
//! top of the paper's Algorithm 1:
//!
//!   1. per-flow reroute stickiness (vs. pure per-packet re-decision),
//!   2. queue-first vs. RTT-first suboptimal-path selection,
//!   3. recirculation budget (2 vs. the default 8),
//!   4. warning lifetime (short 3Δt vs. the default 10Δt),
//!   5. recirculating when every path is warned.
//!
//! Each variant runs the Fig. 2 motivation scenario under DRILL+RLB and
//! reports the measured background flows.
//!
//! ```sh
//! cargo run --release -p rlb-bench --bin ablations
//! ```

use rlb_bench::cli::BenchCli;
use rlb_bench::figures::common::{pick, run_variant, RunRow};
use rlb_core::{RlbConfig, SuboptimalPolicy};
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{MotivationConfig, Scenario};

fn main() {
    let cli = BenchCli::parse_or_exit(
        "ablations",
        "DESIGN.md implementation-choice ablations on the motivation scenario",
    );
    let variants: Vec<(&str, Option<RlbConfig>)> = vec![
        ("vanilla (no RLB)", None),
        ("RLB default", Some(RlbConfig::default())),
        (
            "RLB, no sticky reroutes",
            Some(RlbConfig {
                sticky_reroutes: false,
                ..RlbConfig::default()
            }),
        ),
        (
            "RLB, RTT-first suboptimal",
            Some(RlbConfig {
                suboptimal_policy: SuboptimalPolicy::RttFirst,
                ..RlbConfig::default()
            }),
        ),
        (
            "RLB, recirc budget 2",
            Some(RlbConfig {
                max_recirculations: 2,
                ..RlbConfig::default()
            }),
        ),
        (
            "RLB, short warn lifetime (3dt)",
            Some(RlbConfig {
                warn_lifetime_ps: 3 * 2_000_000,
                ..RlbConfig::default()
            }),
        ),
        (
            "RLB, recirc when all warned",
            Some(RlbConfig {
                recirculate_when_all_warned: true,
                ..RlbConfig::default()
            }),
        ),
        (
            "RLB, no recirculation",
            Some(RlbConfig {
                enable_recirculation: false,
                ..RlbConfig::default()
            }),
        ),
    ];

    let mc = MotivationConfig {
        n_paths: 40,
        n_background: pick(cli.scale, 24, 100),
        background_load: pick(cli.scale, 0.2, 0.3),
        congested_flow_bytes: 30_000_000,
        horizon: SimTime::from_ms(pick(cli.scale, 3, 10)),
        ..MotivationConfig::default()
    };
    let mut table = Table::new(vec![
        "variant",
        "bg_avg_fct_ms",
        "bg_p99_fct_ms",
        "bg_p99_ood",
        "recirc",
        "reroutes",
        "unwarned",
    ]);
    for (label, rlb) in variants {
        let row: RunRow = run_variant(label.to_string(), Scenario::motivation(&mc, Scheme::Drill, rlb));
        table.row(vec![
            label.to_string(),
            ms(row.background.avg_fct_ms),
            ms(row.background.p99_fct_ms),
            format!("{:.0}", row.background.p99_ood),
            row.counters.recirculations.to_string(),
            row.counters.reroutes.to_string(),
            row.counters.forwards_unwarned.to_string(),
        ]);
    }
    println!("Ablations over the Fig. 2 motivation scenario (DRILL, background flows)\n");
    println!("{}", table.render());
}
