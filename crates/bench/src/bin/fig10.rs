//! Regenerates Fig. 10: sensitivity to Qth and Δt.
use rlb_bench::{figures::fig10, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 10(a) — sensitivity to the warning threshold Qth");
    println!("scale: {scale:?}\n");
    let a = fig10::run_qth(scale);
    println!("{}", fig10::render(&a, "Qth"));
    println!("Fig. 10(b) — sensitivity to the sampling interval Δt\n");
    let b = fig10::run_dt(scale);
    println!("{}", fig10::render(&b, "dt"));
    println!("Supplementary: Qth sweep on the pause-heavy motivation scenario\n");
    let c = fig10::run_qth_motivation(scale);
    println!("{}", fig10::render(&c, "Qth"));
}
