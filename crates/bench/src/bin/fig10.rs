//! Regenerates Fig. 10: sensitivity to Qth and Δt.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig10",
        "Fig. 10 — RLB sensitivity to the warning threshold Qth and interval dt",
    );
    if let Err(e) = drive(&cli, Some(&["fig10"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
