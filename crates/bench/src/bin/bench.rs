//! The unified experiment runner: any subset of the paper's figures
//! through the cached parallel runner.
//!
//! ```sh
//! cargo run --release -p rlb-bench --bin bench -- \
//!     --figs fig3 --seeds 3 --json BENCH_fig3_quick.json
//! ```

use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "bench",
        "run any subset of the paper's figures (default: all) with caching",
    );
    if let Err(e) = drive(&cli, None) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
