//! Regenerates Fig. 7: AFCT vs. load in the asymmetric topology.
use rlb_bench::{figures::fig7, Scale};
use rlb_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 7 — AFCT vs. load, asymmetric topology (20% links at 10G)");
    println!("scale: {scale:?}\n");
    for wl in Workload::ALL {
        let rows = fig7::run(scale, wl);
        println!("{}", fig7::render(&rows));
    }
}
