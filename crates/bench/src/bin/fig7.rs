//! Regenerates Fig. 7: AFCT vs. load in the asymmetric topology.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig7",
        "Fig. 7 — AFCT vs. load, asymmetric topology (20% links at 10G)",
    );
    if let Err(e) = drive(&cli, Some(&["fig7"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
