//! Regenerates Fig. 3: PFC's impact on the four LB schemes.
use rlb_bench::{figures::fig3, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 3 — LB schemes with vs. without PFC (motivation dumbbell, background flows)");
    println!("scale: {scale:?}\n");
    let rows = fig3::run(scale);
    println!("{}", fig3::render(&rows));
}
