//! Regenerates Fig. 3: PFC's impact on the four LB schemes.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig3",
        "Fig. 3 — LB schemes with vs. without PFC (motivation dumbbell)",
    );
    if let Err(e) = drive(&cli, Some(&["fig3"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
