//! Regenerates Fig. 9: the packet-recirculation ablation.
use rlb_bench::{figures::fig9, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 9 — effectiveness of packet recirculation (99p FCT)");
    println!("scale: {scale:?}\n");
    let rows = fig9::run(scale);
    println!("{}", fig9::render(&rows));
}
