//! Regenerates Fig. 9: the packet-recirculation ablation.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig9",
        "Fig. 9 — effectiveness of packet recirculation (99p FCT)",
    );
    if let Err(e) = drive(&cli, Some(&["fig9"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
