//! Regenerates Fig. 4: reordering vs. affected paths (a) and bursts (b).
use rlb_bench::{figures::fig4, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 4(a) — out-of-order packets vs. number of affected paths");
    println!("scale: {scale:?}\n");
    let a = fig4::run_affected_paths(scale);
    println!("{}", fig4::render(&a, "affected_paths"));
    println!("Fig. 4(b) — out-of-order packets vs. number of continuous bursts\n");
    let b = fig4::run_bursts(scale);
    println!("{}", fig4::render(&b, "bursts"));
}
