//! Regenerates Fig. 4: reordering vs. affected paths (a) and bursts (b).
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig4",
        "Fig. 4 — OOO packets vs. PFC-affected paths and continuous bursts",
    );
    if let Err(e) = drive(&cli, Some(&["fig4"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
