//! Regenerates Fig. 6: FCT CDFs, each scheme vs. its RLB version.
use rlb_bench::{figures::fig6, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 6 — FCT under symmetric topology, Web Search @ 60% load");
    println!("scale: {scale:?}\n");
    let rows = fig6::run(scale);
    println!("{}", fig6::render(&rows));
    if std::env::args().any(|a| a == "--cdf") {
        for r in &rows {
            println!("{}", fig6::render_cdf(r));
        }
    } else {
        println!("(pass --cdf to dump the full CDF series)");
    }
}
