//! Regenerates Fig. 6: FCT CDFs, each scheme vs. its RLB version.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig6",
        "Fig. 6 — FCT under the symmetric topology (pass --cdf for the curves)",
    );
    match drive(&cli, Some(&["fig6"])) {
        Ok(_) => {
            if !cli.cdf {
                println!("(pass --cdf to dump the full CDF series)");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
