//! One-minute sanity harness: the motivation scenario's three canonical
//! rows (no PFC / PFC / PFC+RLB under DRILL). If the middle row doesn't
//! hurt or the last row doesn't heal, something is broken.
//!
//! ```sh
//! cargo run --release -p rlb-bench --bin sanity
//! ```

use rlb_bench::cli::BenchCli;
use rlb_bench::figures::common::pick;
use rlb_core::RlbConfig;
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, FctSummary, Table};
use rlb_net::scenario::{MotivationConfig, Scenario, BACKGROUND_GROUP};

fn main() {
    let cli = BenchCli::parse_or_exit(
        "sanity",
        "no PFC / PFC / PFC+RLB smoke rows on the motivation dumbbell",
    );
    let mc = MotivationConfig {
        n_paths: 40,
        n_background: pick(cli.scale, 24, 100),
        background_load: pick(cli.scale, 0.2, 0.3),
        congested_flow_bytes: 30_000_000,
        horizon: SimTime::from_ms(pick(cli.scale, 3, 10)),
        ..MotivationConfig::default()
    };
    let mut table = Table::new(vec![
        "variant",
        "bg_avg_fct_ms",
        "bg_p99_fct_ms",
        "bg_p99_ood",
        "pauses",
        "cnm",
        "recirc",
    ]);
    for (label, pfc, rlb) in [
        ("no PFC", false, None),
        ("PFC, DRILL", true, None),
        ("PFC, DRILL+RLB", true, Some(RlbConfig::default())),
    ] {
        let mut sc = Scenario::motivation(&mc, Scheme::Drill, rlb);
        sc.cfg.switch.pfc_enabled = pfc;
        let t0 = std::time::Instant::now();
        let res = sc.run();
        let bg: Vec<_> = res
            .records
            .iter()
            .zip(res.groups.iter())
            .filter(|(_, g)| **g == BACKGROUND_GROUP)
            .map(|(r, _)| r.clone())
            .collect();
        let s = FctSummary::from_records(&bg);
        table.row(vec![
            label.to_string(),
            ms(s.avg_fct_ms),
            ms(s.p99_fct_ms),
            format!("{:.0}", s.p99_ood),
            res.counters.pause_frames.to_string(),
            res.counters.cnm_generated.to_string(),
            res.counters.recirculations.to_string(),
        ]);
        eprintln!("{label}: {:?}, {} events", t0.elapsed(), res.events_processed);
    }
    println!("{}", table.render());
}
