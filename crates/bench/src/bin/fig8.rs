//! Regenerates Fig. 8: incast reordering and completion time.
use rlb_bench::{figures::fig8, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 8(a,c) — varying incast degree (total response 4MB)");
    println!("scale: {scale:?}\n");
    let a = fig8::run_degrees(scale);
    println!("{}", fig8::render(&a, "degree"));
    println!("Fig. 8(b,d) — varying total response size (degree 15)\n");
    let b = fig8::run_response_sizes(scale);
    println!("{}", fig8::render(&b, "response_MB"));
}
