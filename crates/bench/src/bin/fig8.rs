//! Regenerates Fig. 8: incast reordering and completion time.
use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "fig8",
        "Fig. 8 — incast OOO ratio and completion vs. degree and response size",
    );
    if let Err(e) = drive(&cli, Some(&["fig8"])) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
