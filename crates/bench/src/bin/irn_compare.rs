//! Lossless vs. lossy design points (the paper's §5 discussion made
//! runnable): compare, under identical traffic,
//!
//!   1. PFC + go-back-N (the paper's lossless baseline),
//!   2. PFC + go-back-N + RLB (the paper's contribution),
//!   3. no PFC + go-back-N (naive lossy — GBN melts down under loss),
//!   4. no PFC + IRN selective repeat (the abandon-PFC school).
//!
//! ```sh
//! cargo run --release -p rlb-bench --bin irn_compare
//! ```

use rlb_bench::cli::BenchCli;
use rlb_bench::figures::common::pick;
use rlb_core::RlbConfig;
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, FctSummary, Table};
use rlb_net::scenario::{MotivationConfig, Scenario, BACKGROUND_GROUP};
use rlb_net::TransportMode;

fn main() {
    let cli = BenchCli::parse_or_exit(
        "irn_compare",
        "lossless vs. lossy design points (PFC/GBN/IRN) on the motivation scenario",
    );
    let mc = MotivationConfig {
        n_paths: 40,
        n_background: pick(cli.scale, 24, 100),
        background_load: pick(cli.scale, 0.2, 0.3),
        congested_flow_bytes: 30_000_000,
        horizon: SimTime::from_ms(pick(cli.scale, 3, 10)),
        ..MotivationConfig::default()
    };

    let mut table = Table::new(vec![
        "design point",
        "bg_avg_fct_ms",
        "bg_p99_fct_ms",
        "bg_p99_ood",
        "pauses",
        "drops",
        "retx_pkts",
    ]);

    type Case = (&'static str, bool, TransportMode, Option<RlbConfig>);
    let cases: [Case; 4] = [
        ("PFC + go-back-N", true, TransportMode::GoBackN, None),
        ("PFC + go-back-N + RLB", true, TransportMode::GoBackN, Some(RlbConfig::default())),
        ("lossy + go-back-N", false, TransportMode::GoBackN, None),
        ("lossy + IRN", false, TransportMode::SelectiveRepeat, None),
    ];

    for (label, pfc, mode, rlb) in cases {
        let mut sc = Scenario::motivation(&mc, Scheme::Drill, rlb);
        sc.cfg.switch.pfc_enabled = pfc;
        sc.cfg.transport.mode = mode;
        let res = sc.run();
        let bg: Vec<_> = res
            .records
            .iter()
            .zip(res.groups.iter())
            .filter(|(_, g)| **g == BACKGROUND_GROUP)
            .map(|(r, _)| r.clone())
            .collect();
        let s = FctSummary::from_records(&bg);
        let retx: u64 = res.records.iter().map(|r| r.retransmitted_packets()).sum();
        table.row(vec![
            label.to_string(),
            ms(s.avg_fct_ms),
            ms(s.p99_fct_ms),
            format!("{:.0}", s.p99_ood),
            res.counters.pause_frames.to_string(),
            res.counters.buffer_drops.to_string(),
            retx.to_string(),
        ]);
    }

    println!("Lossless vs lossy design points, Fig. 2 scenario, DRILL, background flows\n");
    println!("{}", table.render());
    println!("Reading: go-back-N needs PFC (lossy+GBN retransmits heavily);");
    println!("RLB fixes PFC's reordering; IRN instead tolerates the loss that");
    println!("removing PFC admits — the two schools the paper contrasts in §5.");
}
