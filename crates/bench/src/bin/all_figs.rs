//! Runs every figure back-to-back (the EXPERIMENTS.md regeneration entry
//! point): `cargo run --release -p rlb-bench --bin all_figs [--paper-scale]`.
use rlb_bench::{figures::*, Scale};
use rlb_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    let t0 = std::time::Instant::now();
    println!("=== Fig. 3 ===");
    println!("{}", fig3::render(&fig3::run(scale)));
    println!("=== Fig. 4(a) ===");
    println!("{}", fig4::render(&fig4::run_affected_paths(scale), "affected_paths"));
    println!("=== Fig. 4(b) ===");
    println!("{}", fig4::render(&fig4::run_bursts(scale), "bursts"));
    println!("=== Fig. 6 ===");
    println!("{}", fig6::render(&fig6::run(scale)));
    println!("=== Fig. 7 ===");
    for wl in Workload::ALL {
        println!("{}", fig7::render(&fig7::run(scale, wl)));
    }
    println!("=== Fig. 8 (degree) ===");
    println!("{}", fig8::render(&fig8::run_degrees(scale), "degree"));
    println!("=== Fig. 8 (response size) ===");
    println!("{}", fig8::render(&fig8::run_response_sizes(scale), "response_MB"));
    println!("=== Fig. 9 ===");
    println!("{}", fig9::render(&fig9::run(scale)));
    println!("=== Fig. 10 (Qth) ===");
    println!("{}", fig10::render(&fig10::run_qth(scale), "Qth"));
    println!("=== Fig. 10 (dt) ===");
    println!("{}", fig10::render(&fig10::run_dt(scale), "dt"));
    println!("=== Fig. 10 (supplementary: Qth on the motivation scenario) ===");
    println!("{}", fig10::render(&fig10::run_qth_motivation(scale), "Qth"));
    println!("total wall time: {:?}", t0.elapsed());
}
