//! Runs every figure back-to-back (the EXPERIMENTS.md regeneration entry
//! point). Equivalent to `bench` with no `--figs` filter.
//!
//! ```sh
//! cargo run --release -p rlb-bench --bin all_figs -- [--paper-scale] [--json PATH]
//! ```

use rlb_bench::cli::BenchCli;
use rlb_bench::drive::drive;

fn main() {
    let cli = BenchCli::parse_or_exit("all_figs", "regenerate every figure of the paper");
    if let Err(e) = drive(&cli, None) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
