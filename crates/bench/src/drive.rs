//! The shared driver behind every bench binary: resolve the requested
//! figures from the registry, expand them into one job batch, run it
//! through the cached parallel runner, reduce per figure, print the
//! tables, and (with `--json`) write the schema-versioned
//! `BENCH_<fig>_<scale>.json` report.

use crate::cli::BenchCli;
use crate::figures::common::run_metrics;
use crate::figures::{by_name, registry, Figure, FigureReport};
use crate::json::Json;
use crate::runner::{run_jobs, Job, JobOutcome, RunSummary, CACHE_SCHEMA_VERSION};
use rlb_net::ScenarioSpec;
use std::path::Path;

/// Resolve the figure list: `--figs` wins, then the binary's default
/// subset, then the whole registry. Unknown names are an error listing
/// what exists.
pub fn resolve_figures(
    cli: &BenchCli,
    default_figs: Option<&[&str]>,
) -> Result<Vec<&'static dyn Figure>, String> {
    let names: Vec<String> = match (&cli.figs, default_figs) {
        (Some(figs), _) => figs.clone(),
        (None, Some(defaults)) => defaults.iter().map(|s| s.to_string()).collect(),
        (None, None) => registry().iter().map(|f| f.name().to_string()).collect(),
    };
    names
        .iter()
        .map(|n| {
            by_name(n).ok_or_else(|| {
                format!(
                    "unknown figure `{n}` — known figures: {}",
                    registry()
                        .iter()
                        .map(|f| f.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
        })
        .collect()
}

/// Run the figures selected by `cli` end to end. Returns the per-figure
/// reports (in run order) alongside the batch summary, after printing
/// tables and writing the JSON report if requested.
pub fn drive(
    cli: &BenchCli,
    default_figs: Option<&[&str]>,
) -> Result<Vec<(&'static dyn Figure, FigureReport)>, String> {
    if let Some(path) = cli.scenario.clone() {
        drive_scenario(cli, &path)?;
        return Ok(Vec::new());
    }
    let figures = resolve_figures(cli, default_figs)?;
    let offsets = cli.seed_offsets();

    // One flat batch: the runner interleaves jobs from all figures across
    // the worker pool, so a slow figure can't serialize the rest.
    let mut jobs = Vec::new();
    let mut ranges = Vec::new();
    for fig in &figures {
        let start = jobs.len();
        jobs.append(&mut fig.jobs(cli.scale, &offsets, cli.shards));
        ranges.push(start..jobs.len());
    }
    let summary = run_jobs(jobs, &cli.runner_config(true))?;

    let mut reports = Vec::new();
    for (fig, range) in figures.iter().zip(ranges) {
        let outcomes = &summary.outcomes[range];
        let report = fig.reduce(outcomes);
        for (title, table) in &report.sections {
            println!("{title}\n{table}");
        }
        if cli.cdf {
            for dump in &report.cdf_dumps {
                println!("{dump}");
            }
        }
        reports.push((*fig, report));
    }
    println!(
        "{} point(s): {} executed, {} cached, {:.1}s wall",
        summary.outcomes.len(),
        summary.executed,
        summary.cache_hits,
        summary.total_wall_ms / 1e3
    );

    if let Some(path) = &cli.json {
        let report = build_report(cli, &reports, &summary);
        std::fs::write(path, report.pretty())
            .map_err(|e| format!("cannot write report {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(reports)
}

/// Expand a parsed spec into runner jobs, one per seed offset. The job's
/// cache identity is the canonical spec text (seed included), so editing
/// any field of the file — or bumping the seed — re-keys the point while
/// untouched specs stay warm in the cache.
pub fn scenario_jobs(
    spec: &ScenarioSpec,
    offsets: &[u64],
    shards: u16,
) -> Result<Vec<Job>, String> {
    // Surface semantic errors (bad topology ranges, unsorted timelines)
    // before any job runs.
    spec.build()
        .map_err(|e| format!("scenario `{}`: {e}", spec.label()))?;
    let mut jobs = Vec::new();
    for &offset in offsets {
        let mut s = spec.clone();
        s.seed += offset;
        jobs.push(Job {
            fig: "scenario",
            label: s.label(),
            seed: s.seed,
            spec: format!("shards={shards}|{}", s.to_spec_text()),
            run: Box::new(move || {
                let sc = s.build().expect("spec validated before job expansion");
                run_metrics(s.label(), sc, shards, vec![("seed", Json::U64(s.seed))])
            }),
        });
    }
    Ok(jobs)
}

/// `--scenario PATH`: parse + validate the spec file (span-quality errors
/// verbatim from the parser), run it through the cached runner, print a
/// summary table, and honor `--json`/`--stable-json` like any figure run.
pub fn drive_scenario(cli: &BenchCli, path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read scenario spec {}: {e}", path.display()))?;
    let spec =
        ScenarioSpec::parse(&text).map_err(|e| format!("in {}:\n{e}", path.display()))?;
    let jobs = scenario_jobs(&spec, &cli.seed_offsets(), cli.shards)?;
    let summary = run_jobs(jobs, &cli.runner_config(true))?;

    let mut t = rlb_metrics::Table::new(vec![
        "scenario",
        "seed",
        "flows",
        "avg_fct_ms",
        "p99_fct_ms",
        "ooo_packets",
        "faults_applied",
    ]);
    let num = |o: &JobOutcome, p: &[&str]| {
        o.metrics.path(p).and_then(Json::as_f64).unwrap_or(f64::NAN)
    };
    for o in &summary.outcomes {
        t.row(vec![
            o.label.clone(),
            o.seed.to_string(),
            format!("{:.0}", num(o, &["all", "flows_total"])),
            rlb_metrics::ms(num(o, &["all", "avg_fct_ms"])),
            rlb_metrics::ms(num(o, &["all", "p99_fct_ms"])),
            rlb_metrics::pct(num(o, &["all", "ooo_ratio"])),
            format!("{:.0}", num(o, &["counters", "faults_applied"])),
        ]);
    }
    println!("scenario {} ({})\n{}", spec.label(), path.display(), t.render());
    println!(
        "{} point(s): {} executed, {} cached, {:.1}s wall",
        summary.outcomes.len(),
        summary.executed,
        summary.cache_hits,
        summary.total_wall_ms / 1e3
    );

    if let Some(out) = &cli.json {
        let report = build_report(cli, &[], &summary);
        std::fs::write(out, report.pretty())
            .map_err(|e| format!("cannot write report {}: {e}", out.display()))?;
        println!("wrote {}", out.display());
    }
    Ok(())
}

fn point_json(o: &JobOutcome, stable: bool) -> Json {
    let mut metrics = o.metrics.clone();
    if stable {
        // The per-job perf block is wall-clock telemetry; two byte-identical
        // stable reports must not differ because one machine was slower.
        metrics.remove("perf");
    }
    let mut p = Json::obj([
        ("fig", Json::Str(o.fig.to_string())),
        ("label", Json::Str(o.label.clone())),
        ("seed", Json::U64(o.seed)),
        ("metrics", metrics),
    ]);
    if !stable {
        // The cache key hashes the full job spec, which includes the shard
        // count — a cache-layout detail, not simulation output. Stable
        // reports omit it so `--shards 1` and `--shards N` byte-compare.
        p.set("key", Json::Str(o.key_hex.clone()));
        p.set("wall_ms", Json::F64(o.wall_ms));
        p.set("cached", Json::Bool(o.cached));
    }
    p
}

/// Aggregate the per-job `perf` blocks into the report-level summary:
/// total events dispatched, total in-simulation wall time, and the batch
/// events/sec rate. Cached jobs contribute the numbers recorded when they
/// originally executed, so the rate describes simulator speed rather than
/// cache luck; jobs_executed / jobs_cached disambiguate.
fn perf_aggregate(summary: &RunSummary) -> Json {
    let mut events_total: u64 = 0;
    let mut sim_wall_ms: f64 = 0.0;
    let mut decisions: u64 = 0;
    let mut reuses: u64 = 0;
    let mut refreshes: u64 = 0;
    let mut rebuilds: u64 = 0;
    let mut dirty_q: u64 = 0;
    let mut dirty_sig: u64 = 0;
    let mut arena_high_water: u64 = 0;
    let mut arena_capacity: u64 = 0;
    let mut shards_max: u64 = 0;
    let mut window_advances: u64 = 0;
    let mut cross_msgs: u64 = 0;
    let mut barrier_stalls: u64 = 0;
    let mut aggregate_rate_max: f64 = 0.0;
    let take = |p: &Json, k: &str| p.get(k).and_then(Json::as_u64).unwrap_or(0);
    for o in &summary.outcomes {
        if let Some(p) = o.metrics.get("perf") {
            events_total += take(p, "events_processed");
            sim_wall_ms += p.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
            decisions += take(p, "decisions");
            reuses += take(p, "snapshot_reuses");
            refreshes += take(p, "snapshot_refreshes");
            rebuilds += take(p, "snapshot_rebuilds");
            dirty_q += take(p, "snapshot_dirty_queue_spines");
            dirty_sig += take(p, "snapshot_dirty_sig_spines");
            // Occupancy peaks don't sum across independent runs; report
            // the worst job in the batch.
            arena_high_water = arena_high_water.max(take(p, "arena_high_water"));
            arena_capacity = arena_capacity.max(take(p, "arena_capacity"));
            shards_max = shards_max.max(take(p, "shards"));
            window_advances += take(p, "window_advances");
            cross_msgs += take(p, "cross_shard_messages");
            barrier_stalls += take(p, "barrier_stalls");
            // A rate, not a count: report the best job in the batch (the
            // perf-smoke CI gate reads this as the fleet's peak throughput).
            aggregate_rate_max = aggregate_rate_max.max(
                p.get("aggregate_events_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            );
        }
    }
    let rate = if sim_wall_ms > 0.0 {
        events_total as f64 / (sim_wall_ms / 1e3)
    } else {
        0.0
    };
    Json::obj([
        ("events_processed_total", Json::U64(events_total)),
        ("sim_wall_ms_total", Json::F64(sim_wall_ms)),
        ("events_per_sec", Json::F64(rate)),
        ("decisions_total", Json::U64(decisions)),
        ("snapshot_reuses_total", Json::U64(reuses)),
        ("snapshot_refreshes_total", Json::U64(refreshes)),
        ("snapshot_rebuilds_total", Json::U64(rebuilds)),
        ("snapshot_dirty_queue_spines_total", Json::U64(dirty_q)),
        ("snapshot_dirty_sig_spines_total", Json::U64(dirty_sig)),
        ("arena_high_water_max", Json::U64(arena_high_water)),
        ("arena_capacity_max", Json::U64(arena_capacity)),
        ("shards_max", Json::U64(shards_max)),
        ("window_advances_total", Json::U64(window_advances)),
        ("cross_shard_messages_total", Json::U64(cross_msgs)),
        ("barrier_stalls_total", Json::U64(barrier_stalls)),
        ("aggregate_events_per_sec_max", Json::F64(aggregate_rate_max)),
        ("jobs_executed", Json::U64(summary.executed as u64)),
        ("jobs_cached", Json::U64(summary.cache_hits as u64)),
    ])
}

/// The schema-versioned report object. With `--stable-json`, wall-clock
/// and cache fields are omitted so byte-identical inputs yield
/// byte-identical reports (the determinism tests rely on this).
pub fn build_report(
    cli: &BenchCli,
    reports: &[(&'static dyn Figure, FigureReport)],
    summary: &RunSummary,
) -> Json {
    let mut out = Json::obj([
        ("schema_version", Json::U64(CACHE_SCHEMA_VERSION as u64)),
        ("generator", Json::Str("rlb-bench".to_string())),
        ("scale", Json::Str(cli.scale.name().to_string())),
        ("seeds", Json::U64(cli.seeds as u64)),
        (
            "figures",
            Json::Arr(
                reports
                    .iter()
                    .map(|(f, _)| {
                        Json::obj([
                            ("name", Json::Str(f.name().to_string())),
                            ("description", Json::Str(f.description().to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Obj(
                reports
                    .iter()
                    .map(|(f, r)| (f.name().to_string(), r.rows.clone()))
                    .collect(),
            ),
        ),
        (
            "points",
            Json::Arr(
                summary
                    .outcomes
                    .iter()
                    .map(|o| point_json(o, cli.stable_json))
                    .collect(),
            ),
        ),
    ]);
    if !cli.stable_json {
        out.set(
            "timing",
            Json::obj([
                ("executed", Json::U64(summary.executed as u64)),
                ("cache_hits", Json::U64(summary.cache_hits as u64)),
                ("total_wall_ms", Json::F64(summary.total_wall_ms)),
            ]),
        );
        out.set("perf", perf_aggregate(summary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_defaults_and_rejects_unknown() {
        let cli = BenchCli::default();
        let all = resolve_figures(&cli, None).expect("all figures");
        assert_eq!(all.len(), registry().len());
        let subset = resolve_figures(&cli, Some(&["fig6"])).expect("subset");
        assert_eq!(subset.len(), 1);
        assert_eq!(subset[0].name(), "fig6");

        let cli = BenchCli {
            figs: Some(vec!["fig3".into(), "nope".into()]),
            ..BenchCli::default()
        };
        let err = match resolve_figures(&cli, None) {
            Err(e) => e,
            Ok(_) => panic!("unknown figure must be rejected"),
        };
        assert!(err.contains("nope") && err.contains("fig3"), "{err}");
    }

    #[test]
    fn figs_flag_overrides_binary_default() {
        let cli = BenchCli {
            figs: Some(vec!["fig9".into()]),
            ..BenchCli::default()
        };
        let figs = resolve_figures(&cli, Some(&["fig3"])).expect("override");
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].name(), "fig9");
    }

    #[test]
    fn stable_report_omits_timing_fields() {
        let outcome = JobOutcome {
            fig: "fig3",
            label: "x".into(),
            seed: 1,
            key_hex: "00".into(),
            metrics: Json::obj([
                ("m", Json::U64(1)),
                (
                    "perf",
                    Json::obj([
                        ("events_processed", Json::U64(5000)),
                        ("wall_ms", Json::F64(250.0)),
                        ("events_per_sec", Json::F64(20_000.0)),
                    ]),
                ),
            ]),
            wall_ms: 12.0,
            cached: true,
        };
        let summary = RunSummary {
            outcomes: vec![outcome],
            cache_hits: 1,
            executed: 0,
            total_wall_ms: 12.0,
        };
        let mut cli = BenchCli::default();
        let full = build_report(&cli, &[], &summary);
        assert!(full.get("timing").is_some());
        let p = &full.path(&["points"]).unwrap().as_arr().unwrap()[0];
        assert!(p.get("wall_ms").is_some());
        assert!(p.path(&["metrics", "perf", "events_per_sec"]).is_some());
        // Aggregate: 5000 events over 250 ms = 20k events/sec.
        assert_eq!(
            full.path(&["perf", "events_processed_total"])
                .and_then(Json::as_u64),
            Some(5000)
        );
        let rate = full
            .path(&["perf", "events_per_sec"])
            .and_then(Json::as_f64)
            .expect("aggregate rate");
        assert!((rate - 20_000.0).abs() < 1e-9, "rate={rate}");

        cli.stable_json = true;
        let stable = build_report(&cli, &[], &summary);
        assert!(stable.get("timing").is_none());
        assert!(stable.get("perf").is_none());
        let p = &stable.path(&["points"]).unwrap().as_arr().unwrap()[0];
        assert!(p.get("wall_ms").is_none() && p.get("cached").is_none());
        assert!(p.path(&["metrics", "perf"]).is_none());
        assert!(p.path(&["metrics", "m"]).is_some());
        assert_eq!(
            stable.get("schema_version").and_then(Json::as_u64),
            Some(CACHE_SCHEMA_VERSION as u64)
        );
    }
}
