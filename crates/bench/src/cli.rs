//! The shared CLI for every bench binary.
//!
//! Replaces the old per-binary argv scans (`Scale::from_args`) with one
//! parser so `--help`, `--paper-scale`, `--seeds`, `--jobs`, `--json`,
//! `--no-cache`, `--cache-dir`, `--figs`, `--cdf`, and `--stable-json`
//! mean the same thing everywhere.

use crate::runner;
use crate::Scale;
use std::path::PathBuf;

/// Parsed options common to all bench binaries.
#[derive(Debug, Clone)]
pub struct BenchCli {
    pub scale: Scale,
    /// Seed replicates per experiment point (`--seeds N`, default 1).
    /// Replicate `i` runs each point with the figure's base seed + `i`.
    pub seeds: u32,
    /// Worker-thread cap (`--jobs N`); default: available parallelism.
    pub jobs: Option<usize>,
    /// Write a schema-versioned JSON report here (`--json PATH`).
    pub json: Option<PathBuf>,
    /// Disable the result cache (`--no-cache`).
    pub no_cache: bool,
    /// Cache directory (`--cache-dir PATH`, default `target/bench-cache`).
    pub cache_dir: PathBuf,
    /// Figure subset (`--figs fig3,fig7`); `None` = the binary's default.
    pub figs: Option<Vec<String>>,
    /// Run a declarative scenario spec file (`--scenario PATH`) through
    /// the cached runner instead of registry figures.
    pub scenario: Option<PathBuf>,
    /// Dump per-variant CDK/CDF series where a figure provides them.
    pub cdf: bool,
    /// Omit wall-clock and cache fields from the JSON report so repeated
    /// runs are byte-identical (used by the determinism tests).
    pub stable_json: bool,
    /// Simulation shard count per point (`--shards N`, default 1 =
    /// sequential engine). N > 1 runs each point on the bounded-window
    /// parallel driver; output stays byte-identical, only speed changes.
    pub shards: u16,
}

impl Default for BenchCli {
    fn default() -> Self {
        BenchCli {
            scale: Scale::Quick,
            seeds: 1,
            jobs: None,
            json: None,
            no_cache: false,
            cache_dir: runner::default_cache_dir(),
            figs: None,
            scenario: None,
            cdf: false,
            stable_json: false,
            shards: 1,
        }
    }
}

impl BenchCli {
    /// The seed offsets the figure registry receives: `[0, 1, .., N-1]`.
    pub fn seed_offsets(&self) -> Vec<u64> {
        (0..self.seeds as u64).collect()
    }

    /// Runner options implied by the flags.
    pub fn runner_config(&self, progress: bool) -> runner::RunnerConfig {
        runner::RunnerConfig {
            threads: self.jobs,
            cache_dir: if self.no_cache {
                None
            } else {
                Some(self.cache_dir.clone())
            },
            progress,
        }
    }

    /// Parse an argument list (without the program name). Returns
    /// `Ok(None)` when `--help` was requested (help text already printed
    /// to stdout by the caller via [`help_text`]).
    pub fn parse(bin: &str, about: &str, args: &[String]) -> Result<Option<BenchCli>, String> {
        let mut cli = BenchCli::default();
        let mut it = args.iter();
        let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => {
                    println!("{}", help_text(bin, about));
                    return Ok(None);
                }
                "--paper-scale" => cli.scale = Scale::Paper,
                "--quick" => cli.scale = Scale::Quick,
                "--seeds" => {
                    let v = value("--seeds", &mut it)?;
                    cli.seeds = v
                        .parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--seeds expects a positive integer, got `{v}`"))?;
                }
                "--jobs" => {
                    let v = value("--jobs", &mut it)?;
                    cli.jobs = Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| {
                                format!("--jobs expects a positive integer, got `{v}`")
                            })?,
                    );
                }
                "--json" => cli.json = Some(PathBuf::from(value("--json", &mut it)?)),
                "--no-cache" => cli.no_cache = true,
                "--cache-dir" => cli.cache_dir = PathBuf::from(value("--cache-dir", &mut it)?),
                "--figs" => {
                    let v = value("--figs", &mut it)?;
                    let names: Vec<String> = v
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if names.is_empty() {
                        return Err("--figs expects a comma-separated list, e.g. fig3,fig7".into());
                    }
                    cli.figs = Some(names);
                }
                "--scenario" => {
                    cli.scenario = Some(PathBuf::from(value("--scenario", &mut it)?))
                }
                "--cdf" => cli.cdf = true,
                "--stable-json" => cli.stable_json = true,
                "--shards" => {
                    let v = value("--shards", &mut it)?;
                    cli.shards = v
                        .parse::<u16>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            format!("--shards expects a positive integer, got `{v}`")
                        })?;
                }
                other => {
                    return Err(format!(
                        "unknown flag `{other}` — run `{bin} --help` for usage"
                    ))
                }
            }
        }
        Ok(Some(cli))
    }

    /// Parse `std::env::args()`; prints help/errors and exits as needed.
    pub fn parse_or_exit(bin: &str, about: &str) -> BenchCli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match BenchCli::parse(bin, about, &args) {
            Ok(Some(cli)) => cli,
            Ok(None) => std::process::exit(0),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

/// Per-binary help text: a binary-specific about line over the shared
/// flag reference.
pub fn help_text(bin: &str, about: &str) -> String {
    format!(
        "\
{bin} — {about}

USAGE:
    cargo run --release -p rlb-bench --bin {bin} -- [FLAGS]

FLAGS:
    --paper-scale        Run at the paper's 12x12x24 fabric scale
                         (default: Quick, the CI-friendly scaled fabric)
    --quick              Force Quick scale (the default)
    --seeds N            Seed replicates per experiment point; point
                         metrics are averaged over seeds (default: 1)
    --jobs N             Cap the parallel worker threads
                         (default: all available cores)
    --json PATH          Write a schema-versioned JSON report
                         (e.g. BENCH_fig3_quick.json)
    --no-cache           Ignore and do not write the result cache
    --cache-dir PATH     Result cache location
                         (default: target/bench-cache)
    --figs a,b           Run only these figures (registry names, e.g.
                         fig3,fig7); binaries tied to one figure ignore it
    --scenario PATH      Run a declarative scenario spec file (see
                         EXPERIMENTS.md for the format) through the cached
                         runner instead of registry figures
    --cdf                Also dump FCT CDF series where available (fig6)
    --stable-json        Omit wall-clock/cache fields from the JSON report
                         so repeated runs are byte-identical
    --shards N           Run each point on N simulation shards (bounded-
                         window parallel driver; default 1 = sequential).
                         Output is byte-identical for every N — only the
                         perf telemetry and wall time change
    -h, --help           This text

The result cache keys each point by a content hash of its full serialized
configuration; rm -rf the cache dir (or pass --no-cache) after changing
simulator code. See EXPERIMENTS.md for the regeneration workflow."
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<BenchCli>, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        BenchCli::parse("bench", "test", &args)
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).expect("ok").expect("not help");
        assert_eq!(cli.scale, Scale::Quick);
        assert_eq!(cli.seeds, 1);
        assert_eq!(cli.seed_offsets(), vec![0]);
        assert!(cli.jobs.is_none() && cli.json.is_none() && !cli.no_cache);
        assert_eq!(cli.cache_dir, runner::default_cache_dir());
        assert!(cli.figs.is_none() && !cli.cdf && !cli.stable_json);
        assert!(cli.scenario.is_none());
        assert_eq!(cli.shards, 1);
    }

    #[test]
    fn full_flag_set() {
        let cli = parse(&[
            "--paper-scale",
            "--seeds",
            "3",
            "--jobs",
            "8",
            "--json",
            "out.json",
            "--no-cache",
            "--cache-dir",
            "/tmp/c",
            "--figs",
            "fig3, fig7",
            "--scenario",
            "specs/outage.toml",
            "--cdf",
            "--stable-json",
            "--shards",
            "4",
        ])
        .expect("ok")
        .expect("not help");
        assert_eq!(cli.scale, Scale::Paper);
        assert_eq!(cli.seeds, 3);
        assert_eq!(cli.seed_offsets(), vec![0, 1, 2]);
        assert_eq!(cli.jobs, Some(8));
        assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(cli.no_cache);
        assert_eq!(cli.cache_dir, PathBuf::from("/tmp/c"));
        assert_eq!(
            cli.figs,
            Some(vec!["fig3".to_string(), "fig7".to_string()])
        );
        assert_eq!(
            cli.scenario.as_deref(),
            Some(std::path::Path::new("specs/outage.toml"))
        );
        assert!(cli.cdf && cli.stable_json);
        assert_eq!(cli.shards, 4);
        // --no-cache wins over --cache-dir in the runner config.
        assert!(cli.runner_config(false).cache_dir.is_none());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--seeds"]).expect_err("missing").contains("--seeds"));
        assert!(parse(&["--seeds", "0"]).expect_err("zero").contains("positive"));
        assert!(parse(&["--jobs", "x"]).expect_err("nan").contains("--jobs"));
        assert!(parse(&["--scenario"])
            .expect_err("missing")
            .contains("--scenario"));
        assert!(parse(&["--bogus"]).expect_err("unknown").contains("--bogus"));
        assert!(parse(&["--figs", ","]).expect_err("empty").contains("--figs"));
        assert!(parse(&["--shards", "0"]).expect_err("zero").contains("positive"));
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&["--help"]).expect("ok").is_none());
        assert!(parse(&["-h", "--bogus"]).expect("ok").is_none());
        let text = help_text("fig3", "about line");
        assert!(text.contains("fig3 — about line"));
        for flag in [
            "--paper-scale",
            "--seeds",
            "--jobs",
            "--json",
            "--no-cache",
            "--cache-dir",
            "--figs",
            "--scenario",
            "--stable-json",
            "--shards",
        ] {
            assert!(text.contains(flag), "help must document {flag}");
        }
    }
}
