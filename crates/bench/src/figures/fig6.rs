//! Fig. 6 — FCT CDF of every flow, each scheme vs. its RLB-enhanced
//! version, symmetric leaf–spine, Web Search at 60% core load.

use super::common::{pick, run_variant, RunRow, Variant};
use crate::{sweep::parallel_map, Scale};
use rlb_engine::SimTime;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{steady_state, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub label: String,
    pub avg_fct_ms: f64,
    pub p50_fct_ms: f64,
    pub p99_fct_ms: f64,
    pub ooo_ratio: f64,
    pub pause_frames: u64,
    pub cdf: Vec<(f64, f64)>,
}

pub fn config(scale: Scale) -> SteadyStateConfig {
    SteadyStateConfig {
        topo: pick(scale, TopoConfig::default(), TopoConfig::paper_scale()),
        workload: Workload::WebSearch,
        load: 0.6,
        horizon: SimTime::from_ms(pick(scale, 10, 25)),
        seed: 7,
    }
}

pub fn run(scale: Scale) -> Vec<Row> {
    let sc = config(scale);
    parallel_map(Variant::all_eight(), |v| {
        let row: RunRow = run_variant(v.label(), steady_state(&sc, v.scheme, v.rlb.clone()));
        Row {
            label: row.label.clone(),
            avg_fct_ms: row.all.avg_fct_ms,
            p50_fct_ms: row.all.p50_fct_ms,
            p99_fct_ms: row.all.p99_fct_ms,
            ooo_ratio: row.all.ooo_ratio,
            pause_frames: row.counters.pause_frames,
            cdf: row.fct_cdf,
        }
    })
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "scheme", "avg_ms", "p50_ms", "p99_ms", "ooo", "pauses",
    ]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            ms(r.avg_fct_ms),
            ms(r.p50_fct_ms),
            ms(r.p99_fct_ms),
            rlb_metrics::pct(r.ooo_ratio),
            r.pause_frames.to_string(),
        ]);
    }
    t.render()
}

/// The CDF series for one variant, as "fct_ms cum_prob" lines (gnuplot
/// friendly), mirroring the curves in Fig. 6.
pub fn render_cdf(row: &Row) -> String {
    let mut out = format!("# {} FCT CDF\n", row.label);
    for (x, p) in &row.cdf {
        out.push_str(&format!("{x:.4} {p:.4}\n"));
    }
    out
}
