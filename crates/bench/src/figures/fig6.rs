//! Fig. 6 — FCT CDF of every flow, each scheme vs. its RLB-enhanced
//! version, symmetric leaf–spine, Web Search at 60% core load.

use super::common::{pick, Variant};
use super::{Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_engine::SimTime;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{Scenario, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub label: String,
    pub avg_fct_ms: f64,
    pub p50_fct_ms: f64,
    pub p99_fct_ms: f64,
    pub ooo_ratio: f64,
    pub pause_frames: u64,
    pub cdf: Vec<(f64, f64)>,
}

pub fn config(scale: Scale) -> SteadyStateConfig {
    SteadyStateConfig {
        topo: pick(scale, TopoConfig::default(), TopoConfig::paper_scale()),
        workload: Workload::WebSearch,
        load: 0.6,
        horizon: SimTime::from_ms(pick(scale, 10, 25)),
        seed: 7,
    }
}

pub struct Fig6;

impl Figure for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "FCT under the symmetric topology, Web Search @ 60% load (8 variants)"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let mut jobs = Vec::new();
        for v in Variant::all_eight() {
            for &offset in seeds {
                let mut sc = config(scale);
                sc.seed += offset;
                let label = v.label();
                let spec =
                    format!("scheme={:?}|rlb={:?}|shards={shards}|{sc:?}", v.scheme, v.rlb);
                let seed = sc.seed;
                let v = v.clone();
                jobs.push(Job {
                    fig: "fig6",
                    label,
                    seed,
                    spec,
                    run: Box::new(move || {
                        super::common::run_metrics(
                            v.label(),
                            Scenario::steady_state(&sc, v.scheme, v.rlb.clone()),
                            shards,
                            Vec::new(),
                        )
                    }),
                });
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let rows: Vec<Row> = by_label(outcomes)
            .into_iter()
            .map(|(label, reps)| Row {
                label: label.to_string(),
                avg_fct_ms: mean_metric(&reps, &["all", "avg_fct_ms"]),
                p50_fct_ms: mean_metric(&reps, &["all", "p50_fct_ms"]),
                p99_fct_ms: mean_metric(&reps, &["all", "p99_fct_ms"]),
                ooo_ratio: mean_metric(&reps, &["all", "ooo_ratio"]),
                pause_frames: mean_metric(&reps, &["counters", "pause_frames"]).round() as u64,
                // The CDF is a distribution, not a scalar: report the first
                // replicate's curve rather than a point-wise mean.
                cdf: reps[0]
                    .metrics
                    .get("fct_cdf")
                    .and_then(Json::as_arr)
                    .map(|pairs| {
                        pairs
                            .iter()
                            .filter_map(|p| {
                                let p = p.as_arr()?;
                                Some((p.first()?.as_f64()?, p.get(1)?.as_f64()?))
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect();
        let cdf_dumps = rows.iter().map(render_cdf).collect();
        FigureReport {
            sections: vec![(
                "Fig. 6 — FCT under symmetric topology, Web Search @ 60% load".to_string(),
                render(&rows),
            )],
            rows: rows_json(&rows),
            cdf_dumps,
        }
    }
}

fn rows_json(rows: &[Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("variant", Json::Str(r.label.clone())),
                    ("avg_fct_ms", Json::F64(r.avg_fct_ms)),
                    ("p50_fct_ms", Json::F64(r.p50_fct_ms)),
                    ("p99_fct_ms", Json::F64(r.p99_fct_ms)),
                    ("ooo_ratio", Json::F64(r.ooo_ratio)),
                    ("pause_frames", Json::U64(r.pause_frames)),
                    (
                        "fct_cdf",
                        Json::Arr(
                            r.cdf
                                .iter()
                                .map(|&(x, p)| Json::Arr(vec![Json::F64(x), Json::F64(p)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "scheme", "avg_ms", "p50_ms", "p99_ms", "ooo", "pauses",
    ]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            ms(r.avg_fct_ms),
            ms(r.p50_fct_ms),
            ms(r.p99_fct_ms),
            rlb_metrics::pct(r.ooo_ratio),
            r.pause_frames.to_string(),
        ]);
    }
    t.render()
}

/// The CDF series for one variant, as "fct_ms cum_prob" lines (gnuplot
/// friendly), mirroring the curves in Fig. 6.
pub fn render_cdf(row: &Row) -> String {
    let mut out = format!("# {} FCT CDF\n", row.label);
    for (x, p) in &row.cdf {
        out.push_str(&format!("{x:.4} {p:.4}\n"));
    }
    out
}
