//! Fig. 3 — how PFC cripples the four load-balancing schemes.
//!
//! The motivation dumbbell (Fig. 2): Web-Search background f1..fn between
//! the two leaves, continuous line-rate 64 KB bursts plus a long congested
//! flow fc (restricted to 5 paths) aimed at one victim receiver. Each
//! scheme runs with PFC enabled and disabled; the figure reports, for the
//! *background* flows: (a) PFC pause rate, (b) 99th-percentile OOD,
//! (c) average FCT, (d) 99th-percentile FCT.

use super::common::{pick, run_metrics, Variant};
use super::{Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_engine::SimTime;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{MotivationConfig, Scenario};

pub struct Row {
    pub scheme: String,
    pub pfc: bool,
    pub pause_rate_per_sec: f64,
    pub p99_ood: f64,
    pub avg_fct_ms: f64,
    pub p99_fct_ms: f64,
}

pub fn config(scale: Scale) -> MotivationConfig {
    MotivationConfig {
        n_paths: 40,
        n_background: pick(scale, 24, 100),
        n_burst_senders: 2,
        n_burst_senders_dst: pick(scale, 2, 3),
        flows_per_burst: 40,
        bursts: 2,
        affected_paths: 5,
        congested_flow_bytes: pick(scale, 30_000_000, 250_000_000),
        background_load: pick(scale, 0.2, 0.3),
        horizon: SimTime::from_ms(pick(scale, 3, 10)),
        seed: 1,
    }
}

pub struct Fig3;

impl Figure for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn description(&self) -> &'static str {
        "LB schemes with vs. without PFC (motivation dumbbell, background flows)"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let mut jobs = Vec::new();
        for &scheme in &rlb_lb::Scheme::PAPER_SET {
            for pfc in [true, false] {
                for &offset in seeds {
                    let mut mc = config(scale);
                    mc.seed += offset;
                    let v = Variant::vanilla(scheme);
                    let label = format!("{} pfc={}", v.label(), if pfc { "on" } else { "off" });
                    let spec = format!("scheme={scheme:?}|rlb=None|pfc={pfc}|shards={shards}|{mc:?}");
                    let seed = mc.seed;
                    jobs.push(Job {
                        fig: "fig3",
                        label,
                        seed,
                        spec,
                        run: Box::new(move || {
                            let mut sc = Scenario::motivation(&mc, scheme, None);
                            sc.cfg.switch.pfc_enabled = pfc;
                            run_metrics(
                                Variant::vanilla(scheme).label(),
                                sc,
                                shards,
                                vec![
                                    ("scheme", Json::Str(scheme.name().to_string())),
                                    ("pfc", Json::Bool(pfc)),
                                ],
                            )
                        }),
                    });
                }
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let rows: Vec<Row> = by_label(outcomes)
            .into_iter()
            .map(|(_, reps)| Row {
                scheme: reps[0].metrics.str_of("scheme").to_string(),
                pfc: reps[0]
                    .metrics
                    .get("pfc")
                    .and_then(Json::as_bool)
                    .expect("pfc flag in metrics"),
                pause_rate_per_sec: mean_metric(&reps, &["pause_rate_per_sec"]),
                p99_ood: mean_metric(&reps, &["background", "p99_ood"]),
                avg_fct_ms: mean_metric(&reps, &["background", "avg_fct_ms"]),
                p99_fct_ms: mean_metric(&reps, &["background", "p99_fct_ms"]),
            })
            .collect();
        FigureReport {
            sections: vec![(
                "Fig. 3 — LB schemes with vs. without PFC (motivation dumbbell, background flows)"
                    .to_string(),
                render(&rows),
            )],
            rows: rows_json(&rows),
            cdf_dumps: Vec::new(),
        }
    }
}

fn rows_json(rows: &[Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("scheme", Json::Str(r.scheme.clone())),
                    ("pfc", Json::Bool(r.pfc)),
                    ("pause_rate_per_sec", Json::F64(r.pause_rate_per_sec)),
                    ("p99_ood", Json::F64(r.p99_ood)),
                    ("avg_fct_ms", Json::F64(r.avg_fct_ms)),
                    ("p99_fct_ms", Json::F64(r.p99_fct_ms)),
                ])
            })
            .collect(),
    )
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "scheme",
        "pfc",
        "pause_rate/s",
        "p99_ood_pkts",
        "avg_fct_ms",
        "p99_fct_ms",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            if r.pfc { "on" } else { "off" }.to_string(),
            format!("{:.0}", r.pause_rate_per_sec),
            format!("{:.0}", r.p99_ood),
            ms(r.avg_fct_ms),
            ms(r.p99_fct_ms),
        ]);
    }
    t.render()
}
