//! Fig. 3 — how PFC cripples the four load-balancing schemes.
//!
//! The motivation dumbbell (Fig. 2): Web-Search background f1..fn between
//! the two leaves, continuous line-rate 64 KB bursts plus a long congested
//! flow fc (restricted to 5 paths) aimed at one victim receiver. Each
//! scheme runs with PFC enabled and disabled; the figure reports, for the
//! *background* flows: (a) PFC pause rate, (b) 99th-percentile OOD,
//! (c) average FCT, (d) 99th-percentile FCT.

use super::common::{pick, run_variant, RunRow, Variant};
use crate::{sweep::parallel_map, Scale};
use rlb_engine::SimTime;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{motivation, MotivationConfig};

pub struct Row {
    pub scheme: String,
    pub pfc: bool,
    pub pause_rate_per_sec: f64,
    pub p99_ood: f64,
    pub avg_fct_ms: f64,
    pub p99_fct_ms: f64,
}

pub fn config(scale: Scale) -> MotivationConfig {
    MotivationConfig {
        n_paths: 40,
        n_background: pick(scale, 24, 100),
        n_burst_senders: 2,
        n_burst_senders_dst: pick(scale, 2, 3),
        flows_per_burst: 40,
        bursts: 2,
        affected_paths: 5,
        congested_flow_bytes: pick(scale, 30_000_000, 250_000_000),
        background_load: pick(scale, 0.2, 0.3),
        horizon: SimTime::from_ms(pick(scale, 3, 10)),
        seed: 1,
    }
}

pub fn run(scale: Scale) -> Vec<Row> {
    let mc = config(scale);
    let cases: Vec<(Variant, bool)> = rlb_lb::Scheme::PAPER_SET
        .iter()
        .flat_map(|&s| [(Variant::vanilla(s), true), (Variant::vanilla(s), false)])
        .collect();
    parallel_map(cases, |(v, pfc)| {
        let mut sc = motivation(&mc, v.scheme, v.rlb.clone());
        sc.cfg.switch.pfc_enabled = pfc;
        let row: RunRow = run_variant(v.label(), sc);
        Row {
            scheme: row.label.clone(),
            pfc,
            pause_rate_per_sec: row
                .counters
                .pause_rate_per_sec((row.sim_seconds * 1e12) as u64),
            p99_ood: row.background.p99_ood,
            avg_fct_ms: row.background.avg_fct_ms,
            p99_fct_ms: row.background.p99_fct_ms,
        }
    })
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "scheme",
        "pfc",
        "pause_rate/s",
        "p99_ood_pkts",
        "avg_fct_ms",
        "p99_fct_ms",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            if r.pfc { "on" } else { "off" }.to_string(),
            format!("{:.0}", r.pause_rate_per_sec),
            format!("{:.0}", r.p99_ood),
            ms(r.avg_fct_ms),
            ms(r.p99_fct_ms),
        ]);
    }
    t.render()
}
