//! Fig. 9 — the recirculation ablation: Presto+RLB and Hermes+RLB with
//! recirculation enabled vs. disabled ("RLB w/o Recir."), 99th-percentile
//! FCT at 40/60/80 % load, Web Server and Data Mining workloads.

use super::common::{pick, run_metrics, workload_by_name};
use super::{Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_core::RlbConfig;
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{Scenario, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub workload: Workload,
    pub label: String,
    pub load: f64,
    pub p99_fct_ms: f64,
    pub recirculations: u64,
}

pub const LOADS: [f64; 3] = [0.4, 0.6, 0.8];
pub const WORKLOADS: [Workload; 2] = [Workload::WebServer, Workload::DataMining];

pub struct Fig9;

impl Figure for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn description(&self) -> &'static str {
        "Recirculation ablation: RLB vs. RLB w/o Recir., p99 FCT by load"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let mut jobs = Vec::new();
        for workload in WORKLOADS {
            for scheme in [Scheme::Presto, Scheme::Hermes] {
                for recirc in [false, true] {
                    for &load in &LOADS {
                        for &offset in seeds {
                            let rlb = RlbConfig {
                                enable_recirculation: recirc,
                                ..RlbConfig::default()
                            };
                            let variant_label = format!(
                                "{}+RLB{}",
                                scheme.name(),
                                if recirc { "" } else { " w/o Recir." }
                            );
                            let sc = SteadyStateConfig {
                                topo: pick(scale, TopoConfig::default(), TopoConfig::paper_scale()),
                                workload,
                                load,
                                horizon: SimTime::from_ms(pick(scale, 16, 30)),
                                seed: 23 + offset,
                            };
                            let label = format!(
                                "{} {variant_label} load={load:.1}",
                                workload.name()
                            );
                            let spec =
                                format!("scheme={scheme:?}|rlb={rlb:?}|shards={shards}|{sc:?}");
                            let seed = sc.seed;
                            jobs.push(Job {
                                fig: "fig9",
                                label,
                                seed,
                                spec,
                                run: Box::new(move || {
                                    run_metrics(
                                        variant_label.clone(),
                                        Scenario::steady_state(&sc, scheme, Some(rlb.clone())),
                                        shards,
                                        vec![
                                            (
                                                "workload",
                                                Json::Str(workload.name().to_string()),
                                            ),
                                            ("load", Json::F64(load)),
                                        ],
                                    )
                                }),
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let rows: Vec<Row> = by_label(outcomes)
            .into_iter()
            .map(|(_, reps)| Row {
                workload: workload_by_name(reps[0].metrics.str_of("workload")),
                label: reps[0].metrics.str_of("variant").to_string(),
                load: reps[0].metrics.num("load"),
                p99_fct_ms: mean_metric(&reps, &["all", "p99_fct_ms"]),
                recirculations: mean_metric(&reps, &["counters", "recirculations"]).round()
                    as u64,
            })
            .collect();
        FigureReport {
            sections: vec![(
                "Fig. 9 — effectiveness of packet recirculation (99p FCT)".to_string(),
                render(&rows),
            )],
            rows: Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("workload", Json::Str(r.workload.name().to_string())),
                            ("variant", Json::Str(r.label.clone())),
                            ("load", Json::F64(r.load)),
                            ("p99_fct_ms", Json::F64(r.p99_fct_ms)),
                            ("recirculations", Json::U64(r.recirculations)),
                        ])
                    })
                    .collect(),
            ),
            cdf_dumps: Vec::new(),
        }
    }
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["workload", "scheme", "load", "p99_fct_ms", "recirculations"]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.label.clone(),
            format!("{:.0}%", r.load * 100.0),
            ms(r.p99_fct_ms),
            r.recirculations.to_string(),
        ]);
    }
    t.render()
}
