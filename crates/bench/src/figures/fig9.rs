//! Fig. 9 — the recirculation ablation: Presto+RLB and Hermes+RLB with
//! recirculation enabled vs. disabled ("RLB w/o Recir."), 99th-percentile
//! FCT at 40/60/80 % load, Web Server and Data Mining workloads.

use super::common::{pick, run_variant};
use crate::{sweep::parallel_map, Scale};
use rlb_core::RlbConfig;
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{steady_state, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub workload: Workload,
    pub label: String,
    pub load: f64,
    pub p99_fct_ms: f64,
    pub recirculations: u64,
}

pub const LOADS: [f64; 3] = [0.4, 0.6, 0.8];
pub const WORKLOADS: [Workload; 2] = [Workload::WebServer, Workload::DataMining];

pub fn run(scale: Scale) -> Vec<Row> {
    let mut cases = Vec::new();
    for workload in WORKLOADS {
        for scheme in [Scheme::Presto, Scheme::Hermes] {
            for recirc in [false, true] {
                for &load in &LOADS {
                    cases.push((workload, scheme, recirc, load));
                }
            }
        }
    }
    parallel_map(cases, |(workload, scheme, recirc, load)| {
        let rlb = RlbConfig {
            enable_recirculation: recirc,
            ..RlbConfig::default()
        };
        let label = format!(
            "{}+RLB{}",
            scheme.name(),
            if recirc { "" } else { " w/o Recir." }
        );
        let sc = SteadyStateConfig {
            topo: pick(scale, TopoConfig::default(), TopoConfig::paper_scale()),
            workload,
            load,
            horizon: SimTime::from_ms(pick(scale, 16, 30)),
            seed: 23,
        };
        let row = run_variant(label, steady_state(&sc, scheme, Some(rlb)));
        Row {
            workload,
            label: row.label.clone(),
            load,
            p99_fct_ms: row.all.p99_fct_ms,
            recirculations: row.counters.recirculations,
        }
    })
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["workload", "scheme", "load", "p99_fct_ms", "recirculations"]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.label.clone(),
            format!("{:.0}%", r.load * 100.0),
            ms(r.p99_fct_ms),
            r.recirculations.to_string(),
        ]);
    }
    t.render()
}
