//! Fig. 10 — sensitivity of RLB to its two key parameters: the PFC
//! warning threshold Qth (20–80 % of Q_PFC) and the sampling interval Δt
//! (2–5 µs), reported as AFCT normalized to the best setting per workload.
//!
//! Run under DRILL+RLB (the scheme most sensitive to warning quality) on
//! Web Server and Data Mining at 60 % load.

use super::common::{pick, run_variant};
use crate::{sweep::parallel_map, Scale};
use rlb_core::RlbConfig;
use rlb_engine::{SimDuration, SimTime};
use rlb_lb::Scheme;
use rlb_metrics::Table;
use rlb_net::scenario::{steady_state, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub workload: Workload,
    /// The swept parameter rendered as a label ("30%" or "2.5us").
    pub param: String,
    pub avg_fct_ms: f64,
    /// Filled by `normalize`.
    pub normalized_afct: f64,
}

pub const QTH_FRACTIONS: [f64; 7] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
pub const DT_US: [f64; 7] = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];
pub const WORKLOADS: [Workload; 2] = [Workload::WebServer, Workload::DataMining];

/// Seeds averaged per point: single-run deltas on this sweep are within
/// simulation noise, so each point is the mean of three seeds.
const SEEDS: [u64; 3] = [29, 31, 37];

fn run_one(scale: Scale, workload: Workload, rlb: RlbConfig, param: String) -> Row {
    let mut acc = 0.0;
    for &seed in &SEEDS {
        let sc = SteadyStateConfig {
            topo: pick(scale, TopoConfig::default(), TopoConfig::paper_scale()),
            workload,
            load: 0.6,
            horizon: SimTime::from_ms(pick(scale, 16, 30)),
            seed,
        };
        let row = run_variant(
            format!("DRILL+RLB {param}"),
            steady_state(&sc, Scheme::Drill, Some(rlb.clone())),
        );
        acc += row.all.avg_fct_ms;
    }
    Row {
        workload,
        param,
        avg_fct_ms: acc / SEEDS.len() as f64,
        normalized_afct: f64::NAN,
    }
}

/// Normalize AFCT within each workload to that workload's minimum.
pub fn normalize(rows: &mut [Row]) {
    for workload in WORKLOADS {
        let min = rows
            .iter()
            .filter(|r| r.workload == workload)
            .map(|r| r.avg_fct_ms)
            .fold(f64::INFINITY, f64::min);
        for r in rows.iter_mut().filter(|r| r.workload == workload) {
            r.normalized_afct = r.avg_fct_ms / min;
        }
    }
}

pub fn run_qth(scale: Scale) -> Vec<Row> {
    let cases: Vec<(Workload, f64)> = WORKLOADS
        .iter()
        .flat_map(|&w| QTH_FRACTIONS.iter().map(move |&q| (w, q)))
        .collect();
    let mut rows = parallel_map(cases, |(w, q)| {
        let rlb = RlbConfig {
            qth_fraction: q,
            ..RlbConfig::default()
        };
        run_one(scale, w, rlb, format!("{:.0}%", q * 100.0))
    });
    normalize(&mut rows);
    rows
}

pub fn run_dt(scale: Scale) -> Vec<Row> {
    let cases: Vec<(Workload, f64)> = WORKLOADS
        .iter()
        .flat_map(|&w| DT_US.iter().map(move |&d| (w, d)))
        .collect();
    let mut rows = parallel_map(cases, |(w, dt_us)| {
        let base = RlbConfig::default();
        let rlb = RlbConfig {
            dt_ps: SimDuration::from_us_f64(dt_us).as_ps(),
            // Keep the warning lifetime at the same multiple of Δt.
            warn_lifetime_ps: SimDuration::from_us_f64(dt_us * 10.0).as_ps(),
            ..base
        };
        run_one(scale, w, rlb, format!("{dt_us}us"))
    });
    normalize(&mut rows);
    rows
}

/// Supplementary sweep: the same Qth fractions on the pause-heavy
/// motivation scenario (DRILL+RLB, background AFCT). The paper's
/// steady-state framing leaves the predictor nearly idle at Quick scale
/// (see EXPERIMENTS.md), so this is where the threshold's effect shows.
pub fn run_qth_motivation(scale: Scale) -> Vec<Row> {
    use rlb_net::scenario::{motivation, MotivationConfig};
    let rows_raw = parallel_map(QTH_FRACTIONS.to_vec(), |q| {
        let mut acc = 0.0;
        for &seed in &SEEDS {
            let mc = MotivationConfig {
                n_paths: 40,
                n_background: super::common::pick(scale, 24, 100),
                background_load: super::common::pick(scale, 0.2, 0.3),
                congested_flow_bytes: 30_000_000,
                horizon: SimTime::from_ms(super::common::pick(scale, 3, 10)),
                seed,
                ..MotivationConfig::default()
            };
            let rlb = RlbConfig {
                qth_fraction: q,
                ..RlbConfig::default()
            };
            let row = run_variant(
                format!("DRILL+RLB qth {:.0}%", q * 100.0),
                motivation(&mc, Scheme::Drill, Some(rlb)),
            );
            acc += row.background.avg_fct_ms;
        }
        Row {
            workload: Workload::WebSearch, // the motivation background
            param: format!("{:.0}%", q * 100.0),
            avg_fct_ms: acc / SEEDS.len() as f64,
            normalized_afct: f64::NAN,
        }
    });
    let mut rows = rows_raw;
    let min = rows.iter().map(|r| r.avg_fct_ms).fold(f64::INFINITY, f64::min);
    for r in &mut rows {
        r.normalized_afct = r.avg_fct_ms / min;
    }
    rows
}

pub fn render(rows: &[Row], param_name: &str) -> String {
    let mut t = Table::new(vec!["workload", param_name, "afct_ms", "normalized"]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.param.clone(),
            rlb_metrics::ms(r.avg_fct_ms),
            format!("{:.3}", r.normalized_afct),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_sets_min_to_one() {
        let mut rows = vec![
            Row {
                workload: Workload::WebServer,
                param: "a".into(),
                avg_fct_ms: 2.0,
                normalized_afct: f64::NAN,
            },
            Row {
                workload: Workload::WebServer,
                param: "b".into(),
                avg_fct_ms: 3.0,
                normalized_afct: f64::NAN,
            },
            Row {
                workload: Workload::DataMining,
                param: "a".into(),
                avg_fct_ms: 10.0,
                normalized_afct: f64::NAN,
            },
        ];
        normalize(&mut rows);
        assert!((rows[0].normalized_afct - 1.0).abs() < 1e-12);
        assert!((rows[1].normalized_afct - 1.5).abs() < 1e-12);
        assert!(
            (rows[2].normalized_afct - 1.0).abs() < 1e-12,
            "per-workload normalization"
        );
    }
}
