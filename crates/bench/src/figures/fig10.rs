//! Fig. 10 — sensitivity of RLB to its two key parameters: the PFC
//! warning threshold Qth (20–80 % of Q_PFC) and the sampling interval Δt
//! (2–5 µs), reported as AFCT normalized to the best setting per workload.
//!
//! Run under DRILL+RLB (the scheme most sensitive to warning quality) on
//! Web Server and Data Mining at 60 % load.

use super::common::{pick, run_metrics, workload_by_name};
use super::{Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_core::RlbConfig;
use rlb_engine::{SimDuration, SimTime};
use rlb_lb::Scheme;
use rlb_metrics::Table;
use rlb_net::scenario::{MotivationConfig, Scenario, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub workload: Workload,
    /// The swept parameter rendered as a label ("30%" or "2.5us").
    pub param: String,
    pub avg_fct_ms: f64,
    /// Filled by `normalize`.
    pub normalized_afct: f64,
}

pub const QTH_FRACTIONS: [f64; 7] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
pub const DT_US: [f64; 7] = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];
pub const WORKLOADS: [Workload; 2] = [Workload::WebServer, Workload::DataMining];

/// Inner seeds averaged per point: single-run deltas on this sweep are
/// within simulation noise, so each point is the mean of three seeds.
/// CLI seed offsets shift all three bases by `offset * 100` so extra
/// replicates stay disjoint from the defaults.
const SEED_BASES: [u64; 3] = [29, 31, 37];

const PART_QTH: &str = "qth";
const PART_DT: &str = "dt";
const PART_QTH_MOTIVATION: &str = "qth_motivation";

/// Normalize AFCT within each workload to that workload's minimum.
pub fn normalize(rows: &mut [Row]) {
    for workload in [WORKLOADS[0], WORKLOADS[1], Workload::WebSearch] {
        let min = rows
            .iter()
            .filter(|r| r.workload == workload)
            .map(|r| r.avg_fct_ms)
            .fold(f64::INFINITY, f64::min);
        for r in rows.iter_mut().filter(|r| r.workload == workload) {
            r.normalized_afct = r.avg_fct_ms / min;
        }
    }
}

fn inner_seeds(offsets: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &o in offsets {
        for &base in &SEED_BASES {
            out.push(base + o * 100);
        }
    }
    out
}

fn steady_job(
    scale: Scale,
    part: &'static str,
    workload: Workload,
    rlb: RlbConfig,
    param: String,
    seed: u64,
    shards: u16,
) -> Job {
    let sc = SteadyStateConfig {
        topo: pick(scale, TopoConfig::default(), TopoConfig::paper_scale()),
        workload,
        load: 0.6,
        horizon: SimTime::from_ms(pick(scale, 16, 30)),
        seed,
    };
    let label = format!("{part} {} {param}", workload.name());
    let spec = format!("part={part}|scheme=Drill|rlb={rlb:?}|shards={shards}|{sc:?}");
    Job {
        fig: "fig10",
        label,
        seed,
        spec,
        run: Box::new(move || {
            run_metrics(
                format!("DRILL+RLB {param}"),
                Scenario::steady_state(&sc, Scheme::Drill, Some(rlb.clone())),
                shards,
                vec![
                    ("part", Json::Str(part.to_string())),
                    ("workload", Json::Str(workload.name().to_string())),
                    ("param", Json::Str(param.clone())),
                ],
            )
        }),
    }
}

/// Supplementary sweep: the same Qth fractions on the pause-heavy
/// motivation scenario (DRILL+RLB, background AFCT). The paper's
/// steady-state framing leaves the predictor nearly idle at Quick scale
/// (see EXPERIMENTS.md), so this is where the threshold's effect shows.
fn motivation_job(scale: Scale, q: f64, seed: u64, shards: u16) -> Job {
    let mc = MotivationConfig {
        n_paths: 40,
        n_background: pick(scale, 24, 100),
        background_load: pick(scale, 0.2, 0.3),
        congested_flow_bytes: 30_000_000,
        horizon: SimTime::from_ms(pick(scale, 3, 10)),
        seed,
        ..MotivationConfig::default()
    };
    let rlb = RlbConfig {
        qth_fraction: q,
        ..RlbConfig::default()
    };
    let param = format!("{:.0}%", q * 100.0);
    let label = format!("{PART_QTH_MOTIVATION} {param}");
    let spec =
        format!("part={PART_QTH_MOTIVATION}|scheme=Drill|rlb={rlb:?}|shards={shards}|{mc:?}");
    Job {
        fig: "fig10",
        label,
        seed,
        spec,
        run: Box::new(move || {
            run_metrics(
                format!("DRILL+RLB qth {param}"),
                Scenario::motivation(&mc, Scheme::Drill, Some(rlb.clone())),
                shards,
                vec![
                    ("part", Json::Str(PART_QTH_MOTIVATION.to_string())),
                    // The motivation background is Web Search traffic.
                    (
                        "workload",
                        Json::Str(Workload::WebSearch.name().to_string()),
                    ),
                    ("param", Json::Str(param.clone())),
                ],
            )
        }),
    }
}

pub struct Fig10;

impl Figure for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn description(&self) -> &'static str {
        "RLB sensitivity: Qth fraction and sampling interval dt (normalized AFCT)"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let inner = inner_seeds(seeds);
        let mut jobs = Vec::new();
        for workload in WORKLOADS {
            for &q in &QTH_FRACTIONS {
                for &seed in &inner {
                    let rlb = RlbConfig {
                        qth_fraction: q,
                        ..RlbConfig::default()
                    };
                    jobs.push(steady_job(
                        scale,
                        PART_QTH,
                        workload,
                        rlb,
                        format!("{:.0}%", q * 100.0),
                        seed,
                        shards,
                    ));
                }
            }
        }
        for workload in WORKLOADS {
            for &dt_us in &DT_US {
                for &seed in &inner {
                    let rlb = RlbConfig {
                        dt_ps: SimDuration::from_us_f64(dt_us).as_ps(),
                        // Keep the warning lifetime at the same multiple of Δt.
                        warn_lifetime_ps: SimDuration::from_us_f64(dt_us * 10.0).as_ps(),
                        ..RlbConfig::default()
                    };
                    jobs.push(steady_job(
                        scale,
                        PART_DT,
                        workload,
                        rlb,
                        format!("{dt_us}us"),
                        seed,
                        shards,
                    ));
                }
            }
        }
        for &q in &QTH_FRACTIONS {
            for &seed in &inner {
                jobs.push(motivation_job(scale, q, seed, shards));
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let mut sections = Vec::new();
        let mut all_rows = Vec::new();
        for (part, title, param_name, metric) in [
            (
                PART_QTH,
                "Fig. 10(a) — normalized AFCT vs. Qth fraction (DRILL+RLB)",
                "qth",
                &["all", "avg_fct_ms"][..],
            ),
            (
                PART_DT,
                "Fig. 10(b) — normalized AFCT vs. sampling interval dt (DRILL+RLB)",
                "dt",
                &["all", "avg_fct_ms"][..],
            ),
            (
                PART_QTH_MOTIVATION,
                "Fig. 10(a') — Qth sweep on the motivation scenario (background AFCT)",
                "qth",
                &["background", "avg_fct_ms"][..],
            ),
        ] {
            let part_outs: Vec<JobOutcome> = outcomes
                .iter()
                .filter(|o| o.metrics.str_of("part") == part)
                .cloned()
                .collect();
            if part_outs.is_empty() {
                continue;
            }
            let mut rows: Vec<Row> = by_label(&part_outs)
                .into_iter()
                .map(|(_, reps)| Row {
                    workload: workload_by_name(reps[0].metrics.str_of("workload")),
                    param: reps[0].metrics.str_of("param").to_string(),
                    avg_fct_ms: mean_metric(&reps, metric),
                    normalized_afct: f64::NAN,
                })
                .collect();
            normalize(&mut rows);
            sections.push((title.to_string(), render(&rows, param_name)));
            all_rows.extend(rows.iter().map(|r| {
                Json::obj([
                    ("part", Json::Str(part.to_string())),
                    ("workload", Json::Str(r.workload.name().to_string())),
                    ("param", Json::Str(r.param.clone())),
                    ("avg_fct_ms", Json::F64(r.avg_fct_ms)),
                    ("normalized_afct", Json::F64(r.normalized_afct)),
                ])
            }));
        }
        FigureReport {
            sections,
            rows: Json::Arr(all_rows),
            cdf_dumps: Vec::new(),
        }
    }
}

pub fn render(rows: &[Row], param_name: &str) -> String {
    let mut t = Table::new(vec!["workload", param_name, "afct_ms", "normalized"]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.param.clone(),
            rlb_metrics::ms(r.avg_fct_ms),
            format!("{:.3}", r.normalized_afct),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_sets_min_to_one() {
        let mut rows = vec![
            Row {
                workload: Workload::WebServer,
                param: "a".into(),
                avg_fct_ms: 2.0,
                normalized_afct: f64::NAN,
            },
            Row {
                workload: Workload::WebServer,
                param: "b".into(),
                avg_fct_ms: 3.0,
                normalized_afct: f64::NAN,
            },
            Row {
                workload: Workload::DataMining,
                param: "a".into(),
                avg_fct_ms: 10.0,
                normalized_afct: f64::NAN,
            },
        ];
        normalize(&mut rows);
        assert!((rows[0].normalized_afct - 1.0).abs() < 1e-12);
        assert!((rows[1].normalized_afct - 1.5).abs() < 1e-12);
        assert!(
            (rows[2].normalized_afct - 1.0).abs() < 1e-12,
            "per-workload normalization"
        );
    }

    #[test]
    fn inner_seeds_disjoint_across_offsets() {
        let s = inner_seeds(&[0, 1, 2]);
        assert_eq!(s.len(), 9);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 9, "offset*100 keeps replicate seeds disjoint");
        assert_eq!(&s[..3], &[29, 31, 37], "offset 0 preserves the defaults");
    }
}
