//! Fig. 4 — reordering grows with the number of PFC-affected paths (a)
//! and with the number of continuous bursts (b).
//!
//! Same dumbbell as Fig. 3; sweeps the congested traffic's path fan-out
//! (5–30 of 40) and the burst count (1–6), reporting the out-of-order
//! packet ratio of the background flows under each vanilla scheme.

use super::common::{run_metrics, Variant};
use super::{fig3, Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_lb::Scheme;
use rlb_metrics::{pct, Table};
use rlb_net::scenario::Scenario;

pub struct Row {
    pub scheme: String,
    /// Swept x value (affected paths or burst count).
    pub x: u32,
    pub ooo_ratio: f64,
}

pub const AFFECTED_PATHS: [u32; 6] = [5, 10, 15, 20, 25, 30];
pub const BURSTS: [u32; 6] = [1, 2, 3, 4, 5, 6];

const PART_PATHS: &str = "affected_paths";
const PART_BURSTS: &str = "bursts";

pub struct Fig4;

impl Figure for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "OOO packets vs. PFC-affected paths (a) and continuous bursts (b)"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (part, xs) in [(PART_PATHS, AFFECTED_PATHS), (PART_BURSTS, BURSTS)] {
            for &scheme in &Scheme::PAPER_SET {
                for &x in &xs {
                    for &offset in seeds {
                        let mut mc = fig3::config(scale);
                        mc.seed += offset;
                        // Keep the congested traffic intense enough that even
                        // a 30-path fan-out can push every affected ingress
                        // over the PFC threshold (the paper's fc is a
                        // sustained 250 MB flow).
                        mc.n_burst_senders = 4;
                        if part == PART_PATHS {
                            mc.flows_per_burst = 60;
                            mc.bursts = 4;
                            mc.congested_flow_bytes = 60_000_000;
                            mc.affected_paths = x;
                        } else {
                            mc.bursts = x;
                        }
                        let label = format!("{part} {} x={x}", scheme.name());
                        let spec =
                            format!("part={part}|scheme={scheme:?}|rlb=None|shards={shards}|{mc:?}");
                        let seed = mc.seed;
                        jobs.push(Job {
                            fig: "fig4",
                            label,
                            seed,
                            spec,
                            run: Box::new(move || {
                                run_metrics(
                                    Variant::vanilla(scheme).label(),
                                    Scenario::motivation(&mc, scheme, None),
                                    shards,
                                    vec![
                                        ("part", Json::Str(part.to_string())),
                                        ("scheme", Json::Str(scheme.name().to_string())),
                                        ("x", Json::U64(x as u64)),
                                    ],
                                )
                            }),
                        });
                    }
                }
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let mut sections = Vec::new();
        let mut all_rows = Vec::new();
        for (part, title) in [
            (
                PART_PATHS,
                "Fig. 4(a) — out-of-order packets vs. number of affected paths",
            ),
            (
                PART_BURSTS,
                "Fig. 4(b) — out-of-order packets vs. number of continuous bursts",
            ),
        ] {
            let part_outs: Vec<JobOutcome> = outcomes
                .iter()
                .filter(|o| o.metrics.str_of("part") == part)
                .cloned()
                .collect();
            let rows: Vec<Row> = by_label(&part_outs)
                .into_iter()
                .map(|(_, reps)| Row {
                    scheme: reps[0].metrics.str_of("scheme").to_string(),
                    x: reps[0].metrics.num("x") as u32,
                    ooo_ratio: mean_metric(&reps, &["background", "ooo_ratio"]),
                })
                .collect();
            sections.push((title.to_string(), render(&rows, part)));
            all_rows.extend(rows.iter().map(|r| {
                Json::obj([
                    ("part", Json::Str(part.to_string())),
                    ("scheme", Json::Str(r.scheme.clone())),
                    ("x", Json::U64(r.x as u64)),
                    ("ooo_ratio", Json::F64(r.ooo_ratio)),
                ])
            }));
        }
        FigureReport {
            sections,
            rows: Json::Arr(all_rows),
            cdf_dumps: Vec::new(),
        }
    }
}

pub fn render(rows: &[Row], x_name: &str) -> String {
    let mut t = Table::new(vec!["scheme", x_name, "ooo_packets"]);
    for r in rows {
        t.row(vec![r.scheme.clone(), r.x.to_string(), pct(r.ooo_ratio)]);
    }
    t.render()
}
