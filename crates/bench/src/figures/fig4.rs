//! Fig. 4 — reordering grows with the number of PFC-affected paths (a)
//! and with the number of continuous bursts (b).
//!
//! Same dumbbell as Fig. 3; sweeps the congested traffic's path fan-out
//! (5–30 of 40) and the burst count (1–6), reporting the out-of-order
//! packet ratio of the background flows under each vanilla scheme.

use super::common::{run_variant, Variant};
use super::fig3;
use crate::{sweep::parallel_map, Scale};
use rlb_lb::Scheme;
use rlb_metrics::{pct, Table};
use rlb_net::scenario::motivation;

pub struct Row {
    pub scheme: String,
    /// Swept x value (affected paths or burst count).
    pub x: u32,
    pub ooo_ratio: f64,
}

pub const AFFECTED_PATHS: [u32; 6] = [5, 10, 15, 20, 25, 30];
pub const BURSTS: [u32; 6] = [1, 2, 3, 4, 5, 6];

pub fn run_affected_paths(scale: Scale) -> Vec<Row> {
    let cases: Vec<(Scheme, u32)> = Scheme::PAPER_SET
        .iter()
        .flat_map(|&s| AFFECTED_PATHS.iter().map(move |&k| (s, k)))
        .collect();
    parallel_map(cases, |(scheme, k)| {
        let mut mc = fig3::config(scale);
        // Keep the congested traffic intense enough that even a 30-path
        // fan-out can push every affected ingress over the PFC threshold
        // (the paper's fc is a sustained 250 MB flow).
        mc.n_burst_senders = 4;
        mc.flows_per_burst = 60;
        mc.bursts = 4;
        mc.congested_flow_bytes = 60_000_000;
        mc.affected_paths = k;
        let row = run_variant(Variant::vanilla(scheme).label(), motivation(&mc, scheme, None));
        Row {
            scheme: row.label.clone(),
            x: k,
            ooo_ratio: row.background.ooo_ratio,
        }
    })
}

pub fn run_bursts(scale: Scale) -> Vec<Row> {
    let cases: Vec<(Scheme, u32)> = Scheme::PAPER_SET
        .iter()
        .flat_map(|&s| BURSTS.iter().map(move |&b| (s, b)))
        .collect();
    parallel_map(cases, |(scheme, b)| {
        let mut mc = fig3::config(scale);
        mc.n_burst_senders = 4;
        mc.bursts = b;
        let row = run_variant(Variant::vanilla(scheme).label(), motivation(&mc, scheme, None));
        Row {
            scheme: row.label.clone(),
            x: b,
            ooo_ratio: row.background.ooo_ratio,
        }
    })
}

pub fn render(rows: &[Row], x_name: &str) -> String {
    let mut t = Table::new(vec!["scheme", x_name, "ooo_packets"]);
    for r in rows {
        t.row(vec![r.scheme.clone(), r.x.to_string(), pct(r.ooo_ratio)]);
    }
    t.render()
}
