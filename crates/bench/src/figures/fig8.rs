//! Fig. 8 — incast: out-of-order ratio and incast completion time while
//! varying the incast degree (10–25) and total response size (4–10 MB),
//! for all eight scheme variants.

use super::common::{pick, run_variant, Variant};
use crate::{sweep::parallel_map, Scale};
use rlb_engine::SimDuration;
use rlb_metrics::{ms, pct, Table};
use rlb_net::scenario::{incast_scenario, IncastScenarioConfig};
use rlb_net::TopoConfig;

pub struct Row {
    pub label: String,
    pub x: u64,
    pub ooo_ratio: f64,
    pub incast_completion_ms: f64,
}

pub const DEGREES: [u32; 4] = [10, 15, 20, 25];
pub const RESPONSE_MB: [u64; 4] = [4, 6, 8, 10];

fn base_config(scale: Scale) -> IncastScenarioConfig {
    // The Quick fabric needs enough other-leaf hosts for the largest
    // incast degree (25): 4 leaves x 12 hosts leaves 36 candidates.
    let quick_topo = TopoConfig {
        hosts_per_leaf: 12,
        ..TopoConfig::default()
    };
    IncastScenarioConfig {
        topo: pick(scale, quick_topo, TopoConfig::paper_scale()),
        degree: 15,
        total_response_bytes: 4_000_000,
        requests: pick(scale, 8, 20),
        request_interval: SimDuration::from_ms(1),
        background_load: 0.2,
        seed: 17,
    }
}

pub fn run_degrees(scale: Scale) -> Vec<Row> {
    let cases: Vec<(Variant, u32)> = Variant::all_eight()
        .into_iter()
        .flat_map(|v| DEGREES.iter().map(move |&d| (v.clone(), d)))
        .collect();
    parallel_map(cases, |(v, degree)| {
        let mut ic = base_config(scale);
        ic.degree = degree;
        let row = run_variant(v.label(), incast_scenario(&ic, v.scheme, v.rlb.clone()));
        Row {
            label: row.label.clone(),
            x: degree as u64,
            ooo_ratio: row.all.ooo_ratio,
            incast_completion_ms: row.mean_group_completion_ms,
        }
    })
}

pub fn run_response_sizes(scale: Scale) -> Vec<Row> {
    let cases: Vec<(Variant, u64)> = Variant::all_eight()
        .into_iter()
        .flat_map(|v| RESPONSE_MB.iter().map(move |&m| (v.clone(), m)))
        .collect();
    parallel_map(cases, |(v, mb)| {
        let mut ic = base_config(scale);
        ic.total_response_bytes = mb * 1_000_000;
        let row = run_variant(v.label(), incast_scenario(&ic, v.scheme, v.rlb.clone()));
        Row {
            label: row.label.clone(),
            x: mb,
            ooo_ratio: row.all.ooo_ratio,
            incast_completion_ms: row.mean_group_completion_ms,
        }
    })
}

pub fn render(rows: &[Row], x_name: &str) -> String {
    let mut t = Table::new(vec![x_name, "scheme", "ooo_packets", "incast_completion_ms"]);
    for r in rows {
        t.row(vec![
            r.x.to_string(),
            r.label.clone(),
            pct(r.ooo_ratio),
            ms(r.incast_completion_ms),
        ]);
    }
    t.render()
}
