//! Fig. 8 — incast: out-of-order ratio and incast completion time while
//! varying the incast degree (10–25) and total response size (4–10 MB),
//! for all eight scheme variants.

use super::common::{pick, run_metrics, Variant};
use super::{Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_engine::SimDuration;
use rlb_metrics::{ms, pct, Table};
use rlb_net::scenario::{IncastScenarioConfig, Scenario};
use rlb_net::TopoConfig;

pub struct Row {
    pub label: String,
    pub x: u64,
    pub ooo_ratio: f64,
    pub incast_completion_ms: f64,
}

pub const DEGREES: [u32; 4] = [10, 15, 20, 25];
pub const RESPONSE_MB: [u64; 4] = [4, 6, 8, 10];

const PART_DEGREE: &str = "degree";
const PART_RESPONSE: &str = "response_MB";

fn base_config(scale: Scale) -> IncastScenarioConfig {
    // The Quick fabric needs enough other-leaf hosts for the largest
    // incast degree (25): 4 leaves x 12 hosts leaves 36 candidates.
    let quick_topo = TopoConfig {
        hosts_per_leaf: 12,
        ..TopoConfig::default()
    };
    IncastScenarioConfig {
        topo: pick(scale, quick_topo, TopoConfig::paper_scale()),
        degree: 15,
        total_response_bytes: 4_000_000,
        requests: pick(scale, 8, 20),
        request_interval: SimDuration::from_ms(1),
        background_load: 0.2,
        seed: 17,
    }
}

pub struct Fig8;

impl Figure for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn description(&self) -> &'static str {
        "Incast OOO ratio and completion time vs. degree (a,c) and response size (b,d)"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (part, xs) in [
            (PART_DEGREE, DEGREES.map(|d| d as u64)),
            (PART_RESPONSE, RESPONSE_MB),
        ] {
            for v in Variant::all_eight() {
                for &x in &xs {
                    for &offset in seeds {
                        let mut ic = base_config(scale);
                        ic.seed += offset;
                        if part == PART_DEGREE {
                            ic.degree = x as u32;
                        } else {
                            ic.total_response_bytes = x * 1_000_000;
                        }
                        let label = format!("{part} {} x={x}", v.label());
                        let spec = format!(
                            "part={part}|scheme={:?}|rlb={:?}|shards={shards}|{ic:?}",
                            v.scheme, v.rlb
                        );
                        let seed = ic.seed;
                        let v = v.clone();
                        jobs.push(Job {
                            fig: "fig8",
                            label,
                            seed,
                            spec,
                            run: Box::new(move || {
                                run_metrics(
                                    v.label(),
                                    Scenario::incast(&ic, v.scheme, v.rlb.clone()),
                                    shards,
                                    vec![
                                        ("part", Json::Str(part.to_string())),
                                        ("x", Json::U64(x)),
                                    ],
                                )
                            }),
                        });
                    }
                }
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let mut sections = Vec::new();
        let mut all_rows = Vec::new();
        for (part, title) in [
            (
                PART_DEGREE,
                "Fig. 8(a,c) — varying incast degree (total response 4MB)",
            ),
            (
                PART_RESPONSE,
                "Fig. 8(b,d) — varying total response size (degree 15)",
            ),
        ] {
            let part_outs: Vec<JobOutcome> = outcomes
                .iter()
                .filter(|o| o.metrics.str_of("part") == part)
                .cloned()
                .collect();
            let rows: Vec<Row> = by_label(&part_outs)
                .into_iter()
                .map(|(_, reps)| Row {
                    label: reps[0].metrics.str_of("variant").to_string(),
                    x: reps[0]
                        .metrics
                        .get("x")
                        .and_then(Json::as_u64)
                        .expect("x in metrics"),
                    ooo_ratio: mean_metric(&reps, &["all", "ooo_ratio"]),
                    incast_completion_ms: mean_metric(&reps, &["mean_group_completion_ms"]),
                })
                .collect();
            sections.push((title.to_string(), render(&rows, part)));
            all_rows.extend(rows.iter().map(|r| {
                Json::obj([
                    ("part", Json::Str(part.to_string())),
                    ("variant", Json::Str(r.label.clone())),
                    ("x", Json::U64(r.x)),
                    ("ooo_ratio", Json::F64(r.ooo_ratio)),
                    ("incast_completion_ms", Json::F64(r.incast_completion_ms)),
                ])
            }));
        }
        FigureReport {
            sections,
            rows: Json::Arr(all_rows),
            cdf_dumps: Vec::new(),
        }
    }
}

pub fn render(rows: &[Row], x_name: &str) -> String {
    let mut t = Table::new(vec![x_name, "scheme", "ooo_packets", "incast_completion_ms"]);
    for r in rows {
        t.row(vec![
            r.x.to_string(),
            r.label.clone(),
            pct(r.ooo_ratio),
            ms(r.incast_completion_ms),
        ]);
    }
    t.render()
}
