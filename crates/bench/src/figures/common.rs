//! Shared plumbing for the per-figure experiment modules.

use crate::json::Json;
use crate::Scale;
use rlb_core::RlbConfig;
use rlb_lb::Scheme;
use rlb_metrics::{FabricCounters, FctSummary, FlowRecord};
use rlb_net::scenario::{Scenario, BACKGROUND_GROUP};
use rlb_net::RunResult;
use rlb_workloads::Workload;

/// A scheme variant under test.
#[derive(Debug, Clone)]
pub struct Variant {
    pub scheme: Scheme,
    pub rlb: Option<RlbConfig>,
}

impl Variant {
    pub fn vanilla(scheme: Scheme) -> Variant {
        Variant { scheme, rlb: None }
    }

    pub fn with_rlb(scheme: Scheme) -> Variant {
        Variant {
            scheme,
            rlb: Some(RlbConfig::default()),
        }
    }

    pub fn label(&self) -> String {
        match &self.rlb {
            Some(_) => format!("{}+RLB", self.scheme.name()),
            None => self.scheme.name().to_string(),
        }
    }

    /// The paper's four schemes, vanilla and RLB-enhanced (8 variants).
    pub fn all_eight() -> Vec<Variant> {
        Scheme::PAPER_SET
            .iter()
            .flat_map(|&s| [Variant::vanilla(s), Variant::with_rlb(s)])
            .collect()
    }
}

/// One completed run, reduced to what the figures report.
pub struct RunRow {
    pub label: String,
    /// Summary over all flows.
    pub all: FctSummary,
    /// Summary restricted to the measured background flows (motivation
    /// scenarios tag them; empty scenarios fall back to `all`).
    pub background: FctSummary,
    pub counters: FabricCounters,
    pub sim_seconds: f64,
    /// Mean incast (group) completion time, ms; NaN without groups.
    pub mean_group_completion_ms: f64,
    /// FCT CDF over all completed flows, downsampled.
    pub fct_cdf: Vec<(f64, f64)>,
    /// Events dispatched by the engine during this run.
    pub events_processed: u64,
    /// Wall-clock cost of the run, ms (measurement only — never feeds back
    /// into the simulation, and `--stable-json` strips it from reports).
    pub wall_ms: f64,
    /// Engine throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Source-leaf LB decisions and how their path snapshots were served
    /// (cache reuse / in-place refresh / full rebuild).
    pub decisions: u64,
    pub snapshot_reuses: u64,
    pub snapshot_refreshes: u64,
    pub snapshot_rebuilds: u64,
    /// Dirty-spine split of the refresh work (queue-side / signal-side).
    pub snapshot_dirty_queue_spines: u64,
    pub snapshot_dirty_sig_spines: u64,
    /// Packet-arena occupancy telemetry: peak live packets and slots ever
    /// allocated (backing-store footprint).
    pub arena_high_water: u64,
    pub arena_capacity: u64,
    /// Sharded-driver telemetry (all zero except `shards`=1 when the run
    /// was sequential): shard count, bounded-window rounds, cross-shard
    /// wire messages, zero-dispatch (shard, round) pairs, and the sum of
    /// per-shard dispatch throughputs over time spent dispatching.
    pub shards: u64,
    pub window_advances: u64,
    pub cross_shard_messages: u64,
    pub barrier_stalls: u64,
    pub aggregate_events_per_sec: f64,
}

pub fn reduce(label: String, res: RunResult) -> RunRow {
    let bg: Vec<FlowRecord> = res
        .records
        .iter()
        .zip(res.groups.iter())
        .filter(|(_, g)| **g == BACKGROUND_GROUP)
        .map(|(r, _)| r.clone())
        .collect();
    let background = if bg.is_empty() {
        FctSummary::from_records(&res.records)
    } else {
        FctSummary::from_records(&bg)
    };
    let groups = res.group_completion_ms();
    let mean_group = if groups.is_empty() {
        f64::NAN
    } else {
        groups.iter().map(|(_, t)| t).sum::<f64>() / groups.len() as f64
    };
    let cdf = rlb_metrics::downsample_cdf(&rlb_metrics::fct_cdf(&res.records), 25);
    RunRow {
        label,
        all: res.summary(),
        background,
        counters: res.counters,
        sim_seconds: res.end_time.as_secs_f64(),
        mean_group_completion_ms: mean_group,
        fct_cdf: cdf,
        events_processed: res.events_processed,
        wall_ms: res.perf.wall_ms,
        events_per_sec: res.perf.events_per_sec,
        decisions: res.perf.decisions,
        snapshot_reuses: res.perf.snapshot_reuses,
        snapshot_refreshes: res.perf.snapshot_refreshes,
        snapshot_rebuilds: res.perf.snapshot_rebuilds,
        snapshot_dirty_queue_spines: res.perf.snapshot_dirty_queue_spines,
        snapshot_dirty_sig_spines: res.perf.snapshot_dirty_sig_spines,
        arena_high_water: res.perf.arena_high_water,
        arena_capacity: res.perf.arena_capacity,
        shards: res.perf.shards,
        window_advances: res.perf.window_advances,
        cross_shard_messages: res.perf.cross_shard_messages,
        barrier_stalls: res.perf.barrier_stalls,
        aggregate_events_per_sec: res.perf.aggregate_events_per_sec,
    }
}

pub fn run_variant(label: String, sc: Scenario) -> RunRow {
    reduce(label, sc.run())
}

/// Per-scale knob helper.
pub fn pick<T>(scale: Scale, quick: T, paper: T) -> T {
    match scale {
        Scale::Quick => quick,
        Scale::Paper => paper,
    }
}

/// Inverse of [`Workload::name`], for reduce steps reading metrics back.
pub fn workload_by_name(name: &str) -> Workload {
    Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` in metrics"))
}

fn summary_json(s: &FctSummary) -> Json {
    Json::obj([
        ("flows_total", Json::U64(s.flows_total as u64)),
        ("flows_completed", Json::U64(s.flows_completed as u64)),
        ("avg_fct_ms", Json::F64(s.avg_fct_ms)),
        ("p50_fct_ms", Json::F64(s.p50_fct_ms)),
        ("p95_fct_ms", Json::F64(s.p95_fct_ms)),
        ("p99_fct_ms", Json::F64(s.p99_fct_ms)),
        ("max_fct_ms", Json::F64(s.max_fct_ms)),
        ("ooo_ratio", Json::F64(s.ooo_ratio)),
        ("p99_ood", Json::F64(s.p99_ood)),
        ("total_ooo_packets", Json::U64(s.total_ooo_packets)),
        ("total_packets_sent", Json::U64(s.total_packets_sent)),
        ("total_naks", Json::U64(s.total_naks)),
        ("total_recirculations", Json::U64(s.total_recirculations)),
    ])
}

fn counters_json(c: &FabricCounters) -> Json {
    Json::obj([
        ("pause_frames", Json::U64(c.pause_frames)),
        ("resume_frames", Json::U64(c.resume_frames)),
        ("paused_port_time_ps", Json::U64(c.paused_port_time_ps)),
        ("cnm_generated", Json::U64(c.cnm_generated)),
        ("cnm_relayed", Json::U64(c.cnm_relayed)),
        ("recirculations", Json::U64(c.recirculations)),
        ("reroutes", Json::U64(c.reroutes)),
        ("forwards_unwarned", Json::U64(c.forwards_unwarned)),
        (
            "recirculation_budget_exhausted",
            Json::U64(c.recirculation_budget_exhausted),
        ),
        ("buffer_drops", Json::U64(c.buffer_drops)),
        ("switch_packets", Json::U64(c.switch_packets)),
        ("ecn_marks", Json::U64(c.ecn_marks)),
        ("faults_applied", Json::U64(c.faults_applied)),
    ])
}

/// The standard metrics object every runner job produces: figure-specific
/// `extras` first (sweep coordinates — scheme, x, load, ...), then the
/// full FCT summaries (all flows and measured background flows), fabric
/// counters, and the downsampled FCT CDF. Reduce steps read from this;
/// the JSON report embeds it verbatim, so the perf trajectory keeps every
/// signal even where a figure's table only shows two columns.
///
/// `shards` selects the parallel bounded-window driver (`--shards`); every
/// shard count produces byte-identical simulation output, so only the
/// perf block (stripped under `--stable-json`) reflects the choice.
pub fn run_metrics(
    label: String,
    sc: Scenario,
    shards: u16,
    extras: Vec<(&'static str, Json)>,
) -> Json {
    let row = reduce(label, sc.run_with_shards(shards));
    let mut m = Json::Obj(Vec::new());
    for (k, v) in extras {
        m.set(k, v);
    }
    m.set("variant", Json::Str(row.label.clone()));
    m.set("all", summary_json(&row.all));
    m.set("background", summary_json(&row.background));
    m.set("counters", counters_json(&row.counters));
    m.set("sim_seconds", Json::F64(row.sim_seconds));
    m.set(
        "pause_rate_per_sec",
        Json::F64(
            row.counters
                .pause_rate_per_sec((row.sim_seconds * 1e12) as u64),
        ),
    );
    m.set(
        "mean_group_completion_ms",
        Json::F64(row.mean_group_completion_ms),
    );
    m.set(
        "fct_cdf",
        Json::Arr(
            row.fct_cdf
                .iter()
                .map(|&(x, p)| Json::Arr(vec![Json::F64(x), Json::F64(p)]))
                .collect(),
        ),
    );
    // Wall-clock telemetry: `drive::point_json` strips this whole block
    // under `--stable-json` (events_processed alone is deterministic, but
    // the block is removed as a unit to keep the stable schema minimal).
    m.set(
        "perf",
        Json::obj([
            ("events_processed", Json::U64(row.events_processed)),
            ("wall_ms", Json::F64(row.wall_ms)),
            ("events_per_sec", Json::F64(row.events_per_sec)),
            ("decisions", Json::U64(row.decisions)),
            ("snapshot_reuses", Json::U64(row.snapshot_reuses)),
            ("snapshot_refreshes", Json::U64(row.snapshot_refreshes)),
            ("snapshot_rebuilds", Json::U64(row.snapshot_rebuilds)),
            (
                "snapshot_dirty_queue_spines",
                Json::U64(row.snapshot_dirty_queue_spines),
            ),
            (
                "snapshot_dirty_sig_spines",
                Json::U64(row.snapshot_dirty_sig_spines),
            ),
            ("arena_high_water", Json::U64(row.arena_high_water)),
            ("arena_capacity", Json::U64(row.arena_capacity)),
            ("shards", Json::U64(row.shards)),
            ("window_advances", Json::U64(row.window_advances)),
            ("cross_shard_messages", Json::U64(row.cross_shard_messages)),
            ("barrier_stalls", Json::U64(row.barrier_stalls)),
            (
                "aggregate_events_per_sec",
                Json::F64(row.aggregate_events_per_sec),
            ),
        ]),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::vanilla(Scheme::Drill).label(), "DRILL");
        assert_eq!(Variant::with_rlb(Scheme::Presto).label(), "Presto+RLB");
        let all = Variant::all_eight();
        assert_eq!(all.len(), 8);
        assert!(all[0].rlb.is_none() && all[1].rlb.is_some());
    }

    #[test]
    fn pick_by_scale() {
        assert_eq!(pick(Scale::Quick, 1, 2), 1);
        assert_eq!(pick(Scale::Paper, 1, 2), 2);
    }
}
