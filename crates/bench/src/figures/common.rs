//! Shared plumbing for the per-figure experiment modules.

use crate::Scale;
use rlb_core::RlbConfig;
use rlb_lb::Scheme;
use rlb_metrics::{FabricCounters, FctSummary, FlowRecord};
use rlb_net::scenario::{Scenario, BACKGROUND_GROUP};
use rlb_net::RunResult;

/// A scheme variant under test.
#[derive(Debug, Clone)]
pub struct Variant {
    pub scheme: Scheme,
    pub rlb: Option<RlbConfig>,
}

impl Variant {
    pub fn vanilla(scheme: Scheme) -> Variant {
        Variant { scheme, rlb: None }
    }

    pub fn with_rlb(scheme: Scheme) -> Variant {
        Variant {
            scheme,
            rlb: Some(RlbConfig::default()),
        }
    }

    pub fn label(&self) -> String {
        match &self.rlb {
            Some(_) => format!("{}+RLB", self.scheme.name()),
            None => self.scheme.name().to_string(),
        }
    }

    /// The paper's four schemes, vanilla and RLB-enhanced (8 variants).
    pub fn all_eight() -> Vec<Variant> {
        Scheme::PAPER_SET
            .iter()
            .flat_map(|&s| [Variant::vanilla(s), Variant::with_rlb(s)])
            .collect()
    }
}

/// One completed run, reduced to what the figures report.
pub struct RunRow {
    pub label: String,
    /// Summary over all flows.
    pub all: FctSummary,
    /// Summary restricted to the measured background flows (motivation
    /// scenarios tag them; empty scenarios fall back to `all`).
    pub background: FctSummary,
    pub counters: FabricCounters,
    pub sim_seconds: f64,
    /// Mean incast (group) completion time, ms; NaN without groups.
    pub mean_group_completion_ms: f64,
    /// FCT CDF over all completed flows, downsampled.
    pub fct_cdf: Vec<(f64, f64)>,
}

pub fn reduce(label: String, res: RunResult) -> RunRow {
    let bg: Vec<FlowRecord> = res
        .records
        .iter()
        .zip(res.groups.iter())
        .filter(|(_, g)| **g == BACKGROUND_GROUP)
        .map(|(r, _)| r.clone())
        .collect();
    let background = if bg.is_empty() {
        FctSummary::from_records(&res.records)
    } else {
        FctSummary::from_records(&bg)
    };
    let groups = res.group_completion_ms();
    let mean_group = if groups.is_empty() {
        f64::NAN
    } else {
        groups.iter().map(|(_, t)| t).sum::<f64>() / groups.len() as f64
    };
    let cdf = rlb_metrics::downsample_cdf(&rlb_metrics::fct_cdf(&res.records), 25);
    RunRow {
        label,
        all: res.summary(),
        background,
        counters: res.counters,
        sim_seconds: res.end_time.as_secs_f64(),
        mean_group_completion_ms: mean_group,
        fct_cdf: cdf,
    }
}

pub fn run_variant(label: String, sc: Scenario) -> RunRow {
    reduce(label, sc.run())
}

/// Per-scale knob helper.
pub fn pick<T>(scale: Scale, quick: T, paper: T) -> T {
    match scale {
        Scale::Quick => quick,
        Scale::Paper => paper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::vanilla(Scheme::Drill).label(), "DRILL");
        assert_eq!(Variant::with_rlb(Scheme::Presto).label(), "Presto+RLB");
        let all = Variant::all_eight();
        assert_eq!(all.len(), 8);
        assert!(all[0].rlb.is_none() && all[1].rlb.is_some());
    }

    #[test]
    fn pick_by_scale() {
        assert_eq!(pick(Scale::Quick, 1, 2), 1);
        assert_eq!(pick(Scale::Paper, 1, 2), 2);
    }
}
