//! One module per figure of the paper's evaluation (the paper has no
//! numbered tables). Each exposes `run(scale)` returning structured rows
//! and a `render` producing the aligned table the `figN` binaries print.

pub mod common;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
