//! One module per figure of the paper's evaluation (the paper has no
//! numbered tables), unified behind the [`Figure`] trait.
//!
//! Each figure describes itself as a set of [`Job`]s — one per (variant,
//! sweep point, seed) — and a `reduce` step that folds the jobs' metrics
//! back into the figure's rows and rendered tables. The runner
//! (`crate::runner`) executes any job set in parallel with caching; the
//! binaries and `crate::drive` never hand-match on figure names — they go
//! through [`registry`].

pub mod common;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig_fail;

use crate::json::Json;
use crate::runner::{Job, JobOutcome};
use crate::Scale;

/// Reduced output of one figure: rendered tables plus structured rows for
/// the JSON report.
pub struct FigureReport {
    /// `(title, rendered table)` in print order.
    pub sections: Vec<(String, String)>,
    /// Structured rows (an array, figure-specific layout) embedded in the
    /// `BENCH_*.json` report.
    pub rows: Json,
    /// Optional gnuplot-style series dumps (fig6's CDFs), printed only
    /// when `--cdf` is passed.
    pub cdf_dumps: Vec<String>,
}

/// A paper figure as an executable experiment family.
pub trait Figure: Sync {
    /// Registry name (`"fig3"`, ... — what `--figs` matches).
    fn name(&self) -> &'static str;

    /// One-line description for `--help`-ish listings and reports.
    fn description(&self) -> &'static str;

    /// Expand into runnable jobs. `seeds` are *offsets* (0, 1, ..): each
    /// point replicates once per offset, with the figure's base seed
    /// shifted by it; `reduce` averages replicates per point. `shards` is
    /// the parallel-driver shard count (1 = sequential engine) — it is
    /// part of each job's cache-key spec because it changes the perf
    /// telemetry, even though the simulation output is byte-identical.
    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job>;

    /// Fold this figure's outcomes (all seeds) back into rows/tables.
    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport;
}

/// Every figure, in paper order, then the extras the paper never ran
/// (`fig_fail`). The single source of truth driving `all_figs`, the
/// per-figure binaries, and `--figs` filtering.
pub fn registry() -> &'static [&'static dyn Figure] {
    &[
        &fig3::Fig3,
        &fig4::Fig4,
        &fig6::Fig6,
        &fig7::Fig7,
        &fig8::Fig8,
        &fig9::Fig9,
        &fig10::Fig10,
        &fig_fail::FigFail,
    ]
}

/// Look a figure up by registry name.
pub fn by_name(name: &str) -> Option<&'static dyn Figure> {
    registry().iter().copied().find(|f| f.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = registry().iter().map(|f| f.name()).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate figure name {n}");
            assert_eq!(by_name(n).expect("resolvable").name(), *n);
            assert!(!by_name(n).expect("resolvable").description().is_empty());
        }
        assert!(by_name("fig99").is_none());
        assert_eq!(
            names,
            vec!["fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig_fail"]
        );
    }

    #[test]
    fn every_figure_expands_jobs_with_correct_fig_tag_and_seeds() {
        for fig in registry() {
            let jobs = fig.jobs(Scale::Quick, &[0, 1], 1);
            assert!(!jobs.is_empty(), "{} has no jobs", fig.name());
            let single = fig.jobs(Scale::Quick, &[0], 1);
            assert_eq!(jobs.len(), 2 * single.len(), "{}: seeds scale jobs", fig.name());
            for j in &jobs {
                assert_eq!(j.fig, fig.name());
                assert!(!j.spec.is_empty(), "{}: empty spec", fig.name());
                assert!(!j.label.is_empty(), "{}: empty label", fig.name());
            }
            // Same (label, seed) must never repeat — it would collide in
            // the cache and double-count in reduce.
            let mut ids: Vec<(String, u64)> =
                jobs.iter().map(|j| (j.label.clone(), j.seed)).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), before, "{}: duplicate (label, seed)", fig.name());
        }
    }

    #[test]
    fn shard_count_changes_every_cache_key() {
        // `--shards` changes the perf telemetry, so cached metrics from a
        // different shard count must never be served.
        for fig in registry() {
            let seq: Vec<u64> = fig.jobs(Scale::Quick, &[0], 1).iter().map(Job::key).collect();
            let par: Vec<u64> = fig.jobs(Scale::Quick, &[0], 4).iter().map(Job::key).collect();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_ne!(a, b, "{}: shard count missing from a job spec", fig.name());
            }
        }
    }
}
