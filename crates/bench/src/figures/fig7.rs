//! Fig. 7 — average FCT vs. load (0.2–0.7) under the asymmetric topology
//! (20% of leaf–spine links degraded 40→10 Gbps), DRILL and Hermes with
//! and without RLB, across all four workloads.

use super::common::{pick, run_variant, Variant};
use crate::{sweep::parallel_map, Scale};
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{asymmetric_topo, steady_state, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub workload: Workload,
    pub label: String,
    pub load: f64,
    pub avg_fct_ms: f64,
    pub p99_fct_ms: f64,
}

pub const LOADS: [f64; 6] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];

pub fn variants() -> Vec<Variant> {
    vec![
        Variant::vanilla(Scheme::Drill),
        Variant::with_rlb(Scheme::Drill),
        Variant::vanilla(Scheme::Hermes),
        Variant::with_rlb(Scheme::Hermes),
    ]
}

pub fn run(scale: Scale, workload: Workload) -> Vec<Row> {
    let base = pick(scale, TopoConfig::default(), TopoConfig::paper_scale());
    let topo = asymmetric_topo(&base, 0.2, 42);
    let cases: Vec<(Variant, f64)> = variants()
        .into_iter()
        .flat_map(|v| LOADS.iter().map(move |&l| (v.clone(), l)))
        .collect();
    parallel_map(cases, |(v, load)| {
        let sc = SteadyStateConfig {
            topo: topo.clone(),
            workload,
            load,
            horizon: SimTime::from_ms(pick(scale, 8, 20)),
            seed: 13,
        };
        let row = run_variant(v.label(), steady_state(&sc, v.scheme, v.rlb.clone()));
        Row {
            workload,
            label: row.label.clone(),
            load,
            avg_fct_ms: row.all.avg_fct_ms,
            p99_fct_ms: row.all.p99_fct_ms,
        }
    })
}

pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["workload", "scheme", "load", "avg_fct_ms", "p99_fct_ms"]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.label.clone(),
            format!("{:.1}", r.load),
            ms(r.avg_fct_ms),
            ms(r.p99_fct_ms),
        ]);
    }
    t.render()
}
