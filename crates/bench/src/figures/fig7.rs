//! Fig. 7 — average FCT vs. load (0.2–0.7) under the asymmetric topology
//! (20% of leaf–spine links degraded 40→10 Gbps), DRILL and Hermes with
//! and without RLB, across all four workloads.

use super::common::{pick, run_metrics, workload_by_name, Variant};
use super::{Figure, FigureReport};
use crate::json::Json;
use crate::runner::{by_label, mean_metric, Job, JobOutcome};
use crate::Scale;
use rlb_engine::SimTime;
use rlb_lb::Scheme;
use rlb_metrics::{ms, Table};
use rlb_net::scenario::{asymmetric_topo, Scenario, SteadyStateConfig};
use rlb_net::TopoConfig;
use rlb_workloads::Workload;

pub struct Row {
    pub workload: Workload,
    pub label: String,
    pub load: f64,
    pub avg_fct_ms: f64,
    pub p99_fct_ms: f64,
}

pub const LOADS: [f64; 6] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];

pub fn variants() -> Vec<Variant> {
    vec![
        Variant::vanilla(Scheme::Drill),
        Variant::with_rlb(Scheme::Drill),
        Variant::vanilla(Scheme::Hermes),
        Variant::with_rlb(Scheme::Hermes),
    ]
}

pub struct Fig7;

impl Figure for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "AFCT vs. load, asymmetric topology (20% links at 10G), 4 workloads"
    }

    fn jobs(&self, scale: Scale, seeds: &[u64], shards: u16) -> Vec<Job> {
        let base = pick(scale, TopoConfig::default(), TopoConfig::paper_scale());
        let topo = asymmetric_topo(&base, 0.2, 42);
        let mut jobs = Vec::new();
        for workload in Workload::ALL {
            for v in variants() {
                for &load in &LOADS {
                    for &offset in seeds {
                        let sc = SteadyStateConfig {
                            topo: topo.clone(),
                            workload,
                            load,
                            horizon: SimTime::from_ms(pick(scale, 8, 20)),
                            seed: 13 + offset,
                        };
                        let label =
                            format!("{} {} load={load:.1}", workload.name(), v.label());
                        let spec = format!(
                            "scheme={:?}|rlb={:?}|shards={shards}|{sc:?}",
                            v.scheme, v.rlb
                        );
                        let seed = sc.seed;
                        let v = v.clone();
                        jobs.push(Job {
                            fig: "fig7",
                            label,
                            seed,
                            spec,
                            run: Box::new(move || {
                                run_metrics(
                                    v.label(),
                                    Scenario::steady_state(&sc, v.scheme, v.rlb.clone()),
                                    shards,
                                    vec![
                                        ("workload", Json::Str(workload.name().to_string())),
                                        ("load", Json::F64(load)),
                                    ],
                                )
                            }),
                        });
                    }
                }
            }
        }
        jobs
    }

    fn reduce(&self, outcomes: &[JobOutcome]) -> FigureReport {
        let rows: Vec<Row> = by_label(outcomes)
            .into_iter()
            .map(|(_, reps)| Row {
                workload: workload_by_name(reps[0].metrics.str_of("workload")),
                label: reps[0].metrics.str_of("variant").to_string(),
                load: reps[0].metrics.num("load"),
                avg_fct_ms: mean_metric(&reps, &["all", "avg_fct_ms"]),
                p99_fct_ms: mean_metric(&reps, &["all", "p99_fct_ms"]),
            })
            .collect();
        let mut sections = Vec::new();
        for workload in Workload::ALL {
            let wl_rows: Vec<&Row> = rows.iter().filter(|r| r.workload == workload).collect();
            if wl_rows.is_empty() {
                continue;
            }
            sections.push((
                format!(
                    "Fig. 7 — AFCT vs. load, asymmetric topology ({})",
                    workload.name()
                ),
                render_refs(&wl_rows),
            ));
        }
        FigureReport {
            sections,
            rows: Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("workload", Json::Str(r.workload.name().to_string())),
                            ("variant", Json::Str(r.label.clone())),
                            ("load", Json::F64(r.load)),
                            ("avg_fct_ms", Json::F64(r.avg_fct_ms)),
                            ("p99_fct_ms", Json::F64(r.p99_fct_ms)),
                        ])
                    })
                    .collect(),
            ),
            cdf_dumps: Vec::new(),
        }
    }
}

fn render_refs(rows: &[&Row]) -> String {
    let mut t = Table::new(vec!["workload", "scheme", "load", "avg_fct_ms", "p99_fct_ms"]);
    for r in rows {
        t.row(vec![
            r.workload.name().to_string(),
            r.label.clone(),
            format!("{:.1}", r.load),
            ms(r.avg_fct_ms),
            ms(r.p99_fct_ms),
        ]);
    }
    t.render()
}

pub fn render(rows: &[Row]) -> String {
    render_refs(&rows.iter().collect::<Vec<_>>())
}
