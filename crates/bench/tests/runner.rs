//! End-to-end runner guarantees on a real figure (fig3 at Quick scale):
//!
//!   * cache keys are pure functions of the serialized config — stable
//!     across expansions, changed by any config field change;
//!   * two cold runs produce byte-identical `--stable-json` reports
//!     (simulation + report determinism);
//!   * a warm re-run over the same cache executes zero simulations.
//!
//! The simulations here are the slowest tests in the workspace (~8 quick
//! motivation runs per cold pass), so everything shares one test body.

use rlb_bench::cli::BenchCli;
use rlb_bench::drive::build_report;
use rlb_bench::figures::by_name;
use rlb_bench::runner::{run_jobs, RunSummary, RunnerConfig};
use rlb_bench::Scale;
use std::path::PathBuf;

#[test]
fn cache_keys_are_stable_and_config_sensitive() {
    let fig = by_name("fig3").expect("fig3 registered");
    let keys = |scale, offsets: &[u64]| -> Vec<u64> {
        fig.jobs(scale, offsets, 1).iter().map(|j| j.key()).collect()
    };
    // Same config → same hash, independent of when the jobs were expanded.
    assert_eq!(keys(Scale::Quick, &[0]), keys(Scale::Quick, &[0]));
    // Any field change → a new hash: a different seed offset ...
    let base = keys(Scale::Quick, &[0]);
    for k in keys(Scale::Quick, &[1]) {
        assert!(!base.contains(&k), "seed change must change every key");
    }
    // ... or a different scale (horizon/fabric fields in the spec).
    for k in keys(Scale::Paper, &[0]) {
        assert!(!base.contains(&k), "scale change must change every key");
    }
    // And keys are unique within the batch.
    let mut uniq = base.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), base.len(), "key collision inside fig3's batch");
}

fn run_fig3(cache_dir: PathBuf, cli: &BenchCli) -> (String, RunSummary) {
    let fig = by_name("fig3").expect("fig3 registered");
    let jobs = fig.jobs(Scale::Quick, &[0], cli.shards);
    let summary = run_jobs(
        jobs,
        &RunnerConfig {
            threads: None,
            cache_dir: Some(cache_dir),
            progress: false,
        },
    )
    .expect("fig3 batch");
    let report = fig.reduce(&summary.outcomes);
    let json = build_report(cli, &[(fig, report)], &summary);
    (json.pretty(), summary)
}

#[test]
fn fig3_quick_reports_are_deterministic_and_warm_runs_are_all_cached() {
    let tmp = std::env::temp_dir().join(format!("rlb-bench-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let cli = BenchCli {
        stable_json: true,
        ..BenchCli::default()
    };

    // Two *cold* runs against independent caches: byte-identical reports.
    let (report_a, cold_a) = run_fig3(tmp.join("a"), &cli);
    assert!(cold_a.executed > 0 && cold_a.cache_hits == 0, "run A must be cold");
    let (report_b, cold_b) = run_fig3(tmp.join("b"), &cli);
    assert_eq!(cold_b.cache_hits, 0, "run B must be cold");
    assert_eq!(
        report_a, report_b,
        "two cold fig3 Quick runs must produce byte-identical stable reports"
    );

    // A *warm* run on A's cache: zero simulations executed, same report.
    let (report_c, warm) = run_fig3(tmp.join("a"), &cli);
    assert_eq!(warm.executed, 0, "warm run must execute no simulations");
    assert_eq!(warm.cache_hits, cold_a.executed + cold_a.cache_hits);
    assert_eq!(report_a, report_c, "cache hits must reproduce the report");

    let _ = std::fs::remove_dir_all(&tmp);
}
