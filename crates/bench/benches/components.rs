//! Micro-benchmarks of the hot components: the event queue, the PFC
//! predictor, Algorithm 1, the LB schemes' per-packet decisions, workload
//! sampling and the metrics kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rlb_core::{algorithm1, PfcPredictor, RlbConfig};
use rlb_engine::{substream, EventQueue, SimTime};
use rlb_lb::{build, Ctx, PathInfo, Scheme};
use rlb_workloads::SizeCdf;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime(i * 37 % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("core/pfc_predictor_sample", |b| {
        let mut p = PfcPredictor::new(64_000, 256_000, 4_000_000);
        let mut t = 0u64;
        let mut q = 0u64;
        b.iter(|| {
            t += 2_000_000;
            q = (q + 13_000) % 300_000;
            black_box(p.on_sample(t, q))
        })
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    let paths: Vec<PathInfo> = (0..12)
        .map(|i| PathInfo {
            warned: i % 3 == 0,
            rtt_ns: 10_000.0 + i as f64 * 500.0,
            queue_bytes: (i * 10_000) as u64,
            ..PathInfo::idle()
        })
        .collect();
    let ctx = Ctx {
        now_ps: 0,
        flow_id: 1,
        dst_leaf: 0,
        seq: 0,
        pkt_bytes: 1000,
        paths: &paths,
    };
    let cfg = RlbConfig::default();
    c.bench_function("core/algorithm1_decision_12paths", |b| {
        b.iter(|| black_box(algorithm1(black_box(0), &ctx, &cfg, 0)))
    });
}

fn bench_lb_selection(c: &mut Criterion) {
    let paths: Vec<PathInfo> = (0..12)
        .map(|i| PathInfo {
            rtt_ns: 10_000.0 + i as f64 * 100.0,
            queue_bytes: (i * 5_000) as u64,
            ..PathInfo::idle()
        })
        .collect();
    let mut group = c.benchmark_group("lb/select_12paths");
    for scheme in [Scheme::Ecmp, Scheme::Presto, Scheme::LetFlow, Scheme::Hermes, Scheme::Drill] {
        group.bench_function(scheme.name(), |b| {
            let mut lb = build(scheme, 1000, substream(1, b"bench", scheme as u64));
            let mut seq = 0u32;
            b.iter(|| {
                seq = seq.wrapping_add(1);
                let ctx = Ctx {
                    now_ps: seq as u64 * 200_000,
                    flow_id: (seq % 64) as u64,
                    dst_leaf: 0,
                    seq,
                    pkt_bytes: 1000,
                    paths: &paths,
                };
                black_box(lb.select(&ctx))
            })
        });
    }
    group.finish();
}

fn bench_workload_sampling(c: &mut Criterion) {
    c.bench_function("workloads/web_search_sample", |b| {
        let cdf = SizeCdf::web_search();
        let mut rng = substream(3, b"bench-cdf", 0);
        b.iter(|| black_box(cdf.sample(&mut rng)))
    });
}

fn bench_gbn(c: &mut Criterion) {
    c.bench_function("transport/gbn_sender_cycle", |b| {
        b.iter(|| {
            let mut tx = rlb_transport::GbnSender::new(64);
            let mut rx = rlb_transport::GbnReceiver::new(64);
            while let Some(psn) = tx.take_next() {
                if let rlb_transport::RxAction::Deliver { ack_psn } = rx.on_packet(psn) {
                    tx.on_ack(ack_psn);
                }
            }
            black_box(tx.is_complete())
        })
    });
}

fn bench_percentile(c: &mut Criterion) {
    let samples: Vec<f64> = (0..10_000)
        .map(|i| ((i * 2654435761u64) % 100_000) as f64)
        .collect();
    c.bench_function("metrics/percentile_10k", |b| {
        b.iter(|| black_box(rlb_metrics::percentile(&samples, 0.99)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_predictor, bench_algorithm1,
              bench_lb_selection, bench_workload_sampling, bench_gbn,
              bench_percentile
}
criterion_main!(benches);
