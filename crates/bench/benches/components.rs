//! Micro-benchmarks of the hot components: the event queue, the PFC
//! predictor, Algorithm 1, the LB schemes' per-packet decisions, workload
//! sampling and the metrics kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rlb_core::{algorithm1, PfcPredictor, Prediction, RlbConfig};
use rlb_engine::{substream, EventQueue, FlowTable, HeapEventQueue, SimTime};
use rlb_lb::{build, Ctx, PathInfo, Scheme};
use rlb_workloads::SizeCdf;
use std::collections::BTreeMap;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime(i * 37 % 4096), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

/// Unified view over the wheel-backed queue and the heap reference so one
/// workload driver races both implementations head-to-head.
trait FutureList {
    fn schedule(&mut self, at: SimTime, ev: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl FutureList for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, ev: u64) {
        EventQueue::schedule(self, at, ev)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl FutureList for HeapEventQueue<u64> {
    fn schedule(&mut self, at: SimTime, ev: u64) {
        HeapEventQueue::schedule(self, at, ev)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapEventQueue::pop(self)
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Steady-state hold-model: 16k pending events with uniform-random future
/// deltas (up to 50 µs); each pop reschedules the popped event.
fn run_uniform<Q: FutureList>(q: &mut Q, pops: u64) -> u64 {
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..16_384u64 {
        q.schedule(SimTime(1 + xorshift(&mut s) % 50_000_000), i);
    }
    let mut acc = 0u64;
    for _ in 0..pops {
        let (t, e) = q.pop().expect("steady-state queue never drains");
        acc = acc.wrapping_add(e);
        q.schedule(SimTime(t.as_ps() + 1 + xorshift(&mut s) % 50_000_000), e);
    }
    acc
}

const TICK: u64 = u64::MAX;
const TIE_BASE: u64 = 1 << 32;

/// The profile a loaded fig3 fabric produces: a large population of packet
/// events with short serialization-scale deltas (≤ 3 µs) interleaved with
/// a 2 µs periodic tick that lands a burst of 1000 same-timestamp events —
/// the shape of the coalesced predictor/alpha/increase ticks.
fn run_periodic<Q: FutureList>(q: &mut Q, pops: u64) -> u64 {
    let mut s = 0xd1b5_4a32_d192_ed03u64;
    q.schedule(SimTime(2_000_000), TICK);
    for i in 0..32_768u64 {
        q.schedule(SimTime(200 + xorshift(&mut s) % 3_000_000), i);
    }
    let mut acc = 0u64;
    for _ in 0..pops {
        let (t, e) = q.pop().expect("tick keeps the queue non-empty");
        acc = acc.wrapping_add(e);
        if e == TICK {
            q.schedule(SimTime(t.as_ps() + 2_000_000), TICK);
            // Same-instant burst half a tick period ahead — the shape of a
            // coalesced incast kick or CNM fan-in; drains FIFO.
            let burst_at = SimTime(t.as_ps() + 1_000_000);
            for k in 0..1_000u64 {
                q.schedule(burst_at, TIE_BASE + k);
            }
        } else if e < TIE_BASE {
            q.schedule(SimTime(t.as_ps() + 200 + xorshift(&mut s) % 3_000_000), e);
        }
    }
    acc
}

fn bench_queue_head_to_head(c: &mut Criterion) {
    const POPS: u64 = 50_000;
    let mut group = c.benchmark_group("engine/queue_head_to_head");
    group.bench_function("uniform/wheel", |b| {
        b.iter(|| black_box(run_uniform(&mut EventQueue::new(), POPS)))
    });
    group.bench_function("uniform/heap", |b| {
        b.iter(|| black_box(run_uniform(&mut HeapEventQueue::new(), POPS)))
    });
    group.bench_function("periodic/wheel", |b| {
        b.iter(|| black_box(run_periodic(&mut EventQueue::new(), POPS)))
    });
    group.bench_function("periodic/heap", |b| {
        b.iter(|| black_box(run_periodic(&mut HeapEventQueue::new(), POPS)))
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("core/pfc_predictor_sample", |b| {
        let mut p = PfcPredictor::new(64_000, 256_000, 4_000_000);
        let mut t = 0u64;
        let mut q = 0u64;
        b.iter(|| {
            t += 2_000_000;
            q = (q + 13_000) % 300_000;
            black_box(p.on_sample(t, q))
        })
    });
    // One coalesced per-switch PredictorTick: sample all 64 ports in a
    // single dispatch, the post-refactor hot shape (vs 64 separate events).
    c.bench_function("core/predictor_tick_64ports", |b| {
        let mut ports: Vec<PfcPredictor> = (0..64)
            .map(|_| PfcPredictor::new(64_000, 256_000, 4_000_000))
            .collect();
        let mut t = 0u64;
        b.iter(|| {
            t += 2_000_000;
            let mut warns = 0u32;
            for (i, p) in ports.iter_mut().enumerate() {
                let q = (t / 500 + i as u64 * 7_000) % 300_000;
                if p.on_sample(t, q) == Prediction::Warn {
                    warns += 1;
                }
            }
            black_box(warns)
        })
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    let paths: Vec<PathInfo> = (0..12)
        .map(|i| PathInfo {
            warned: i % 3 == 0,
            rtt_ns: 10_000.0 + i as f64 * 500.0,
            queue_bytes: (i * 10_000) as u64,
            ..PathInfo::default()
        })
        .collect();
    let ctx = Ctx {
        now_ps: 0,
        flow_id: 1,
        dst_leaf: 0,
        seq: 0,
        pkt_bytes: 1000,
        paths: &paths,
    };
    let cfg = RlbConfig::default();
    c.bench_function("core/algorithm1_decision_12paths", |b| {
        b.iter(|| black_box(algorithm1(black_box(0), &ctx, &cfg, 0)))
    });
}

fn bench_lb_selection(c: &mut Criterion) {
    let paths: Vec<PathInfo> = (0..12)
        .map(|i| PathInfo {
            rtt_ns: 10_000.0 + i as f64 * 100.0,
            queue_bytes: (i * 5_000) as u64,
            ..PathInfo::default()
        })
        .collect();
    let mut group = c.benchmark_group("lb/select_12paths");
    for scheme in [Scheme::Ecmp, Scheme::Presto, Scheme::LetFlow, Scheme::Hermes, Scheme::Drill] {
        group.bench_function(scheme.name(), |b| {
            let mut lb = build(scheme, 1000, substream(1, b"bench", scheme as u64));
            let mut seq = 0u32;
            b.iter(|| {
                seq = seq.wrapping_add(1);
                let ctx = Ctx {
                    now_ps: seq as u64 * 200_000,
                    flow_id: (seq % 64) as u64,
                    dst_leaf: 0,
                    seq,
                    pkt_bytes: 1000,
                    paths: &paths,
                };
                black_box(lb.select(&ctx))
            })
        });
    }
    group.finish();
}

/// The per-packet decision prologue, isolated: (a) the stateful schemes'
/// flow-table access (lookup-or-insert, flowlet expiry removes, a periodic
/// GC sweep) raced between the old `BTreeMap` and `rlb_engine::FlowTable`,
/// and (b) the path-snapshot assembly raced between a cold full rebuild
/// and the generation-stamped cache's in-place queue refresh.
mod decision_hot_path {
    use super::*;

    pub const OPS: u64 = 50_000;
    const FLOWS: u64 = 4096;

    /// Mostly-dense flow ids with a sparse tail — the shape real runs
    /// produce (sequential spawn order, plus hashed synthetic ids).
    fn key(i: u64) -> u64 {
        if i % 8 == 7 {
            (1 << 40) + i * 131
        } else {
            i
        }
    }

    pub fn churn_flowtable(ops: u64) -> u64 {
        let mut t: FlowTable<u64> = FlowTable::new();
        let mut s = 0x5851_f42d_4c95_7f2du64;
        let mut acc = 0u64;
        for n in 0..ops {
            let k = key(xorshift(&mut s) % FLOWS);
            match t.get_mut(k) {
                Some(v) => {
                    *v = v.wrapping_add(1);
                    acc ^= *v;
                }
                None => {
                    t.insert(k, n);
                }
            }
            if n % 64 == 0 {
                t.remove(key(xorshift(&mut s) % FLOWS));
            }
            if n % 4096 == 0 {
                t.retain(|_, v| *v % 7 != 0); // expiry sweep
            }
        }
        acc.wrapping_add(t.len() as u64)
    }

    pub fn churn_btreemap(ops: u64) -> u64 {
        let mut t: BTreeMap<u64, u64> = BTreeMap::new();
        let mut s = 0x5851_f42d_4c95_7f2du64;
        let mut acc = 0u64;
        for n in 0..ops {
            let k = key(xorshift(&mut s) % FLOWS);
            match t.get_mut(&k) {
                Some(v) => {
                    *v = v.wrapping_add(1);
                    acc ^= *v;
                }
                None => {
                    t.insert(k, n);
                }
            }
            if n % 64 == 0 {
                t.remove(&key(xorshift(&mut s) % FLOWS));
            }
            if n % 4096 == 0 {
                t.retain(|_, v| *v % 7 != 0);
            }
        }
        acc.wrapping_add(t.len() as u64)
    }

    pub const SPINES: usize = 40; // fig3 fabric width at both scales

    /// Per-uplink egress state the snapshot reads (sim's `EgressPort`
    /// fields that feed `PathInfo`).
    pub struct Egress {
        pub data_q_bytes: u64,
        pub paused: bool,
        pub rtt_ns: f64,
        pub ecn_fraction: f64,
    }

    pub fn fabric() -> Vec<Egress> {
        (0..SPINES)
            .map(|s| Egress {
                data_q_bytes: (s as u64 * 9_973) % 120_000,
                paused: s % 11 == 0,
                rtt_ns: 10_000.0 + s as f64 * 250.0,
                ecn_fraction: (s % 5) as f64 * 0.05,
            })
            .collect()
    }

    /// Cold path: clear and repopulate the scratch vector, recomputing
    /// every `PathInfo` field — what every decision paid before the
    /// generation-stamped cache.
    pub fn snapshot_cold(eg: &[Egress], scratch: &mut Vec<PathInfo>) -> u64 {
        scratch.clear();
        for (s, ep) in eg.iter().enumerate() {
            scratch.push(PathInfo {
                queue_bytes: ep.data_q_bytes,
                paused: ep.paused,
                warned: s % 13 == 0,
                rtt_ns: ep.rtt_ns,
                ecn_fraction: ep.ecn_fraction,
                link_rate_bps: 40e9,
            });
        }
        scratch.iter().map(|p| p.queue_bytes).sum()
    }

    /// Cached path: the signal generation matched, so only the volatile
    /// queue state is refreshed in place (sim's middle snapshot tier).
    pub fn snapshot_refresh(eg: &[Egress], scratch: &mut [PathInfo]) -> u64 {
        for (s, p) in scratch.iter_mut().enumerate() {
            p.queue_bytes = eg[s].data_q_bytes;
            p.paused = eg[s].paused;
        }
        scratch.iter().map(|p| p.queue_bytes).sum()
    }
}

fn bench_decision_hot_path(c: &mut Criterion) {
    use decision_hot_path::*;
    let mut group = c.benchmark_group("lb/decision_hot_path");
    group.bench_function("flow_table/flowtable", |b| {
        b.iter(|| black_box(churn_flowtable(OPS)))
    });
    group.bench_function("flow_table/btreemap", |b| {
        b.iter(|| black_box(churn_btreemap(OPS)))
    });
    let eg = fabric();
    group.bench_function("snapshot/cold_rebuild", |b| {
        let mut scratch = Vec::with_capacity(SPINES);
        b.iter(|| black_box(snapshot_cold(&eg, &mut scratch)))
    });
    group.bench_function("snapshot/cached_refresh", |b| {
        let mut scratch = Vec::with_capacity(SPINES);
        snapshot_cold(&eg, &mut scratch); // prime, as a stamp match would
        b.iter(|| black_box(snapshot_refresh(&eg, &mut scratch)))
    });
    group.finish();
}

fn bench_workload_sampling(c: &mut Criterion) {
    c.bench_function("workloads/web_search_sample", |b| {
        let cdf = SizeCdf::web_search();
        let mut rng = substream(3, b"bench-cdf", 0);
        b.iter(|| black_box(cdf.sample(&mut rng)))
    });
}

fn bench_gbn(c: &mut Criterion) {
    c.bench_function("transport/gbn_sender_cycle", |b| {
        b.iter(|| {
            let mut tx = rlb_transport::GbnSender::new(64);
            let mut rx = rlb_transport::GbnReceiver::new(64);
            while let Some(psn) = tx.take_next() {
                if let rlb_transport::RxAction::Deliver { ack_psn } = rx.on_packet(psn) {
                    tx.on_ack(ack_psn);
                }
            }
            black_box(tx.is_complete())
        })
    });
}

/// Stand-in for the cold packet payload the switch queues used to carry
/// inline: roughly `rlb_net::Packet`-sized, so the VecDeque baseline pays
/// a realistic per-element copy cost.
#[derive(Clone, Copy)]
struct FatPacket {
    size_bytes: u32,
    flow: u32,
    enqueued_at_ps: u64,
    _cold: [u64; 6],
}

fn bench_packet_plane(c: &mut Criterion) {
    use rlb_engine::{PacketArena, PacketHandle};
    use std::collections::VecDeque;

    const N: usize = 1_024;
    let pkt = |i: u64| FatPacket {
        size_bytes: 1_000 + (i % 512) as u32,
        flow: i as u32,
        enqueued_at_ps: i * 37,
        _cold: [i; 6],
    };

    // FIFO churn through the arena (handles in the queue, payload parked)
    // vs the pre-arena baseline (whole packets moving through VecDeque).
    c.bench_function("net/packet_plane/arena_push_pop_1k", |b| {
        b.iter(|| {
            let mut arena: PacketArena<FatPacket> = PacketArena::with_capacity(N);
            let mut q: VecDeque<PacketHandle> = VecDeque::with_capacity(N);
            let mut acc = 0u64;
            for i in 0..N as u64 {
                let p = pkt(i);
                q.push_back(arena.alloc(p.size_bytes, p.flow, false, p.enqueued_at_ps, p));
            }
            while let Some(h) = q.pop_front() {
                acc = acc.wrapping_add(arena.free(h).size_bytes as u64);
            }
            black_box(acc)
        })
    });
    c.bench_function("net/packet_plane/vecdeque_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: VecDeque<FatPacket> = VecDeque::with_capacity(N);
            let mut acc = 0u64;
            for i in 0..N as u64 {
                q.push_back(pkt(i));
            }
            while let Some(p) = q.pop_front() {
                acc = acc.wrapping_add(p.size_bytes as u64);
            }
            black_box(acc)
        })
    });

    // The audit/egress byte sweep: SoA reads only the arena's size column;
    // the AoS baseline drags the whole fat packet through the cache for
    // one u32 of it.
    let mut arena: PacketArena<FatPacket> = PacketArena::with_capacity(N);
    let handles: Vec<PacketHandle> = (0..N as u64)
        .map(|i| {
            let p = pkt(i);
            arena.alloc(p.size_bytes, p.flow, false, p.enqueued_at_ps, p)
        })
        .collect();
    let packets: Vec<FatPacket> = (0..N as u64).map(pkt).collect();
    c.bench_function("net/packet_plane/scan_bytes_soa_1k", |b| {
        b.iter(|| {
            let sum: u64 = handles.iter().map(|&h| arena.size_bytes(h) as u64).sum();
            black_box(sum)
        })
    });
    c.bench_function("net/packet_plane/scan_bytes_aos_1k", |b| {
        b.iter(|| {
            let sum: u64 = packets.iter().map(|p| p.size_bytes as u64).sum();
            black_box(sum)
        })
    });

    // The per-hop transit pattern on a quiet port: one packet enqueued and
    // immediately dequeued, with the egress byte counter fed from the hot
    // column (`free_sized`). The pass-through bypass elides exactly this
    // round trip; the pair quantifies what each bypassed hop saves.
    c.bench_function("net/packet_plane/transit_alloc_free_1k", |b| {
        b.iter(|| {
            let mut arena: PacketArena<FatPacket> = PacketArena::with_capacity(4);
            let mut bytes = 0u64;
            let mut acc = 0u64;
            for i in 0..N as u64 {
                let p = pkt(i);
                let h = arena.alloc(p.size_bytes, p.flow, false, p.enqueued_at_ps, p);
                bytes += p.size_bytes as u64;
                let (out, size) = arena.free_sized(h);
                bytes -= size as u64;
                acc = acc.wrapping_add(out.flow as u64);
            }
            black_box((acc, bytes))
        })
    });
    c.bench_function("net/packet_plane/transit_bypass_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N as u64 {
                let p = pkt(i);
                acc = acc.wrapping_add(black_box(p).flow as u64);
            }
            black_box(acc)
        })
    });
}

fn bench_percentile(c: &mut Criterion) {
    let samples: Vec<f64> = (0..10_000)
        .map(|i| ((i * 2654435761u64) % 100_000) as f64)
        .collect();
    c.bench_function("metrics/percentile_10k", |b| {
        b.iter(|| black_box(rlb_metrics::percentile(&samples, 0.99)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_queue_head_to_head, bench_predictor,
              bench_algorithm1, bench_lb_selection, bench_decision_hot_path,
              bench_workload_sampling, bench_gbn, bench_packet_plane,
              bench_percentile
}
criterion_main!(benches);
