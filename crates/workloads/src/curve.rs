//! Time-varying offered load: a piecewise-constant multiplier curve.
//!
//! Scenario specs use this to shape Poisson arrival intensity over the run
//! (diurnal ramps, bursts, quiet tails) without touching the base load
//! calibration. Multipliers are integer permille (parts-per-thousand), so
//! curves are exactly representable in spec files, `Eq`-comparable, and
//! deterministic to re-parse.

use rlb_engine::SimTime;
use serde::Serialize;

/// Piecewise-constant offered-load multiplier over time.
///
/// Each point `(from, permille)` sets the multiplier from that instant
/// until the next point; before the first point the multiplier is 1000
/// (nominal). An empty curve is the flat nominal curve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LoadCurve {
    points: Vec<(SimTime, u32)>,
}

impl LoadCurve {
    /// The identity curve: 1000‰ everywhere.
    pub fn flat() -> LoadCurve {
        LoadCurve { points: Vec::new() }
    }

    /// Build from `(from, permille)` segments. Rejects unsorted points and
    /// zero multipliers (a zero-rate segment would stall arrival generation
    /// forever instead of pausing it).
    pub fn new(points: Vec<(SimTime, u32)>) -> Result<LoadCurve, String> {
        for (i, w) in points.windows(2).enumerate() {
            if w[1].0 < w[0].0 {
                return Err(format!(
                    "load curve point {} at {} ps precedes point {} at {} ps \
                     (points must be sorted by time)",
                    i + 1,
                    w[1].0.as_ps(),
                    i,
                    w[0].0.as_ps()
                ));
            }
        }
        if let Some((i, _)) = points.iter().enumerate().find(|(_, p)| p.1 == 0) {
            return Err(format!("load curve point {i} has zero multiplier"));
        }
        Ok(LoadCurve { points })
    }

    pub fn is_flat(&self) -> bool {
        self.points.is_empty() || self.points.iter().all(|p| p.1 == 1000)
    }

    /// The multiplier in effect at instant `t`, in permille.
    pub fn permille_at(&self, t: SimTime) -> u32 {
        let mut m = 1000;
        for &(from, permille) in &self.points {
            if from > t {
                break;
            }
            m = permille;
        }
        m
    }

    pub fn points(&self) -> &[(SimTime, u32)] {
        &self.points
    }
}

impl Default for LoadCurve {
    fn default() -> Self {
        LoadCurve::flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_is_nominal_everywhere() {
        let c = LoadCurve::flat();
        assert!(c.is_flat());
        assert_eq!(c.permille_at(SimTime::ZERO), 1000);
        assert_eq!(c.permille_at(SimTime::from_ms(100)), 1000);
    }

    #[test]
    fn segments_apply_from_their_start() {
        let c = LoadCurve::new(vec![
            (SimTime::from_us(10), 500),
            (SimTime::from_us(20), 2000),
        ])
        .unwrap();
        assert!(!c.is_flat());
        assert_eq!(c.permille_at(SimTime::ZERO), 1000);
        assert_eq!(c.permille_at(SimTime::from_us(10)), 500);
        assert_eq!(c.permille_at(SimTime::from_us(15)), 500);
        assert_eq!(c.permille_at(SimTime::from_us(20)), 2000);
        assert_eq!(c.permille_at(SimTime::from_ms(5)), 2000);
    }

    #[test]
    fn unsorted_and_zero_points_are_rejected() {
        assert!(LoadCurve::new(vec![
            (SimTime::from_us(20), 500),
            (SimTime::from_us(10), 800),
        ])
        .unwrap_err()
        .contains("sorted"));
        assert!(LoadCurve::new(vec![(SimTime::ZERO, 0)])
            .unwrap_err()
            .contains("zero multiplier"));
    }
}
