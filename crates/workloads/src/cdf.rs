//! Empirical flow-size distributions.
//!
//! The paper evaluates on four production-trace workloads (§4, "Realistic
//! workloads"): Web Server, Cache Follower, Web Search and Data Mining, with
//! average flow sizes ranging from ~64 KB to ~7.41 MB. The CDF control
//! points below follow the published distributions (Facebook web/cache
//! traces, the DCTCP web-search trace and the VL2 data-mining trace) as used
//! by Hermes and subsequent load-balancing papers. Sampling is
//! inverse-transform with linear interpolation between control points.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A piecewise-linear empirical CDF over flow sizes in bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeCdf {
    name: &'static str,
    /// (size_bytes, cumulative_probability), strictly increasing in both.
    points: Vec<(f64, f64)>,
}

/// The four workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    WebServer,
    CacheFollower,
    WebSearch,
    DataMining,
}

impl Workload {
    pub const ALL: [Workload; 4] = [
        Workload::WebServer,
        Workload::CacheFollower,
        Workload::WebSearch,
        Workload::DataMining,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::WebServer => "Web Server",
            Workload::CacheFollower => "Cache Follower",
            Workload::WebSearch => "Web Search",
            Workload::DataMining => "Data Mining",
        }
    }

    pub fn cdf(self) -> SizeCdf {
        match self {
            Workload::WebServer => SizeCdf::web_server(),
            Workload::CacheFollower => SizeCdf::cache_follower(),
            Workload::WebSearch => SizeCdf::web_search(),
            Workload::DataMining => SizeCdf::data_mining(),
        }
    }
}

impl SizeCdf {
    /// Build a CDF from (size, probability) control points.
    ///
    /// # Panics
    /// Panics if points are not strictly increasing or do not end at 1.0.
    pub fn from_points(name: &'static str, points: Vec<(f64, f64)>) -> SizeCdf {
        assert!(points.len() >= 2, "{name}: need at least 2 points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "{name}: sizes must strictly increase");
            assert!(w[0].1 < w[1].1, "{name}: probabilities must strictly increase");
        }
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(first.1 >= 0.0 && (last.1 - 1.0).abs() < 1e-9, "{name}: CDF must end at 1");
        assert!(first.0 >= 0.0);
        SizeCdf { name, points }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Facebook web-server trace: all flows below 1 MB, mean ≈ 53 KB.
    pub fn web_server() -> SizeCdf {
        SizeCdf::from_points(
            "Web Server",
            vec![
                (0.0, 0.0),
                (1_000.0, 0.10),
                (2_000.0, 0.20),
                (5_000.0, 0.35),
                (10_000.0, 0.50),
                (20_000.0, 0.65),
                (50_000.0, 0.80),
                (100_000.0, 0.88),
                (200_000.0, 0.94),
                (500_000.0, 0.98),
                (1_000_000.0, 1.0),
            ],
        )
    }

    /// Facebook cache-follower trace: mean ≈ 0.6–0.7 MB.
    pub fn cache_follower() -> SizeCdf {
        SizeCdf::from_points(
            "Cache Follower",
            vec![
                (0.0, 0.0),
                (1_000.0, 0.05),
                (10_000.0, 0.20),
                (50_000.0, 0.40),
                (100_000.0, 0.55),
                (200_000.0, 0.65),
                (500_000.0, 0.75),
                (1_000_000.0, 0.85),
                (2_000_000.0, 0.92),
                (5_000_000.0, 0.98),
                (10_000_000.0, 1.0),
            ],
        )
    }

    /// DCTCP web-search trace: mean ≈ 1.6–1.7 MB (the paper quotes 1.6 MB).
    pub fn web_search() -> SizeCdf {
        SizeCdf::from_points(
            "Web Search",
            vec![
                (0.0, 0.0),
                (10_000.0, 0.15),
                (20_000.0, 0.20),
                (30_000.0, 0.30),
                (50_000.0, 0.40),
                (80_000.0, 0.53),
                (200_000.0, 0.60),
                (1_000_000.0, 0.70),
                (2_000_000.0, 0.80),
                (5_000_000.0, 0.90),
                (10_000_000.0, 0.97),
                (30_000_000.0, 1.0),
            ],
        )
    }

    /// VL2 data-mining trace: heavy-tailed, mean ≈ 7.4 MB, ~83% of flows
    /// under 100 KB, most bytes from rare multi-MB flows.
    pub fn data_mining() -> SizeCdf {
        SizeCdf::from_points(
            "Data Mining",
            vec![
                (100.0, 0.0),
                (180.0, 0.10),
                (250.0, 0.20),
                (560.0, 0.30),
                (900.0, 0.40),
                (1_100.0, 0.50),
                (1_870.0, 0.60),
                (3_160.0, 0.70),
                (10_000.0, 0.80),
                (100_000.0, 0.855),
                (400_000.0, 0.90),
                (3_160_000.0, 0.95),
                (100_000_000.0, 0.99),
                (1_000_000_000.0, 1.0),
            ],
        )
    }

    /// Inverse-transform sample: flow size in bytes (at least 1).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The size at cumulative probability `u` (linear interpolation).
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let pts = &self.points;
        if u <= pts[0].1 {
            return pts[0].0.max(1.0) as u64;
        }
        for w in pts.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let frac = (u - p0) / (p1 - p0);
                return ((s0 + frac * (s1 - s0)).round() as u64).max(1);
            }
        }
        pts.last().unwrap().0 as u64
    }

    /// Analytic mean of the piecewise-linear distribution: each segment is
    /// uniform, contributing `Δp · midpoint`.
    pub fn mean_bytes(&self) -> f64 {
        let mut mean = self.points[0].1 * self.points[0].0;
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            mean += (p1 - p0) * 0.5 * (s0 + s1);
        }
        mean
    }

    pub fn max_bytes(&self) -> u64 {
        self.points.last().unwrap().0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn means_match_the_papers_workload_characterisation() {
        // Paper §4: "average flow sizes range from 64KB to more than 7.41MB".
        let ws = SizeCdf::web_server().mean_bytes();
        assert!((30e3..100e3).contains(&ws), "web server mean {ws}");
        let cf = SizeCdf::cache_follower().mean_bytes();
        assert!((400e3..900e3).contains(&cf), "cache follower mean {cf}");
        let wsearch = SizeCdf::web_search().mean_bytes();
        assert!((1.3e6..2.0e6).contains(&wsearch), "web search mean {wsearch}");
        let dm = SizeCdf::data_mining().mean_bytes();
        assert!((6e6..9e6).contains(&dm), "data mining mean {dm}");
    }

    #[test]
    fn data_mining_is_heavy_tailed() {
        // Paper: ~83% of Data Mining flows are smaller than 100 KB.
        let cdf = SizeCdf::data_mining();
        // quantile(0.8) = 10 KB < 100 KB; quantile(0.9) = 400 KB.
        assert!(cdf.quantile(0.83) < 100_000);
        assert!(cdf.quantile(0.999) > 35_000_000);
    }

    #[test]
    fn web_server_flows_all_below_1mb() {
        let cdf = SizeCdf::web_server();
        assert_eq!(cdf.max_bytes(), 1_000_000);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(cdf.sample(&mut rng) <= 1_000_000);
        }
    }

    #[test]
    fn sample_mean_converges_to_analytic_mean() {
        for wl in Workload::ALL {
            let cdf = wl.cdf();
            let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
            let n = 200_000;
            let total: f64 = (0..n).map(|_| cdf.sample(&mut rng) as f64).sum();
            let sample_mean = total / n as f64;
            let analytic = cdf.mean_bytes();
            let rel = (sample_mean - analytic).abs() / analytic;
            assert!(rel < 0.05, "{}: sample {sample_mean} vs analytic {analytic}", wl.name());
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let cdf = SizeCdf::web_search();
        let mut last = 0;
        for i in 0..=100 {
            let q = cdf.quantile(i as f64 / 100.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_monotone_points() {
        SizeCdf::from_points("bad", vec![(0.0, 0.0), (10.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    fn quantile_extremes() {
        let cdf = SizeCdf::web_search();
        assert!(cdf.quantile(0.0) >= 1);
        assert_eq!(cdf.quantile(1.0), 30_000_000);
        // Values above 1 clamp.
        assert_eq!(cdf.quantile(2.0), 30_000_000);
    }
}
