//! # rlb-workloads — datacenter traffic generation
//!
//! The traffic the paper evaluates on:
//!
//! * [`SizeCdf`] / [`Workload`] — empirical flow-size distributions for the
//!   four production workloads (Web Server, Cache Follower, Web Search,
//!   Data Mining) with inverse-transform sampling.
//! * [`PoissonTraffic`] — Poisson arrivals between random host pairs at a
//!   target fraction of core capacity (§4 methodology).
//! * [`incast`] — partition-aggregate request generation (§4.3).
//! * [`BurstConfig`] — the continuous-burst + congested-flow scenario of
//!   Fig. 2 used in the motivation experiments (§2.2).
//! * [`patterns`] — permutation and all-to-all shuffle stress patterns.

pub mod burst;
pub mod cdf;
pub mod curve;
pub mod incast;
pub mod patterns;
pub mod poisson;
pub mod spec;

pub use burst::{congested_flow, BurstConfig};
pub use cdf::{SizeCdf, Workload};
pub use curve::LoadCurve;
pub use patterns::{all_to_all, permutation};
pub use incast::IncastConfig;
pub use poisson::{PairPolicy, PoissonTraffic};
pub use spec::FlowSpec;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rlb_engine::{SimDuration, SimTime};

    proptest! {
        /// Sampled sizes always fall inside the CDF's support.
        #[test]
        fn samples_within_support(seed in any::<u64>(), wl_idx in 0usize..4) {
            let cdf = Workload::ALL[wl_idx].cdf();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..64 {
                let s = cdf.sample(&mut rng);
                prop_assert!(s >= 1);
                prop_assert!(s <= cdf.max_bytes());
            }
        }

        /// Quantile is the (approximate) inverse of the CDF: monotone and
        /// spanning the support.
        #[test]
        fn quantile_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
            let cdf = SizeCdf::data_mining();
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        }

        /// Incast groups always have exactly `degree` distinct responders
        /// aimed at one client, none sharing the client's leaf.
        #[test]
        fn incast_invariants(degree in 2u32..20, seed in any::<u64>()) {
            let cfg = IncastConfig {
                degree,
                total_response_bytes: 4_000_000,
                requests: 3,
                request_interval: SimDuration::from_ms(1),
                num_hosts: 96,
                hosts_per_leaf: 8,
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let flows = incast::generate(&cfg, &mut rng);
            prop_assert_eq!(flows.len() as u32, 3 * degree);
            for g in 0..3u64 {
                let group: Vec<_> = flows.iter().filter(|f| f.group == g).collect();
                let dst = group[0].dst_host;
                let mut srcs: Vec<u32> = group.iter().map(|f| f.src_host).collect();
                srcs.sort();
                srcs.dedup();
                prop_assert_eq!(srcs.len() as u32, degree);
                prop_assert!(group.iter().all(|f| f.dst_host == dst));
                prop_assert!(group.iter().all(|f| f.src_host / 8 != dst / 8));
            }
        }

        /// Poisson generation is deterministic for a fixed seed.
        #[test]
        fn poisson_deterministic(seed in any::<u64>()) {
            let tr = PoissonTraffic::with_load(
                SizeCdf::web_server(), 16,
                PairPolicy::InterLeaf { hosts_per_leaf: 4 }, 0.4, 160e9);
            let a = tr.generate(SimTime::from_ms(5), &mut SmallRng::seed_from_u64(seed));
            let b = tr.generate(SimTime::from_ms(5), &mut SmallRng::seed_from_u64(seed));
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.start, y.start);
                prop_assert_eq!(x.size_bytes, y.size_bytes);
                prop_assert_eq!((x.src_host, x.dst_host), (y.src_host, y.dst_host));
            }
        }
    }
}
