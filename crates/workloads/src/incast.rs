//! Incast (partition-aggregate) request generation for §4.3.
//!
//! "A client makes simultaneous requests to fetch responses from multiple
//! servers. By default, the number of involved responders is 15 and the
//! total response traffic is 4MB in each incast initiation." The harness
//! varies the incast degree (10–25) and total response size (4–10 MB) and
//! measures the out-of-order packet ratio and the completion time of the
//! last flow of each request (incast completion time).

use crate::spec::FlowSpec;
use rand::seq::SliceRandom;
use rand::Rng;
use rlb_engine::{SimDuration, SimTime};

#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Number of responding servers per request (the incast degree).
    pub degree: u32,
    /// Total bytes across all responders for one request.
    pub total_response_bytes: u64,
    /// Number of incast requests to issue.
    pub requests: u32,
    /// Gap between successive requests.
    pub request_interval: SimDuration,
    /// Total hosts in the fabric.
    pub num_hosts: u32,
    /// Hosts per leaf (responders are drawn from other leaves than the
    /// client's so responses traverse the multi-path core).
    pub hosts_per_leaf: u32,
}

/// Generate the response flows for all incast requests. Each request `r`
/// gets group id `r`, so completion of the group's last flow is the incast
/// completion time.
pub fn generate<R: Rng>(cfg: &IncastConfig, rng: &mut R) -> Vec<FlowSpec> {
    assert!(cfg.degree >= 1);
    assert!(cfg.num_hosts >= cfg.hosts_per_leaf * 2, "need at least two leaves");
    let per_responder = (cfg.total_response_bytes / cfg.degree as u64).max(1);
    let mut flows = Vec::with_capacity((cfg.requests * cfg.degree) as usize);
    for r in 0..cfg.requests {
        let t = SimTime::ZERO + cfg.request_interval.mul_u64(r as u64);
        let client = rng.gen_range(0..cfg.num_hosts);
        let client_leaf = client / cfg.hosts_per_leaf;
        // Candidate responders: every host on a different leaf.
        let mut candidates: Vec<u32> = (0..cfg.num_hosts)
            .filter(|h| h / cfg.hosts_per_leaf != client_leaf)
            .collect();
        candidates.shuffle(rng);
        assert!(
            candidates.len() >= cfg.degree as usize,
            "fabric too small for incast degree {}",
            cfg.degree
        );
        for &server in candidates.iter().take(cfg.degree as usize) {
            flows.push(FlowSpec::new(t, server, client, per_responder).with_group(r as u64));
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg(degree: u32) -> IncastConfig {
        IncastConfig {
            degree,
            total_response_bytes: 4_000_000,
            requests: 5,
            request_interval: SimDuration::from_ms(1),
            num_hosts: 64,
            hosts_per_leaf: 8,
        }
    }

    #[test]
    fn all_responders_target_the_client_simultaneously() {
        let mut rng = SmallRng::seed_from_u64(4);
        let flows = generate(&cfg(15), &mut rng);
        assert_eq!(flows.len(), 75);
        for r in 0..5u64 {
            let group: Vec<&FlowSpec> = flows.iter().filter(|f| f.group == r).collect();
            assert_eq!(group.len(), 15);
            let dst = group[0].dst_host;
            let t = group[0].start;
            assert!(group.iter().all(|f| f.dst_host == dst && f.start == t));
            // distinct responders
            let mut srcs: Vec<u32> = group.iter().map(|f| f.src_host).collect();
            srcs.sort();
            srcs.dedup();
            assert_eq!(srcs.len(), 15);
            // responders on other leaves
            assert!(group.iter().all(|f| f.src_host / 8 != dst / 8));
        }
    }

    #[test]
    fn response_bytes_split_evenly() {
        let mut rng = SmallRng::seed_from_u64(4);
        let flows = generate(&cfg(16), &mut rng);
        assert!(flows.iter().all(|f| f.size_bytes == 250_000));
    }

    #[test]
    fn requests_spaced_by_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        let flows = generate(&cfg(10), &mut rng);
        let t1 = flows.iter().find(|f| f.group == 1).unwrap().start;
        assert_eq!(t1, SimTime::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "fabric too small")]
    fn rejects_oversized_degree() {
        let mut c = cfg(60);
        c.num_hosts = 16; // only 8 hosts on other leaves
        let mut rng = SmallRng::seed_from_u64(4);
        generate(&c, &mut rng);
    }
}
