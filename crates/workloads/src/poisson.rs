//! Poisson flow-arrival generation at a target offered load.
//!
//! Paper §4: "flows are generated between random pairs of end-hosts
//! according to Poisson processes. The traffic load is varying from 20% to
//! 70%" (of the network-core capacity). The flow arrival rate that realizes
//! a load `ρ` against a core capacity `C` bits/s with mean flow size `S̄`
//! bytes is `λ = ρ·C / (8·S̄)` flows per second.

use crate::cdf::SizeCdf;
use crate::curve::LoadCurve;
use crate::spec::FlowSpec;
use rand::Rng;
use rlb_engine::{SimDuration, SimTime};

/// Host-pair sampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPolicy {
    /// Any distinct (src, dst) host pair.
    AnyPair,
    /// Only pairs whose hosts sit under different leaves, so every flow
    /// crosses the core (the paper's load-balancing experiments measure the
    /// multi-path core, and intra-leaf traffic never touches it).
    InterLeaf { hosts_per_leaf: u32 },
}

/// Poisson traffic generator over a fixed host population.
#[derive(Debug, Clone)]
pub struct PoissonTraffic {
    pub cdf: SizeCdf,
    pub num_hosts: u32,
    pub pair_policy: PairPolicy,
    /// Mean flow inter-arrival time.
    pub mean_interarrival: SimDuration,
}

impl PoissonTraffic {
    /// Configure for an offered load `load` (fraction of `core_bits_per_sec`).
    pub fn with_load(
        cdf: SizeCdf,
        num_hosts: u32,
        pair_policy: PairPolicy,
        load: f64,
        core_bits_per_sec: f64,
    ) -> PoissonTraffic {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0,1]: {load}");
        assert!(num_hosts >= 2);
        let lambda = load * core_bits_per_sec / (8.0 * cdf.mean_bytes()); // flows/sec
        let mean_interarrival = SimDuration((1e12 / lambda).round().max(1.0) as u64);
        PoissonTraffic {
            cdf,
            num_hosts,
            pair_policy,
            mean_interarrival,
        }
    }

    fn sample_pair<R: Rng>(&self, rng: &mut R) -> (u32, u32) {
        loop {
            let src = rng.gen_range(0..self.num_hosts);
            let dst = rng.gen_range(0..self.num_hosts);
            let ok = match self.pair_policy {
                PairPolicy::AnyPair => src != dst,
                PairPolicy::InterLeaf { hosts_per_leaf } => {
                    src / hosts_per_leaf != dst / hosts_per_leaf
                }
            };
            if ok {
                return (src, dst);
            }
        }
    }

    /// Generate all flows arriving in `[0, horizon)`.
    pub fn generate<R: Rng>(&self, horizon: SimTime, rng: &mut R) -> Vec<FlowSpec> {
        self.generate_modulated(horizon, &LoadCurve::flat(), rng)
    }

    /// Like [`Self::generate`], with the arrival intensity modulated by a
    /// piecewise-constant [`LoadCurve`]: inside a segment at `m` permille,
    /// inter-arrival gaps stretch by `1000/m` (so `m = 2000` doubles the
    /// offered load, `m = 500` halves it). The segment is sampled at the
    /// previous arrival's instant — exact for gaps that don't straddle a
    /// segment boundary, and a one-gap approximation when they do. With a
    /// flat curve the gap math multiplies by exactly 1.0, so this emits the
    /// same flow sequence as the unmodulated generator, bit for bit.
    pub fn generate_modulated<R: Rng>(
        &self,
        horizon: SimTime,
        curve: &LoadCurve,
        rng: &mut R,
    ) -> Vec<FlowSpec> {
        let mut flows = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let base = (-u.ln()) * self.mean_interarrival.as_ps() as f64;
            let gap = base * (1000.0 / curve.permille_at(t).max(1) as f64);
            t += SimDuration(gap.round().max(1.0) as u64);
            if t >= horizon {
                break;
            }
            let (src, dst) = self.sample_pair(rng);
            let size = self.cdf.sample(rng);
            flows.push(FlowSpec::new(t, src, dst, size));
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen(load: f64, horizon_ms: u64, seed: u64) -> (PoissonTraffic, Vec<FlowSpec>) {
        let tr = PoissonTraffic::with_load(
            SizeCdf::web_search(),
            32,
            PairPolicy::InterLeaf { hosts_per_leaf: 8 },
            load,
            4.0 * 40e9, // 4 uplinks at 40G
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let flows = tr.generate(SimTime::from_ms(horizon_ms), &mut rng);
        (tr, flows)
    }

    #[test]
    fn offered_load_matches_target() {
        let (_, flows) = gen(0.5, 200, 3);
        let bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let offered_bps = bytes as f64 * 8.0 / 0.2;
        let target = 0.5 * 4.0 * 40e9;
        let rel = (offered_bps - target).abs() / target;
        assert!(rel < 0.15, "offered {offered_bps:.3e} vs target {target:.3e}");
    }

    #[test]
    fn arrivals_sorted_and_within_horizon() {
        let (_, flows) = gen(0.3, 50, 5);
        assert!(!flows.is_empty());
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(flows.last().unwrap().start < SimTime::from_ms(50));
    }

    #[test]
    fn flat_curve_modulation_is_the_identity() {
        let (tr, flows) = gen(0.4, 50, 11);
        let mut rng = SmallRng::seed_from_u64(11);
        let modulated = tr.generate_modulated(SimTime::from_ms(50), &LoadCurve::flat(), &mut rng);
        assert_eq!(flows, modulated);
    }

    #[test]
    fn load_curve_scales_arrival_density_per_segment() {
        let tr = PoissonTraffic::with_load(
            SizeCdf::web_search(),
            32,
            PairPolicy::InterLeaf { hosts_per_leaf: 8 },
            0.4,
            4.0 * 40e9,
        );
        // Half load for the first 100 ms, triple load after.
        let curve = LoadCurve::new(vec![
            (SimTime::ZERO, 500),
            (SimTime::from_ms(100), 3000),
        ])
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let flows = tr.generate_modulated(SimTime::from_ms(200), &curve, &mut rng);
        let early = flows
            .iter()
            .filter(|f| f.start < SimTime::from_ms(100))
            .count();
        let late = flows.len() - early;
        // 6× intensity ratio; allow generous sampling noise.
        assert!(
            late > early * 3,
            "expected the 3000-permille half to dominate: {early} early vs {late} late"
        );
    }

    #[test]
    fn inter_leaf_policy_never_picks_same_leaf() {
        let (_, flows) = gen(0.4, 50, 9);
        for f in &flows {
            assert_ne!(f.src_host / 8, f.dst_host / 8, "intra-leaf pair generated");
        }
    }

    #[test]
    fn any_pair_policy_allows_same_leaf_but_not_self() {
        let tr = PoissonTraffic::with_load(SizeCdf::web_server(), 4, PairPolicy::AnyPair, 0.3, 40e9);
        let mut rng = SmallRng::seed_from_u64(1);
        let flows = tr.generate(SimTime::from_ms(20), &mut rng);
        assert!(flows.iter().all(|f| f.src_host != f.dst_host));
    }

    #[test]
    fn higher_load_means_more_flows() {
        let (_, lo) = gen(0.2, 100, 42);
        let (_, hi) = gen(0.7, 100, 42);
        assert!(hi.len() > lo.len() * 2);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn zero_load_rejected() {
        PoissonTraffic::with_load(SizeCdf::web_server(), 4, PairPolicy::AnyPair, 0.0, 40e9);
    }
}
