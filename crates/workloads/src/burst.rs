//! Continuous-burst traffic for the motivation scenario (Fig. 2 / §2.2).
//!
//! "Each server in Hb generates 40 bursty flows with 64KB at line rate and
//! sends them to the receiver Rc. ... By default, two continuous bursts are
//! generated." A *burst* is one round of `flows_per_burst` simultaneous
//! 64 KB flows from every burst sender; continuous bursts follow each other
//! after `burst_gap`.

use crate::spec::FlowSpec;
use rlb_engine::{SimDuration, SimTime};

#[derive(Debug, Clone)]
pub struct BurstConfig {
    /// The hosts in the set Hb.
    pub senders: Vec<u32>,
    /// The common victim receiver Rc.
    pub dst_host: u32,
    /// Simultaneous flows per sender per burst (paper default 40).
    pub flows_per_burst: u32,
    /// Size of each bursty flow (paper default 64 KB).
    pub flow_bytes: u64,
    /// Number of continuous bursts (paper sweeps 1–6, default 2).
    pub bursts: u32,
    /// Start of the first burst.
    pub start: SimTime,
    /// Gap between the starts of consecutive bursts.
    pub burst_gap: SimDuration,
}

impl BurstConfig {
    pub fn generate(&self) -> Vec<FlowSpec> {
        let mut flows =
            Vec::with_capacity((self.senders.len() as u32 * self.flows_per_burst * self.bursts) as usize);
        for b in 0..self.bursts {
            let t = self.start + self.burst_gap.mul_u64(b as u64);
            for &s in &self.senders {
                for k in 0..self.flows_per_burst {
                    flows.push(
                        FlowSpec::new(t, s, self.dst_host, self.flow_bytes)
                            .with_group(((b as u64) << 32) | k as u64),
                    );
                }
            }
        }
        flows
    }

    /// Total bytes one burst round injects.
    pub fn bytes_per_burst(&self) -> u64 {
        self.senders.len() as u64 * self.flows_per_burst as u64 * self.flow_bytes
    }
}

/// The long "congested flow" fc of Fig. 2 — a single large transfer from Hc
/// to Rc that the load balancer spreads over parallel paths.
pub fn congested_flow(src: u32, dst: u32, bytes: u64, start: SimTime) -> FlowSpec {
    FlowSpec::new(start, src, dst, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_layout_matches_paper_defaults() {
        let cfg = BurstConfig {
            senders: vec![10, 11, 12],
            dst_host: 5,
            flows_per_burst: 40,
            flow_bytes: 64_000,
            bursts: 2,
            start: SimTime::from_us(100),
            burst_gap: SimDuration::from_us(500),
        };
        let flows = cfg.generate();
        assert_eq!(flows.len(), 3 * 40 * 2);
        assert!(flows.iter().all(|f| f.dst_host == 5 && f.size_bytes == 64_000));
        let first_burst: Vec<_> = flows.iter().filter(|f| f.start == SimTime::from_us(100)).collect();
        assert_eq!(first_burst.len(), 120);
        let second_burst: Vec<_> = flows.iter().filter(|f| f.start == SimTime::from_us(600)).collect();
        assert_eq!(second_burst.len(), 120);
        assert_eq!(cfg.bytes_per_burst(), 3 * 40 * 64_000);
    }

    #[test]
    fn more_bursts_scale_linearly() {
        let mut cfg = BurstConfig {
            senders: vec![1],
            dst_host: 0,
            flows_per_burst: 4,
            flow_bytes: 1_000,
            bursts: 1,
            start: SimTime::ZERO,
            burst_gap: SimDuration::from_us(10),
        };
        assert_eq!(cfg.generate().len(), 4);
        cfg.bursts = 6;
        assert_eq!(cfg.generate().len(), 24);
    }

    #[test]
    fn congested_flow_builder() {
        let f = congested_flow(3, 9, 250_000_000, SimTime::ZERO);
        assert_eq!((f.src_host, f.dst_host, f.size_bytes), (3, 9, 250_000_000));
    }
}
