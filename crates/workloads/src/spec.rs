//! The flow descriptor shared by all traffic generators.

use rlb_engine::SimTime;
use serde::Serialize;

/// One application flow to inject into the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FlowSpec {
    /// Arrival time of the first byte at the sender NIC.
    #[serde(skip)]
    pub start: SimTime,
    /// Source host index (fabric-wide host numbering).
    pub src_host: u32,
    /// Destination host index.
    pub dst_host: u32,
    /// Application bytes to transfer.
    pub size_bytes: u64,
    /// Tag grouping flows that belong to one logical request (used by the
    /// incast harness to compute "incast completion time" = completion of
    /// the last flow in the group). `u64::MAX` means untagged.
    pub group: u64,
    /// Restrict this flow to the first `k` parallel paths (spines).
    /// `None` = all paths. This is the control the paper's Fig. 4(a) uses:
    /// "we control the number of affected paths ... through controlling
    /// the number of multiple paths that can be chosen by the congested
    /// flows".
    pub path_limit: Option<u8>,
}

impl FlowSpec {
    pub fn new(start: SimTime, src_host: u32, dst_host: u32, size_bytes: u64) -> FlowSpec {
        FlowSpec {
            start,
            src_host,
            dst_host,
            size_bytes,
            group: u64::MAX,
            path_limit: None,
        }
    }

    pub fn with_group(mut self, group: u64) -> FlowSpec {
        self.group = group;
        self
    }

    pub fn with_path_limit(mut self, k: u8) -> FlowSpec {
        assert!(k >= 1, "path limit must allow at least one path");
        self.path_limit = Some(k);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder() {
        let f = FlowSpec::new(SimTime::from_us(3), 1, 2, 64_000).with_group(9);
        assert_eq!(f.start, SimTime::from_us(3));
        assert_eq!((f.src_host, f.dst_host, f.size_bytes, f.group), (1, 2, 64_000, 9));
        assert_eq!(FlowSpec::new(SimTime::ZERO, 0, 1, 1).group, u64::MAX);
        assert_eq!(f.path_limit, None);
        assert_eq!(f.with_path_limit(5).path_limit, Some(5));
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn zero_path_limit_rejected() {
        FlowSpec::new(SimTime::ZERO, 0, 1, 1).with_path_limit(0);
    }
}
