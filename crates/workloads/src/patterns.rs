//! Synthetic communication patterns beyond Poisson pair traffic:
//! permutation and all-to-all shuffle, the two classic stress patterns for
//! datacenter load balancing (maximum path diversity with zero endpoint
//! contention, and maximum fan-in/fan-out respectively).

use crate::spec::FlowSpec;
use rand::seq::SliceRandom;
use rand::Rng;
use rlb_engine::SimTime;

/// A random permutation: every host sends one flow to a distinct partner,
/// no host receives more than one flow — endpoint-contention-free, so any
/// FCT inflation is the fabric's (and the load balancer's) fault.
pub fn permutation<R: Rng>(
    num_hosts: u32,
    hosts_per_leaf: u32,
    flow_bytes: u64,
    start: SimTime,
    rng: &mut R,
) -> Vec<FlowSpec> {
    assert!(num_hosts >= 2);
    // Rejection-sample a derangement whose pairs also cross leaves.
    'outer: for _ in 0..1000 {
        let mut dst: Vec<u32> = (0..num_hosts).collect();
        dst.shuffle(rng);
        for (s, &d) in dst.iter().enumerate() {
            let s = s as u32;
            if s == d || s / hosts_per_leaf == d / hosts_per_leaf {
                continue 'outer;
            }
        }
        return dst
            .into_iter()
            .enumerate()
            .map(|(s, d)| FlowSpec::new(start, s as u32, d, flow_bytes))
            .collect();
    }
    // Fallback: deterministic rotation by one leaf's worth of hosts —
    // always a valid inter-leaf derangement.
    (0..num_hosts)
        .map(|s| {
            let d = (s + hosts_per_leaf) % num_hosts;
            FlowSpec::new(start, s, d, flow_bytes)
        })
        .collect()
}

/// All-to-all shuffle: every host sends `bytes_per_pair` to every other
/// host on a different leaf (the reduce phase of a MapReduce-style job).
/// Flows of one sender are staggered by `stagger` to avoid a synchronized
/// thundering herd unless that is what you want (stagger = 0).
pub fn all_to_all(
    num_hosts: u32,
    hosts_per_leaf: u32,
    bytes_per_pair: u64,
    start: SimTime,
    stagger: rlb_engine::SimDuration,
) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for s in 0..num_hosts {
        let mut k = 0u64;
        for d in 0..num_hosts {
            if s == d || s / hosts_per_leaf == d / hosts_per_leaf {
                continue;
            }
            flows.push(FlowSpec::new(
                start + stagger.mul_u64(k),
                s,
                d,
                bytes_per_pair,
            ));
            k += 1;
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rlb_engine::SimDuration;

    #[test]
    fn permutation_is_a_cross_leaf_derangement() {
        let mut rng = SmallRng::seed_from_u64(3);
        let flows = permutation(24, 4, 100_000, SimTime::ZERO, &mut rng);
        assert_eq!(flows.len(), 24);
        let mut dsts: Vec<u32> = flows.iter().map(|f| f.dst_host).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 24, "every host receives exactly once");
        for f in &flows {
            assert_ne!(f.src_host, f.dst_host);
            assert_ne!(f.src_host / 4, f.dst_host / 4, "must cross leaves");
        }
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            permutation(16, 4, 1_000, SimTime::ZERO, &mut rng)
                .iter()
                .map(|f| f.dst_host)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn all_to_all_counts_and_stagger() {
        // 3 leaves x 2 hosts: each host talks to 4 remote hosts.
        let flows = all_to_all(6, 2, 50_000, SimTime::from_us(10), SimDuration::from_us(5));
        assert_eq!(flows.len(), 6 * 4);
        for f in &flows {
            assert_ne!(f.src_host / 2, f.dst_host / 2);
            assert_eq!(f.size_bytes, 50_000);
        }
        // Stagger: one sender's flows are spaced 5 µs apart.
        let mine: Vec<_> = flows.iter().filter(|f| f.src_host == 0).collect();
        assert_eq!(mine[0].start, SimTime::from_us(10));
        assert_eq!(mine[1].start, SimTime::from_us(15));
        assert_eq!(mine[3].start, SimTime::from_us(25));
    }

    #[test]
    fn all_to_all_zero_stagger_is_synchronized() {
        let flows = all_to_all(4, 2, 1_000, SimTime::ZERO, SimDuration::ZERO);
        assert!(flows.iter().all(|f| f.start == SimTime::ZERO));
    }
}
