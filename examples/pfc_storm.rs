//! The paper's Fig. 2 scenario as a runnable demo: a dumbbell fabric where
//! bursty traffic and a long congested flow pause a subset of the parallel
//! paths, wrecking the innocent background flows — and RLB rescuing them.
//!
//! ```sh
//! cargo run --release --example pfc_storm
//! ```

use rlb::core::RlbConfig;
use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::metrics::{ms, FctSummary, Table};
use rlb::net::scenario::{motivation, MotivationConfig, BACKGROUND_GROUP};

fn main() {
    let mc = MotivationConfig {
        n_paths: 40,
        n_background: 24,
        background_load: 0.2,
        congested_flow_bytes: 30_000_000,
        horizon: SimTime::from_ms(3),
        ..MotivationConfig::default()
    };

    println!("Fig. 2 dumbbell: 2 leaves x 40 spines, 5 affected paths,");
    println!("line-rate 64KB bursts + 30MB congested flow onto one victim.\n");

    let mut table = Table::new(vec![
        "variant",
        "avg_fct_ms",
        "p99_fct_ms",
        "p99_ood",
        "pause_frames",
        "cnm_warnings",
        "recirculations",
    ]);

    for (label, pfc, rlb) in [
        ("no PFC (lossy)", false, None),
        ("PFC, DRILL", true, None),
        ("PFC, DRILL+RLB", true, Some(RlbConfig::default())),
    ] {
        let mut sc = motivation(&mc, Scheme::Drill, rlb);
        sc.cfg.switch.pfc_enabled = pfc;
        let res = sc.run();
        // Measure the innocent background flows only, as the paper does.
        let bg: Vec<_> = res
            .records
            .iter()
            .zip(res.groups.iter())
            .filter(|(_, g)| **g == BACKGROUND_GROUP)
            .map(|(r, _)| r.clone())
            .collect();
        let s = FctSummary::from_records(&bg);
        table.row(vec![
            label.to_string(),
            ms(s.avg_fct_ms),
            ms(s.p99_fct_ms),
            format!("{:.0}", s.p99_ood),
            res.counters.pause_frames.to_string(),
            res.counters.cnm_generated.to_string(),
            res.counters.recirculations.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("Reading: PFC protects the bursty traffic from loss but pauses");
    println!("the background flows' paths; RLB's predicted-PFC warnings steer");
    println!("them away before the pause lands.");
}
