//! Partition-aggregate incast (§4.3): a client fetches a 4MB response
//! from N servers simultaneously; measure incast completion time and
//! reordering as the fan-in grows, with and without RLB under Presto.
//!
//! ```sh
//! cargo run --release --example incast_fanin
//! ```

use rlb::core::RlbConfig;
use rlb::lb::Scheme;
use rlb::metrics::{mean, ms, pct, Table};
use rlb::net::scenario::{incast_scenario, IncastScenarioConfig};

fn main() {
    let mut table = Table::new(vec![
        "degree",
        "scheme",
        "incast_completion_ms",
        "ooo_packets",
        "pause_frames",
    ]);

    for degree in [8u32, 16, 24] {
        for (label, rlb) in [("Presto", None), ("Presto+RLB", Some(RlbConfig::default()))] {
            let cfg = IncastScenarioConfig {
                degree,
                requests: 6,
                seed: 3,
                ..IncastScenarioConfig::default()
            };
            let res = incast_scenario(&cfg, Scheme::Presto, rlb).run();
            let groups = res.group_completion_ms();
            let times: Vec<f64> = groups.iter().map(|(_, t)| *t).collect();
            let ict = mean(&times);
            table.row(vec![
                degree.to_string(),
                label.to_string(),
                ms(ict),
                pct(res.summary().ooo_ratio),
                res.counters.pause_frames.to_string(),
            ]);
        }
    }

    println!("Incast: N servers -> 1 client, 4MB total response, 20% background\n");
    println!("{}", table.render());
}
